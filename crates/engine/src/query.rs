//! The SPJA query IR.
//!
//! A query is a multi-way join `R_1(x̄_1) ⋈ … ⋈ R_n(x̄_n)` (relations may
//! repeat with different variables — self-joins), an arbitrary predicate over
//! the variables, a weight expression `ψ` (1 for COUNT, an arithmetic
//! expression for SUM), and an optional duplicate-removing projection.
//! Evaluating the query returns `Σ_{q ∈ π_y J(I)} ψ(q)` as in Eq. (2) of the
//! paper.

use crate::value::Value;

/// A join variable, identified by a small integer.
pub type Var = u32;

/// One atom `R(x̄)` of the join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// One variable per column; repeating a variable within or across atoms
    /// expresses equality.
    pub vars: Vec<Var>,
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Scalar expressions over join variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A join variable.
    Var(Var),
    /// A constant.
    Const(Value),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant integer shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Constant float shorthand.
    pub fn float(v: f64) -> Expr {
        Expr::Const(Value::Float(v))
    }

    /// Evaluates the expression under a variable assignment.
    pub fn eval(&self, binding: &[Value]) -> Value {
        match self {
            Expr::Var(v) => binding[*v as usize].clone(),
            Expr::Const(c) => c.clone(),
            Expr::Add(a, b) => numeric(a.eval(binding), b.eval(binding), |x, y| x + y),
            Expr::Sub(a, b) => numeric(a.eval(binding), b.eval(binding), |x, y| x - y),
            Expr::Mul(a, b) => numeric(a.eval(binding), b.eval(binding), |x, y| x * y),
        }
    }

    /// The variables mentioned by the expression.
    pub fn vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Var(v) => out.push(*v),
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

fn numeric(a: Value, b: Value, f: impl Fn(f64, f64) -> f64) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            // Integer arithmetic stays integral when exact.
            let r = f(x as f64, y as f64);
            if r.fract() == 0.0 && r.abs() < 2f64.powi(53) {
                Value::Int(r as i64)
            } else {
                Value::Float(r)
            }
        }
        (x, y) => Value::Float(f(x.as_f64().unwrap_or(f64::NAN), y.as_f64().unwrap_or(f64::NAN))),
    }
}

/// Boolean predicates over join variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Comparison between two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate under a variable assignment.
    pub fn eval(&self, binding: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(op, a, b) => {
                let av = a.eval(binding);
                let bv = b.eval(binding);
                op.eval(av.cmp_total(&bv))
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(binding)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(binding)),
            Predicate::Not(p) => !p.eval(binding),
        }
    }

    /// Convenience: `var op const`.
    pub fn cmp_const(var: Var, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp(op, Expr::Var(var), Expr::Const(value))
    }

    /// Convenience: `var op var`.
    pub fn cmp_vars(a: Var, op: CmpOp, b: Var) -> Predicate {
        Predicate::Cmp(op, Expr::Var(a), Expr::Var(b))
    }

    /// The variables mentioned by the predicate.
    pub fn vars(&self, out: &mut Vec<Var>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.vars(out);
                }
            }
            Predicate::Not(p) => p.vars(out),
        }
    }
}

/// The aggregate applied to the (possibly projected) join results.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)`: every result weighs 1.
    Count,
    /// `SUM(expr)`: the result weight is the expression value.
    Sum(Expr),
}

impl Aggregate {
    /// Weight `ψ(q)` of a join result.
    pub fn weight(&self, binding: &[Value]) -> f64 {
        match self {
            Aggregate::Count => 1.0,
            Aggregate::Sum(e) => e.eval(binding).as_f64().unwrap_or(0.0),
        }
    }
}

/// A full SPJA query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Join atoms.
    pub atoms: Vec<Atom>,
    /// Filter predicate (folded into `ψ` per the paper: failing results get
    /// weight 0, i.e. they are dropped).
    pub predicate: Predicate,
    /// Aggregate / weight function.
    pub aggregate: Aggregate,
    /// Duplicate-removing projection onto these variables (SPJA queries).
    /// `None` means an SJA query (aggregate over raw join results).
    pub projection: Option<Vec<Var>>,
}

impl Query {
    /// A counting SJA query over the given atoms.
    pub fn count(atoms: Vec<Atom>) -> Query {
        Query { atoms, predicate: Predicate::True, aggregate: Aggregate::Count, projection: None }
    }

    /// Adds a predicate (replacing the existing one).
    pub fn with_predicate(mut self, p: Predicate) -> Query {
        self.predicate = p;
        self
    }

    /// Sets a SUM aggregate.
    pub fn with_sum(mut self, e: Expr) -> Query {
        self.aggregate = Aggregate::Sum(e);
        self
    }

    /// Sets a duplicate-removing projection.
    pub fn with_projection(mut self, vars: Vec<Var>) -> Query {
        self.projection = Some(vars);
        self
    }

    /// The number of distinct variables (1 + max id).
    pub fn num_vars(&self) -> usize {
        let mut max = 0u32;
        let mut any = false;
        for a in &self.atoms {
            for &v in &a.vars {
                max = max.max(v);
                any = true;
            }
        }
        if any {
            max as usize + 1
        } else {
            0
        }
    }
}

/// Shorthand for building an atom.
pub fn atom(relation: &str, vars: &[Var]) -> Atom {
    Atom { relation: relation.to_string(), vars: vars.to_vec() }
}

/// Whether the join hypergraph of `atoms` is α-acyclic, decided by GYO
/// reduction: repeatedly remove *ear* variables (variables occurring in a
/// single hyperedge) and hyperedges contained in another hyperedge. The
/// hypergraph is acyclic iff everything reduces away.
///
/// The executor dispatch uses this to route queries: acyclic joins (FK
/// chains, paths, stars — all of TPC-H) stay on the binary-join columnar
/// pipeline, whose greedy order is already worst-case optimal for them,
/// while cyclic joins (triangles, rectangles, cliques) go to the
/// [`crate::wcoj`] executor to avoid the intermediate-result blowup.
pub fn join_is_acyclic(atoms: &[Atom]) -> bool {
    // Hyperedges are the atoms' deduplicated variable sets (kept sorted so
    // subset tests are merges); duplicate edges reduce to one.
    let mut edges: Vec<Vec<Var>> = atoms
        .iter()
        .map(|a| {
            let mut vs = a.vars.clone();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .filter(|vs| !vs.is_empty())
        .collect();
    edges.sort();
    edges.dedup();
    loop {
        let before: usize = edges.iter().map(Vec::len).sum::<usize>() + edges.len();
        // Drop edges strictly contained in another edge (equal edges were
        // deduplicated, so containment here is proper).
        let snapshot = edges.clone();
        edges.retain(|e| !snapshot.iter().any(|f| f.len() > e.len() && is_subset(e, f)));
        // Remove ear variables: those occurring in exactly one edge.
        let mut occurrences: std::collections::HashMap<Var, usize> =
            std::collections::HashMap::new();
        for e in &edges {
            for &v in e {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
        for e in &mut edges {
            e.retain(|v| occurrences[v] > 1);
        }
        edges.retain(|e| !e.is_empty());
        edges.sort();
        edges.dedup();
        let after: usize = edges.iter().map(Vec::len).sum::<usize>() + edges.len();
        if after == before {
            return edges.is_empty();
        }
    }
}

/// Whether sorted `a` is a subset of sorted `b`.
fn is_subset(a: &[Var], b: &[Var]) -> bool {
    let mut i = 0;
    for &v in a {
        while i < b.len() && b[i] < v {
            i += 1;
        }
        if i == b.len() || b[i] != v {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_mixed_arithmetic() {
        // price * (1 - discount)
        let e = Expr::Mul(
            Box::new(Expr::Var(0)),
            Box::new(Expr::Sub(Box::new(Expr::int(1)), Box::new(Expr::Var(1)))),
        );
        let v = e.eval(&[Value::Float(100.0), Value::Float(0.25)]);
        assert_eq!(v.as_f64(), Some(75.0));
    }

    #[test]
    fn integer_arithmetic_stays_integral() {
        let e = Expr::Add(Box::new(Expr::Var(0)), Box::new(Expr::int(2)));
        assert_eq!(e.eval(&[Value::Int(3)]), Value::Int(5));
    }

    #[test]
    fn predicate_combinators() {
        let p = Predicate::And(vec![
            Predicate::cmp_const(0, CmpOp::Lt, Value::Int(10)),
            Predicate::Not(Box::new(Predicate::cmp_vars(0, CmpOp::Eq, 1))),
        ]);
        assert!(p.eval(&[Value::Int(5), Value::Int(6)]));
        assert!(!p.eval(&[Value::Int(5), Value::Int(5)]));
        assert!(!p.eval(&[Value::Int(50), Value::Int(6)]));
    }

    #[test]
    fn cmp_ops() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert!(!CmpOp::Eq.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
    }

    #[test]
    fn num_vars_counts_max() {
        let q = Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])]);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn aggregate_weights() {
        assert_eq!(Aggregate::Count.weight(&[]), 1.0);
        let s = Aggregate::Sum(Expr::Var(0));
        assert_eq!(s.weight(&[Value::Int(7)]), 7.0);
    }
}
