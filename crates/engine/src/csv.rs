//! Minimal CSV loading for relation instances.
//!
//! Values are parsed as `Int` when they look like integers, `Float` when
//! they parse as floats, and strings otherwise. Quoting follows RFC 4180
//! (double quotes, doubled to escape). This is how external datasets are
//! imported into the engine without a database server. Import produces a
//! [`WriteBatch`] ([`csv_batch`]) so CSV data flows through the same typed,
//! schema-validated mutation surface as every other write.

use crate::delta::WriteBatch;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::value::Value;
use crate::EngineError;
use std::io::{BufRead, BufReader, Read};

/// Parses one CSV line into fields (RFC 4180 quoting).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parses a CSV field into the closest [`Value`].
pub fn parse_value(field: &str) -> Value {
    let t = field.trim();
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        if f.is_finite() {
            return Value::Float(f);
        }
    }
    Value::str(t)
}

/// Reads CSV rows for `relation` into an insert-only [`WriteBatch`]. The
/// file's column count must match the relation's arity; a `header` row is
/// skipped when `true`. Apply the batch through the owning database (or
/// [`WriteBatch::resolve`] + [`crate::delta::ResolvedWrite::apply_mut`]) to
/// get integrity checking and incremental view propagation.
pub fn csv_batch<R: Read>(
    schema: &Schema,
    relation: &str,
    reader: R,
    header: bool,
) -> Result<WriteBatch, EngineError> {
    let rel = schema.relation(relation)?;
    let mut batch = WriteBatch::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| EngineError::MalformedQuery(e.to_string()))?;
        if line.trim().is_empty() || (header && idx == 0) {
            continue;
        }
        let fields = split_csv_line(&line);
        if fields.len() != rel.arity() {
            return Err(EngineError::ArityMismatch {
                relation: relation.to_string(),
                expected: rel.arity(),
                got: fields.len(),
            });
        }
        batch.insert(relation, fields.iter().map(|f| parse_value(f)).collect());
    }
    Ok(batch)
}

/// Loads CSV rows into `relation` of `instance`, returning how many were
/// inserted.
#[deprecated(note = "build a WriteBatch with csv_batch and apply it through \
                     the database write path")]
pub fn load_csv<R: Read>(
    instance: &mut Instance,
    schema: &Schema,
    relation: &str,
    reader: R,
    header: bool,
) -> Result<usize, EngineError> {
    let batch = csv_batch(schema, relation, reader, header)?;
    // Insert-only batches never look at existing rows while resolving.
    let resolved = batch.resolve(schema, instance)?;
    let n = resolved.deltas().iter().map(|d| d.inserts().len()).sum();
    resolved.apply_mut(instance);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::graph_schema_node_dp;

    #[test]
    fn batch_loads_typed_values() {
        let schema = graph_schema_node_dp();
        let batch =
            csv_batch(&schema, "Edge", "src,dst\n1,2\n2,3\n".as_bytes(), true).expect("parses");
        let inst =
            batch.resolve(&schema, &Instance::new()).expect("resolves").apply_to(&Instance::new());
        assert_eq!(inst.rows("Edge").len(), 2);
        assert_eq!(inst.rows("Edge")[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn batch_rejects_unknown_relation() {
        let schema = graph_schema_node_dp();
        assert!(matches!(
            csv_batch(&schema, "Nope", "1\n".as_bytes(), false),
            Err(EngineError::UnknownRelation(r)) if r == "Nope"
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn loads_typed_values() {
        let schema = graph_schema_node_dp();
        let mut inst = Instance::new();
        let n = load_csv(&mut inst, &schema, "Edge", "src,dst\n1,2\n2,3\n".as_bytes(), true)
            .expect("loads");
        assert_eq!(n, 2);
        assert_eq!(inst.rows("Edge")[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn quoting_and_floats() {
        assert_eq!(
            split_csv_line(r#"a,"b,c","say ""hi""",1.5"#),
            vec!["a", "b,c", "say \"hi\"", "1.5"]
        );
        assert_eq!(parse_value("1.5"), Value::Float(1.5));
        assert_eq!(parse_value("x"), Value::str("x"));
        assert_eq!(parse_value(" 7 "), Value::Int(7));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = graph_schema_node_dp();
        let r = csv_batch(&schema, "Edge", "1,2,3\n".as_bytes(), false);
        assert!(matches!(r, Err(EngineError::ArityMismatch { .. })));
    }

    #[test]
    #[allow(deprecated)]
    fn blank_lines_skipped() {
        let schema = graph_schema_node_dp();
        let mut inst = Instance::new();
        let n = load_csv(&mut inst, &schema, "Node", "1\n\n2\n".as_bytes(), false).expect("loads");
        assert_eq!(n, 2);
    }
}
