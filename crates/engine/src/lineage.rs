//! Query profiles: the artifact the DP mechanisms consume.
//!
//! Evaluating an SPJA query with lineage produces, per surviving join result
//! `q_k`, its weight `ψ(q_k)` and the set of primary-private tuples it
//! references (`C_j(I)` transposed). Projection queries additionally carry
//! the duplicate groups `D_l(I)`: which join results collapse onto each
//! projected result `p_l`, and that result's weight `ψ(p_l)`.
//!
//! Private tuples are remapped to dense ids `0..num_private`; only tuples
//! referenced by at least one join result receive an id (unreferenced tuples
//! have zero sensitivity and never constrain the truncation LPs).

use std::collections::HashMap;
use std::hash::Hash;

/// One join result: weight and referenced private tuples (dense ids).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultLine {
    /// `ψ(q_k)` — non-negative.
    pub weight: f64,
    /// Sorted, deduplicated dense private-tuple ids referenced by the result.
    pub refs: Vec<u32>,
}

/// One projected result `p_l` (only for projection queries).
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// `ψ(p_l)` — the weight of the projected result.
    pub weight: f64,
    /// Indices into [`QueryProfile::results`] of the members `D_l(I)`.
    pub members: Vec<u32>,
}

/// The lineage-annotated evaluation of an SPJA query on an instance.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Number of distinct referenced private tuples.
    pub num_private: usize,
    /// Join results with weights and references.
    pub results: Vec<ResultLine>,
    /// Duplicate groups for projection queries (`None` for SJA queries).
    pub groups: Option<Vec<Group>>,
}

impl QueryProfile {
    /// The true query answer `Q(I)`.
    pub fn query_result(&self) -> f64 {
        match &self.groups {
            Some(groups) => groups.iter().map(|g| g.weight).sum(),
            None => self.results.iter().map(|r| r.weight).sum(),
        }
    }

    /// Per-private-tuple sensitivities `S_Q(I, t_j) = Σ_{k ∈ C_j} ψ(q_k)`
    /// (Eq. 4 of the paper).
    pub fn sensitivities(&self) -> Vec<f64> {
        let mut s = vec![0.0f64; self.num_private];
        for r in &self.results {
            for &j in &r.refs {
                s[j as usize] += r.weight;
            }
        }
        s
    }

    /// `DS_Q(I) = max_j S_Q(I, t_j)` for SJA queries; for SPJA queries this
    /// quantity is the *indirect sensitivity* `IS_Q(I)` (Section 7), which
    /// upper-bounds the (possibly much smaller) true downward sensitivity.
    pub fn max_sensitivity(&self) -> f64 {
        self.sensitivities().into_iter().fold(0.0, f64::max)
    }

    /// Whether every join result references exactly one private tuple.
    /// Naive truncation is a valid (stable) truncation method exactly in
    /// this case; self-joins or multiple primary private relations break it.
    pub fn is_functionally_self_join_free(&self) -> bool {
        self.results.iter().all(|r| r.refs.len() <= 1)
    }

    /// The profile of the *down-neighbour* obtained by deleting private
    /// tuple `j`: every join result referencing `j` disappears (the paper's
    /// neighbourhood: deleting `t_P` deletes all tuples referencing it, and
    /// with them all join results they participate in). Remaining private
    /// ids keep their numbering; `num_private` is unchanged so indices stay
    /// comparable across neighbours.
    pub fn remove_private(&self, j: u32) -> QueryProfile {
        let mut keep = vec![true; self.results.len()];
        let mut results = Vec::with_capacity(self.results.len());
        let mut new_index = vec![u32::MAX; self.results.len()];
        for (k, r) in self.results.iter().enumerate() {
            if r.refs.contains(&j) {
                keep[k] = false;
            } else {
                new_index[k] = results.len() as u32;
                results.push(r.clone());
            }
        }
        let groups = self.groups.as_ref().map(|gs| {
            gs.iter()
                .filter_map(|g| {
                    let members: Vec<u32> = g
                        .members
                        .iter()
                        .filter(|&&m| keep[m as usize])
                        .map(|&m| new_index[m as usize])
                        .collect();
                    (!members.is_empty()).then_some(Group { weight: g.weight, members })
                })
                .collect()
        });
        QueryProfile { num_private: self.num_private, results, groups }
    }

    /// The true downward local sensitivity `DS_Q(I)` computed by definition
    /// (Eq. 6): the largest drop in the query answer over all single-private-
    /// tuple deletions. For SJA queries this equals [`Self::max_sensitivity`];
    /// for projection queries it can be much smaller (Example 7.1).
    pub fn downward_sensitivity(&self) -> f64 {
        let q = self.query_result();
        (0..self.num_private as u32)
            .map(|j| q - self.remove_private(j).query_result())
            .fold(0.0, f64::max)
    }

    /// Transposes references into `C_j(I)`: for each private tuple, the
    /// indices of the join results referencing it.
    pub fn reference_lists(&self) -> Vec<Vec<u32>> {
        let mut c: Vec<Vec<u32>> = vec![Vec::new(); self.num_private];
        for (k, r) in self.results.iter().enumerate() {
            for &j in &r.refs {
                c[j as usize].push(k as u32);
            }
        }
        c
    }
}

/// Builds a [`QueryProfile`] while remapping arbitrary private-tuple keys to
/// dense ids.
#[derive(Debug)]
pub struct ProfileBuilder<K: Hash + Eq> {
    ids: HashMap<K, u32>,
    results: Vec<ResultLine>,
    groups: Option<(HashMap<K, u32>, Vec<Group>)>,
}

impl<K: Hash + Eq + Clone> Default for ProfileBuilder<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone> ProfileBuilder<K> {
    /// Creates an empty builder for an SJA query.
    pub fn new() -> Self {
        ProfileBuilder { ids: HashMap::new(), results: Vec::new(), groups: None }
    }

    /// Dense id of a private tuple key (allocating on first sight).
    pub fn private_id(&mut self, key: K) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(key).or_insert(next)
    }

    /// Adds a join result with weight `psi` referencing the given private
    /// tuples; returns the result index. Duplicate references are merged.
    pub fn add_result<I: IntoIterator<Item = K>>(&mut self, psi: f64, refs: I) -> u32 {
        let mut ids: Vec<u32> = refs.into_iter().map(|k| self.private_id(k)).collect();
        ids.sort_unstable();
        ids.dedup();
        self.results.push(ResultLine { weight: psi, refs: ids });
        (self.results.len() - 1) as u32
    }

    /// Adds a join result that belongs to projected-result group `group_key`
    /// with group weight `group_psi` (must be consistent across members).
    pub fn add_projected_result<I: IntoIterator<Item = K>>(
        &mut self,
        group_key: K,
        group_psi: f64,
        result_psi: f64,
        refs: I,
    ) -> u32 {
        let idx = self.add_result(result_psi, refs);
        let (group_ids, groups) = self.groups.get_or_insert_with(|| (HashMap::new(), Vec::new()));
        let gid = *group_ids.entry(group_key).or_insert_with(|| {
            groups.push(Group { weight: group_psi, members: Vec::new() });
            (groups.len() - 1) as u32
        });
        debug_assert!(
            (groups[gid as usize].weight - group_psi).abs() < 1e-9,
            "projected weight must only depend on projected attributes"
        );
        groups[gid as usize].members.push(idx);
        gid
    }

    /// Finalizes the profile.
    pub fn build(self) -> QueryProfile {
        QueryProfile {
            num_private: self.ids.len(),
            results: self.results,
            groups: self.groups.map(|(_, g)| g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_remaps_keys_densely() {
        let mut b: ProfileBuilder<&str> = ProfileBuilder::new();
        b.add_result(1.0, ["alice", "bob"]);
        b.add_result(2.0, ["bob"]);
        let p = b.build();
        assert_eq!(p.num_private, 2);
        assert_eq!(p.query_result(), 3.0);
        let s = p.sensitivities();
        assert_eq!(s, vec![1.0, 3.0]); // alice: 1, bob: 1 + 2
        assert_eq!(p.max_sensitivity(), 3.0);
        assert!(!p.is_functionally_self_join_free());
    }

    #[test]
    fn duplicate_refs_merged() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [7, 7, 7]);
        let p = b.build();
        assert_eq!(p.results[0].refs, vec![0]);
        assert!(p.is_functionally_self_join_free());
    }

    #[test]
    fn reference_lists_transpose() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]);
        b.add_result(1.0, [1]);
        let p = b.build();
        let c = p.reference_lists();
        assert_eq!(c[0], vec![0]);
        assert_eq!(c[1], vec![0, 1]);
    }

    #[test]
    fn projection_groups_counted_once() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        // Two join results collapsing onto one projected result of weight 1.
        b.add_projected_result(100, 1.0, 1.0, [1]);
        b.add_projected_result(100, 1.0, 1.0, [2]);
        b.add_projected_result(200, 1.0, 1.0, [1]);
        let p = b.build();
        assert_eq!(p.query_result(), 2.0);
        assert_eq!(p.results.len(), 3);
        let g = p.groups.as_ref().unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].members, vec![0, 1]);
    }
}

#[cfg(test)]
mod neighbor_tests {
    use super::*;

    #[test]
    fn remove_private_drops_referencing_results() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]);
        b.add_result(2.0, [1]);
        b.add_result(4.0, [2]);
        let p = b.build();
        let q = p.remove_private(1);
        assert_eq!(q.results.len(), 1);
        assert_eq!(q.query_result(), 4.0);
        assert_eq!(q.num_private, p.num_private);
    }

    #[test]
    fn downward_sensitivity_equals_max_sensitivity_for_sja() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]);
        b.add_result(2.0, [1]);
        b.add_result(4.0, [2]);
        let p = b.build();
        assert_eq!(p.downward_sensitivity(), p.max_sensitivity());
    }

    #[test]
    fn projection_overlap_shrinks_downward_sensitivity() {
        // Example 7.1: two private tuples each covering the same m projected
        // results; removing either changes nothing.
        let m = 5;
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for l in 0..m {
            b.add_projected_result(l, 1.0, 1.0, [1]);
            b.add_projected_result(l, 1.0, 1.0, [2]);
        }
        let p = b.build();
        assert_eq!(p.query_result(), m as f64);
        assert_eq!(p.max_sensitivity(), m as f64); // IS_Q(I) = m
        assert_eq!(p.downward_sensitivity(), 0.0); // DS_Q(I) = 0
    }
}
