//! Query profiles: the artifact the DP mechanisms consume.
//!
//! Evaluating an SPJA query with lineage produces, per surviving join result
//! `q_k`, its weight `ψ(q_k)` and the set of primary-private tuples it
//! references (`C_j(I)` transposed). Projection queries additionally carry
//! the duplicate groups `D_l(I)`: which join results collapse onto each
//! projected result `p_l`, and that result's weight `ψ(p_l)`.
//!
//! Private tuples are remapped to dense ids `0..num_private`; only tuples
//! referenced by at least one join result receive an id (unreferenced tuples
//! have zero sensitivity and never constrain the truncation LPs).

use crate::EngineError;
use std::collections::HashMap;
use std::hash::Hash;

/// Tolerance for the projected-group weight consistency check: the weight of
/// a projected result must depend only on the projected attributes, so every
/// member must report the same `ψ(p_l)` up to rounding.
const GROUP_WEIGHT_TOL: f64 = 1e-9;

/// One join result: weight and referenced private tuples (dense ids).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultLine {
    /// `ψ(q_k)` — non-negative.
    pub weight: f64,
    /// Sorted, deduplicated dense private-tuple ids referenced by the result.
    pub refs: Vec<u32>,
}

/// One projected result `p_l` (only for projection queries).
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// `ψ(p_l)` — the weight of the projected result.
    pub weight: f64,
    /// Indices into [`QueryProfile::results`] of the members `D_l(I)`.
    pub members: Vec<u32>,
}

/// The lineage-annotated evaluation of an SPJA query on an instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Number of distinct referenced private tuples.
    pub num_private: usize,
    /// Join results with weights and references.
    pub results: Vec<ResultLine>,
    /// Duplicate groups for projection queries (`None` for SJA queries).
    pub groups: Option<Vec<Group>>,
}

impl QueryProfile {
    /// The true query answer `Q(I)`.
    pub fn query_result(&self) -> f64 {
        match &self.groups {
            Some(groups) => groups.iter().map(|g| g.weight).sum(),
            None => self.results.iter().map(|r| r.weight).sum(),
        }
    }

    /// Per-private-tuple sensitivities `S_Q(I, t_j) = Σ_{k ∈ C_j} ψ(q_k)`
    /// (Eq. 4 of the paper).
    pub fn sensitivities(&self) -> Vec<f64> {
        let mut s = vec![0.0f64; self.num_private];
        for r in &self.results {
            for &j in &r.refs {
                s[j as usize] += r.weight;
            }
        }
        s
    }

    /// `DS_Q(I) = max_j S_Q(I, t_j)` for SJA queries; for SPJA queries this
    /// quantity is the *indirect sensitivity* `IS_Q(I)` (Section 7), which
    /// upper-bounds the (possibly much smaller) true downward sensitivity.
    pub fn max_sensitivity(&self) -> f64 {
        self.sensitivities().into_iter().fold(0.0, f64::max)
    }

    /// Whether every join result references exactly one private tuple.
    /// Naive truncation is a valid (stable) truncation method exactly in
    /// this case; self-joins or multiple primary private relations break it.
    pub fn is_functionally_self_join_free(&self) -> bool {
        self.results.iter().all(|r| r.refs.len() <= 1)
    }

    /// The profile of the *down-neighbour* obtained by deleting private
    /// tuple `j`: every join result referencing `j` disappears (the paper's
    /// neighbourhood: deleting `t_P` deletes all tuples referencing it, and
    /// with them all join results they participate in). Remaining private
    /// ids keep their numbering; `num_private` is unchanged so indices stay
    /// comparable across neighbours.
    pub fn remove_private(&self, j: u32) -> QueryProfile {
        let mut keep = vec![true; self.results.len()];
        let mut results = Vec::with_capacity(self.results.len());
        let mut new_index = vec![u32::MAX; self.results.len()];
        for (k, r) in self.results.iter().enumerate() {
            if r.refs.contains(&j) {
                keep[k] = false;
            } else {
                new_index[k] = results.len() as u32;
                results.push(r.clone());
            }
        }
        let groups = self.groups.as_ref().map(|gs| {
            gs.iter()
                .filter_map(|g| {
                    let members: Vec<u32> = g
                        .members
                        .iter()
                        .filter(|&&m| keep[m as usize])
                        .map(|&m| new_index[m as usize])
                        .collect();
                    (!members.is_empty()).then_some(Group { weight: g.weight, members })
                })
                .collect()
        });
        QueryProfile { num_private: self.num_private, results, groups }
    }

    /// The true downward local sensitivity `DS_Q(I)` computed by definition
    /// (Eq. 6): the largest drop in the query answer over all single-private-
    /// tuple deletions. For SJA queries this equals [`Self::max_sensitivity`];
    /// for projection queries it can be much smaller (Example 7.1).
    pub fn downward_sensitivity(&self) -> f64 {
        let q = self.query_result();
        (0..self.num_private as u32)
            .map(|j| q - self.remove_private(j).query_result())
            .fold(0.0, f64::max)
    }

    /// Summarizes the profile's shape for explain/describe output. Like the
    /// profile itself the summary is *pre-noise* state — `max_sensitivity`
    /// and `query_result` are raw data-dependent quantities, so the summary
    /// must never be released to an analyst without going through a DP
    /// mechanism.
    pub fn summary(&self) -> ProfileSummary {
        ProfileSummary {
            results: self.results.len(),
            num_private: self.num_private,
            query_result: self.query_result(),
            max_sensitivity: self.max_sensitivity(),
            is_projection: self.groups.is_some(),
            max_refs: self.results.iter().map(|r| r.refs.len()).max().unwrap_or(0),
            unit_refs: self.results.iter().all(|r| r.refs.windows(2).all(|w| w[0] != w[1])),
        }
    }

    /// Transposes references into `C_j(I)`: for each private tuple, the
    /// indices of the join results referencing it.
    pub fn reference_lists(&self) -> Vec<Vec<u32>> {
        let mut c: Vec<Vec<u32>> = vec![Vec::new(); self.num_private];
        for (k, r) in self.results.iter().enumerate() {
            for &j in &r.refs {
                c[j as usize].push(k as u32);
            }
        }
        c
    }
}

/// Shape of a [`QueryProfile`], produced by [`QueryProfile::summary`]. Not
/// DP: a planning/debugging artifact, rendered by `explain`-style APIs.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Number of surviving join results.
    pub results: usize,
    /// Number of distinct referenced private tuples.
    pub num_private: usize,
    /// The true (noiseless) query answer `Q(I)`.
    pub query_result: f64,
    /// `max_j S_Q(I, t_j)` — `DS_Q(I)` for SJA queries, `IS_Q(I)` for SPJA.
    pub max_sensitivity: f64,
    /// Whether the query has a duplicate-removing projection.
    pub is_projection: bool,
    /// Largest number of private tuples referenced by any single result
    /// (0 for an empty or reference-free profile).
    pub max_refs: usize,
    /// Whether every result references each private tuple at most once, so
    /// each truncation-LP coefficient is exactly 1. Profiles built through
    /// [`ProfileBuilder`] always satisfy this (references are deduplicated);
    /// the flag guards hand-assembled profiles.
    pub unit_refs: bool,
}

impl ProfileSummary {
    /// The truncation-LP structure class this shape dispatches to:
    /// `"closed-form"` (each result references at most one private tuple),
    /// `"matching"` (at most two unit references — max-flow on the bipartite
    /// double cover), or `"simplex"` (projection rows, repeated references,
    /// or ≥ 3 references per result).
    pub fn structure_class(&self) -> &'static str {
        if self.is_projection {
            "simplex"
        } else if self.max_refs <= 1 {
            "closed-form"
        } else if self.max_refs <= 2 && self.unit_refs {
            "matching"
        } else {
            "simplex"
        }
    }
}

impl std::fmt::Display for ProfileSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} join results; {} referenced private tuples; Q(I) = {}; \
             max tuple sensitivity = {}; projection: {}; \
             max refs/result = {}; LP class = {}",
            self.results,
            self.num_private,
            self.query_result,
            self.max_sensitivity,
            self.is_projection,
            self.max_refs,
            self.structure_class(),
        )
    }
}

/// Builds a [`QueryProfile`] while remapping arbitrary private-tuple keys
/// (`K`) to dense ids. Projected-result groups are keyed by a separate type
/// `G` (defaulting to `K`) so projection keys need not be encoded into the
/// private-key space.
#[derive(Debug)]
pub struct ProfileBuilder<K: Hash + Eq, G: Hash + Eq = K> {
    ids: HashMap<K, u32>,
    results: Vec<ResultLine>,
    groups: Option<(HashMap<G, u32>, Vec<Group>)>,
}

impl<K: Hash + Eq + Clone, G: Hash + Eq> Default for ProfileBuilder<K, G> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, G: Hash + Eq> ProfileBuilder<K, G> {
    /// Creates an empty builder for an SJA query.
    pub fn new() -> Self {
        ProfileBuilder { ids: HashMap::new(), results: Vec::new(), groups: None }
    }

    /// Dense id of a private tuple key (allocating on first sight).
    pub fn private_id(&mut self, key: K) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(key).or_insert(next)
    }

    /// Adds a join result with weight `psi` referencing the given private
    /// tuples; returns the result index. Duplicate references are merged.
    pub fn add_result<I: IntoIterator<Item = K>>(&mut self, psi: f64, refs: I) -> u32 {
        let mut ids: Vec<u32> = refs.into_iter().map(|k| self.private_id(k)).collect();
        ids.sort_unstable();
        ids.dedup();
        self.results.push(ResultLine { weight: psi, refs: ids });
        (self.results.len() - 1) as u32
    }

    /// Adds a join result that belongs to projected-result group `group_key`
    /// with group weight `group_psi`. Fails with
    /// [`EngineError::InconsistentGroupWeight`] when a later member reports a
    /// different group weight — the projected weight must depend only on the
    /// projected attributes, so a mismatch means the query is malformed.
    pub fn add_projected_result<I: IntoIterator<Item = K>>(
        &mut self,
        group_key: G,
        group_psi: f64,
        result_psi: f64,
        refs: I,
    ) -> Result<u32, EngineError> {
        let idx = self.add_result(result_psi, refs);
        let (group_ids, groups) = self.groups.get_or_insert_with(|| (HashMap::new(), Vec::new()));
        let gid = *group_ids.entry(group_key).or_insert_with(|| {
            groups.push(Group { weight: group_psi, members: Vec::new() });
            (groups.len() - 1) as u32
        });
        let expected = groups[gid as usize].weight;
        if (expected - group_psi).abs() > GROUP_WEIGHT_TOL {
            return Err(EngineError::InconsistentGroupWeight { expected, got: group_psi });
        }
        groups[gid as usize].members.push(idx);
        Ok(gid)
    }

    /// Finalizes the profile.
    pub fn build(self) -> QueryProfile {
        QueryProfile {
            num_private: self.ids.len(),
            results: self.results,
            groups: self.groups.map(|(_, g)| g),
        }
    }
}

/// Packs a private-tuple reference — primary-private relation index plus the
/// *interned* id of its primary-key value (see [`crate::interner`]) — into
/// the raw `u64` key consumed by [`IdProfileBuilder`].
#[inline]
pub fn pack_private_key(pidx: u32, value_id: u32) -> u64 {
    ((pidx as u64) << 32) | value_id as u64
}

/// The streaming, id-based profile builder used by the columnar executor.
///
/// Where [`ProfileBuilder`] hashes arbitrary keys (cloning a `(u32, Value)`
/// per reference), this builder takes pre-densified keys: private tuples are
/// packed `u64`s from [`pack_private_key`] and projection groups are interned
/// `u32` id tuples, so emission never touches a [`crate::value::Value`].
///
/// Builders are also *mergeable*: each probe worker fills its own shard and
/// the shards are [`IdProfileBuilder::merge`]d in deterministic (chunk)
/// order. Merging preserves first-seen dense-id assignment over the
/// concatenated emission stream, so the final profile is identical to the
/// one a single-threaded pass would produce, regardless of worker count.
#[derive(Debug, Default)]
pub struct IdProfileBuilder {
    ids: HashMap<u64, u32>,
    /// Dense id -> raw key, for remapping during merge.
    keys: Vec<u64>,
    results: Vec<ResultLine>,
    groups: Option<IdGroupTable>,
}

#[derive(Debug, Default)]
struct IdGroupTable {
    ids: HashMap<Box<[u32]>, u32>,
    /// Group id -> raw key, for remapping during merge.
    keys: Vec<Box<[u32]>>,
    groups: Vec<Group>,
}

impl IdGroupTable {
    fn group_id(&mut self, key: &[u32], weight: f64) -> u32 {
        if let Some(&gid) = self.ids.get(key) {
            return gid;
        }
        let gid = self.groups.len() as u32;
        let key: Box<[u32]> = key.into();
        self.ids.insert(key.clone(), gid);
        self.keys.push(key);
        self.groups.push(Group { weight, members: Vec::new() });
        gid
    }
}

impl IdProfileBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        IdProfileBuilder::default()
    }

    /// Dense id of a packed private key (allocating on first sight).
    #[inline]
    pub fn private_id(&mut self, key: u64) -> u32 {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.ids.insert(key, id);
        self.keys.push(key);
        id
    }

    /// Number of results added so far.
    pub fn num_results(&self) -> usize {
        self.results.len()
    }

    /// Adds a join result with weight `psi` referencing the given packed
    /// private keys; returns the result index.
    pub fn add_result<I: IntoIterator<Item = u64>>(&mut self, psi: f64, refs: I) -> u32 {
        let mut ids: Vec<u32> = refs.into_iter().map(|k| self.private_id(k)).collect();
        ids.sort_unstable();
        ids.dedup();
        self.results.push(ResultLine { weight: psi, refs: ids });
        (self.results.len() - 1) as u32
    }

    /// Adds a join result belonging to the projected-result group keyed by
    /// the interned id tuple `group_key`. Fails with
    /// [`EngineError::InconsistentGroupWeight`] on a group-weight mismatch.
    pub fn add_projected_result<I: IntoIterator<Item = u64>>(
        &mut self,
        group_key: &[u32],
        group_psi: f64,
        result_psi: f64,
        refs: I,
    ) -> Result<u32, EngineError> {
        let idx = self.add_result(result_psi, refs);
        let table = self.groups.get_or_insert_with(IdGroupTable::default);
        let gid = table.group_id(group_key, group_psi);
        let expected = table.groups[gid as usize].weight;
        if (expected - group_psi).abs() > GROUP_WEIGHT_TOL {
            return Err(EngineError::InconsistentGroupWeight { expected, got: group_psi });
        }
        table.groups[gid as usize].members.push(idx);
        Ok(gid)
    }

    /// Appends `shard` to this builder, remapping the shard's dense private
    /// ids, group ids, and member indices into this builder's spaces. Raw
    /// keys are allocated in the shard's first-seen order, so merging shards
    /// in emission-chunk order reproduces the sequential profile exactly.
    pub fn merge(&mut self, shard: IdProfileBuilder) -> Result<(), EngineError> {
        let offset = self.results.len() as u32;
        let remap: Vec<u32> = shard.keys.iter().map(|&k| self.private_id(k)).collect();
        self.results.reserve(shard.results.len());
        for r in shard.results {
            let mut refs: Vec<u32> = r.refs.iter().map(|&j| remap[j as usize]).collect();
            // Remapping is injective, so refs stay distinct; restore order.
            refs.sort_unstable();
            self.results.push(ResultLine { weight: r.weight, refs });
        }
        if let Some(sg) = shard.groups {
            let table = self.groups.get_or_insert_with(IdGroupTable::default);
            for (key, g) in sg.keys.iter().zip(sg.groups) {
                let gid = table.group_id(key, g.weight);
                let expected = table.groups[gid as usize].weight;
                if (expected - g.weight).abs() > GROUP_WEIGHT_TOL {
                    return Err(EngineError::InconsistentGroupWeight { expected, got: g.weight });
                }
                let members = &mut table.groups[gid as usize].members;
                members.extend(g.members.iter().map(|&m| m + offset));
            }
        }
        Ok(())
    }

    /// Finalizes the profile.
    pub fn build(self) -> QueryProfile {
        QueryProfile {
            num_private: self.keys.len(),
            results: self.results,
            groups: self.groups.map(|t| t.groups),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_remaps_keys_densely() {
        let mut b: ProfileBuilder<&str> = ProfileBuilder::new();
        b.add_result(1.0, ["alice", "bob"]);
        b.add_result(2.0, ["bob"]);
        let p = b.build();
        assert_eq!(p.num_private, 2);
        assert_eq!(p.query_result(), 3.0);
        let s = p.sensitivities();
        assert_eq!(s, vec![1.0, 3.0]); // alice: 1, bob: 1 + 2
        assert_eq!(p.max_sensitivity(), 3.0);
        assert!(!p.is_functionally_self_join_free());
    }

    #[test]
    fn summary_reflects_shape() {
        let mut b: ProfileBuilder<&str> = ProfileBuilder::new();
        b.add_result(1.0, ["alice", "bob"]);
        b.add_result(2.0, ["bob"]);
        let s = b.build().summary();
        assert_eq!(s.results, 2);
        assert_eq!(s.num_private, 2);
        assert_eq!(s.query_result, 3.0);
        assert_eq!(s.max_sensitivity, 3.0);
        assert!(!s.is_projection);
        assert_eq!(s.max_refs, 2);
        assert!(s.unit_refs);
        assert_eq!(s.structure_class(), "matching");
        assert!(s.to_string().contains("2 join results"));
        assert!(s.to_string().contains("LP class = matching"));
    }

    #[test]
    fn structure_class_tracks_the_kernel_dispatch() {
        let mut single: ProfileBuilder<u64> = ProfileBuilder::new();
        single.add_result(1.0, [3]);
        single.add_result(1.0, []);
        assert_eq!(single.build().summary().structure_class(), "closed-form");

        let mut wide: ProfileBuilder<u64> = ProfileBuilder::new();
        wide.add_result(1.0, [0, 1, 2]);
        assert_eq!(wide.build().summary().structure_class(), "simplex");

        let mut grouped: ProfileBuilder<u64> = ProfileBuilder::new();
        grouped.add_projected_result(0, 1.0, 1.0, [1]).unwrap();
        grouped.add_projected_result(0, 1.0, 1.0, [2]).unwrap();
        assert_eq!(grouped.build().summary().structure_class(), "simplex");

        // Hand-assembled duplicate references defeat the unit-coefficient
        // requirement (the builder would have deduplicated them).
        let p = QueryProfile {
            num_private: 1,
            results: vec![ResultLine { weight: 1.0, refs: vec![0, 0] }],
            groups: None,
        };
        let s = p.summary();
        assert!(!s.unit_refs);
        assert_eq!(s.structure_class(), "simplex");
    }

    #[test]
    fn duplicate_refs_merged() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [7, 7, 7]);
        let p = b.build();
        assert_eq!(p.results[0].refs, vec![0]);
        assert!(p.is_functionally_self_join_free());
    }

    #[test]
    fn reference_lists_transpose() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]);
        b.add_result(1.0, [1]);
        let p = b.build();
        let c = p.reference_lists();
        assert_eq!(c[0], vec![0]);
        assert_eq!(c[1], vec![0, 1]);
    }

    #[test]
    fn projection_groups_counted_once() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        // Two join results collapsing onto one projected result of weight 1.
        b.add_projected_result(100, 1.0, 1.0, [1]).unwrap();
        b.add_projected_result(100, 1.0, 1.0, [2]).unwrap();
        b.add_projected_result(200, 1.0, 1.0, [1]).unwrap();
        let p = b.build();
        assert_eq!(p.query_result(), 2.0);
        assert_eq!(p.results.len(), 3);
        let g = p.groups.as_ref().unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].members, vec![0, 1]);
    }

    #[test]
    fn inconsistent_group_weight_is_an_error() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_projected_result(100, 1.0, 1.0, [1]).unwrap();
        let err = b.add_projected_result(100, 2.0, 2.0, [2]).unwrap_err();
        assert!(matches!(err, EngineError::InconsistentGroupWeight { .. }));
        // Id-based builder enforces the same invariant.
        let mut ib = IdProfileBuilder::new();
        ib.add_projected_result(&[7], 1.0, 1.0, [1]).unwrap();
        let err = ib.add_projected_result(&[7], 2.0, 2.0, [2]).unwrap_err();
        assert!(matches!(err, EngineError::InconsistentGroupWeight { .. }));
    }

    #[test]
    fn id_builder_matches_generic_builder() {
        let mut a: ProfileBuilder<u64> = ProfileBuilder::new();
        a.add_result(1.0, [10, 20]);
        a.add_result(2.0, [20]);
        let mut b = IdProfileBuilder::new();
        b.add_result(1.0, [10, 20]);
        b.add_result(2.0, [20]);
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn shard_merge_reproduces_sequential_profile() {
        // One sequential pass over six results...
        let emissions: [(f64, [u64; 2]); 6] = [
            (1.0, [5, 3]),
            (2.0, [3, 8]),
            (1.0, [9, 5]),
            (4.0, [8, 1]),
            (1.0, [1, 5]),
            (2.0, [2, 9]),
        ];
        let mut seq = IdProfileBuilder::new();
        for (w, refs) in emissions {
            seq.add_result(w, refs);
        }
        let seq = seq.build();
        // ...must equal any contiguous chunking merged in order.
        for split in [(2, 4), (1, 5), (3, 3), (6, 0)] {
            let mut shards =
                vec![IdProfileBuilder::new(), IdProfileBuilder::new(), IdProfileBuilder::new()];
            for (i, (w, refs)) in emissions.iter().enumerate() {
                let s = if i < split.0 {
                    0
                } else if i < split.0 + split.1 {
                    1
                } else {
                    2
                };
                shards[s].add_result(*w, refs.iter().copied());
            }
            let mut merged = IdProfileBuilder::new();
            for s in shards {
                merged.merge(s).unwrap();
            }
            assert_eq!(merged.build(), seq, "chunking {split:?}");
        }
    }

    #[test]
    fn shard_merge_remaps_groups() {
        let mut s0 = IdProfileBuilder::new();
        s0.add_projected_result(&[1], 1.0, 1.0, [10]).unwrap();
        s0.add_projected_result(&[2], 1.0, 1.0, [11]).unwrap();
        let mut s1 = IdProfileBuilder::new();
        s1.add_projected_result(&[2], 1.0, 1.0, [12]).unwrap();
        s1.add_projected_result(&[3], 1.0, 1.0, [10]).unwrap();
        let mut merged = IdProfileBuilder::new();
        merged.merge(s0).unwrap();
        merged.merge(s1).unwrap();
        let p = merged.build();
        assert_eq!(p.results.len(), 4);
        assert_eq!(p.num_private, 3);
        let g = p.groups.as_ref().unwrap();
        assert_eq!(g.len(), 3);
        // Group [2] accumulated members from both shards, in shard order.
        assert_eq!(g[1].members, vec![1, 2]);
        assert_eq!(p.query_result(), 3.0);
    }

    #[test]
    fn shard_merge_detects_cross_shard_weight_mismatch() {
        let mut s0 = IdProfileBuilder::new();
        s0.add_projected_result(&[1], 1.0, 1.0, [10]).unwrap();
        let mut s1 = IdProfileBuilder::new();
        s1.add_projected_result(&[1], 3.0, 3.0, [11]).unwrap();
        let mut merged = IdProfileBuilder::new();
        merged.merge(s0).unwrap();
        let err = merged.merge(s1).unwrap_err();
        assert!(matches!(err, EngineError::InconsistentGroupWeight { .. }));
    }
}

#[cfg(test)]
mod neighbor_tests {
    use super::*;

    #[test]
    fn remove_private_drops_referencing_results() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]);
        b.add_result(2.0, [1]);
        b.add_result(4.0, [2]);
        let p = b.build();
        let q = p.remove_private(1);
        assert_eq!(q.results.len(), 1);
        assert_eq!(q.query_result(), 4.0);
        assert_eq!(q.num_private, p.num_private);
    }

    #[test]
    fn downward_sensitivity_equals_max_sensitivity_for_sja() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]);
        b.add_result(2.0, [1]);
        b.add_result(4.0, [2]);
        let p = b.build();
        assert_eq!(p.downward_sensitivity(), p.max_sensitivity());
    }

    #[test]
    fn projection_overlap_shrinks_downward_sensitivity() {
        // Example 7.1: two private tuples each covering the same m projected
        // results; removing either changes nothing.
        let m = 5;
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for l in 0..m {
            b.add_projected_result(l, 1.0, 1.0, [1]).unwrap();
            b.add_projected_result(l, 1.0, 1.0, [2]).unwrap();
        }
        let p = b.build();
        assert_eq!(p.query_result(), m as f64);
        assert_eq!(p.max_sensitivity(), m as f64); // IS_Q(I) = m
        assert_eq!(p.downward_sensitivity(), 0.0); // DS_Q(I) = 0
    }
}
