//! The join executors with lineage tracking.
//!
//! Evaluates an SPJA query by multi-way hash join: atoms are joined in a
//! greedy order (start from the smallest relation, then always pick the atom
//! sharing the most bound variables, breaking ties by relation size, so
//! Cartesian products are taken only when forced). The predicate is applied
//! to full bindings and failing results are dropped (equivalent to setting
//! `ψ(q) = 0` as the paper does).
//!
//! For every surviving result the executor records which primary-private
//! tuples it references: after completion, each atom over a primary private
//! relation binds that relation's PK to a variable, and the value of that
//! variable in the result identifies the referenced tuple (Section 3.2:
//! `q` references `t_P` iff `|t_P ⋈ q| = 1`).
//!
//! Three executors share these semantics:
//!
//! * The **columnar executor** ([`profile`], [`profile_grouped`]) interns
//!   every joined value into a dense `u32` id once per relation, represents
//!   partial bindings as flat id arrays in a reusable arena, probes id-keyed
//!   hash indexes, and partitions probe work across `std::thread::scope`
//!   workers. The final probe stage streams surviving bindings straight into
//!   per-worker [`IdProfileBuilder`] shards (predicate, weight, and lineage
//!   are evaluated inside the probe loop — the full binding set is never
//!   materialized), which are merged in deterministic chunk order: the
//!   resulting [`QueryProfile`] is bit-identical regardless of worker count.
//! * The **worst-case-optimal executor** ([`crate::wcoj`]) enumerates
//!   bindings variable-at-a-time by leapfrog intersection of sorted trie
//!   iterators, so cyclic patterns (triangles, rectangles, cliques) never
//!   materialize the binary-join intermediate blowup. [`Strategy::Auto`]
//!   routes α-cyclic join hypergraphs there and keeps acyclic ones (all of
//!   TPC-H) on the columnar pipeline.
//! * The **reference executor** ([`profile_reference`],
//!   [`profile_grouped_reference`]) is the original single-threaded
//!   row-at-a-time path over `Vec<Value>` bindings, kept as a differential
//!   oracle and as the baseline for the `join_exec` benchmark.
//!
//! All three produce bit-identical [`QueryProfile`]s for the same query, a
//! property the differential proptests (`prop_exec_differential.rs`,
//! `prop_wcoj.rs`) pin down.

use crate::complete::complete_query;
use crate::instance::Instance;
use crate::interner::{ColumnarTable, Interner, UNBOUND};
use crate::lineage::{pack_private_key, IdProfileBuilder, ProfileBuilder, QueryProfile};
use crate::query::{Aggregate, Atom, Query, Var};
use crate::schema::Schema;
use crate::storage::Archive;
use crate::value::{cmp_tuples, Tuple, Value};
use crate::EngineError;
use r2t_obs::Attr;
use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

/// Where a query reads its tuples from.
///
/// [`Source::Rows`] is the classic heap path: the instance's rows are
/// interned into a fresh per-query id space. [`Source::Archive`] reads an
/// opened on-disk archive instead: columns are zero-copy memory-mapped views
/// and the archive's global interner is borrowed, so no per-query interning
/// happens at all. Both sources produce **bit-identical profiles**: dense
/// private ids, projection groups, and group keys depend only on the
/// *emission order* of results and on value *equality* — never on the raw
/// interned id values — and the pipeline enumerates bindings in the same
/// row order for both sources.
#[derive(Clone, Copy)]
pub enum Source<'a> {
    /// Heap-resident rows; interned per query.
    Rows(&'a Instance),
    /// A memory-mapped archive (see [`crate::storage`]).
    Archive(&'a Archive),
}

/// A reference key for a private tuple: (primary-private relation index,
/// primary-key value). Used by the reference executor; the columnar path
/// packs the interned equivalent via [`pack_private_key`].
pub type PrivateKey = (u32, Value);

/// Which join executor evaluates a query. Every strategy produces the same
/// bit-identical [`QueryProfile`]; the choice only affects wall clock and
/// peak memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Route by join-hypergraph shape ([`crate::query::join_is_acyclic`]):
    /// α-acyclic queries (FK chains, paths, stars — all of TPC-H) stay on
    /// the columnar binary-join pipeline, where the greedy order is already
    /// near worst-case optimal; cyclic queries (triangles, rectangles,
    /// cliques) run on the worst-case-optimal executor to avoid the
    /// intermediate-result blowup.
    #[default]
    Auto,
    /// Always the columnar binary-join pipeline.
    Columnar,
    /// Always the worst-case-optimal (generic join / leapfrog) executor.
    Wcoj,
}

/// Tuning knobs for the columnar executor.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for probe/emission stages. `None` uses the machine's
    /// available parallelism. The produced profile is identical for every
    /// setting — workers change wall clock, never results.
    pub workers: Option<usize>,
    /// Minimum probe-side binding count before a stage fans out to threads;
    /// below it the stage runs inline (thread setup would dominate).
    pub parallel_threshold: usize,
    /// Executor selection; [`Strategy::Auto`] routes on join-hypergraph
    /// shape.
    pub strategy: Strategy,
    /// Streamed-execution block size for the columnar pipeline: the maximum
    /// number of seed-stage rows processed per partition. `None` (the
    /// default) runs the whole seed in one partition. `Some(n)` splits the
    /// seed into ascending contiguous blocks of at most `n` rows, runs the
    /// full pipeline per block with a bounded binding arena, and merges the
    /// per-partition profile shards in block order — the profile is
    /// bit-identical to the unpartitioned run for any block size (same
    /// deterministic merge the worker shards use). Ignored by the WCOJ
    /// executor, whose buffered state is already output-proportional.
    pub stream_block: Option<usize>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            workers: None,
            parallel_threshold: 4096,
            strategy: Strategy::Auto,
            stream_block: None,
        }
    }
}

/// Execution statistics reported alongside a profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Largest number of partial bindings materialized at once (the final
    /// stage streams into the profile, so it never counts here). For the
    /// WCOJ executor this is the buffered emission-record count, which is
    /// proportional to the *output*, not to any intermediate join.
    pub peak_bindings: usize,
    /// Distinct values interned by the columnar executor (0 for the
    /// reference path).
    pub interned_values: usize,
    /// Join results that survived the predicate and nonzero-weight filters.
    pub surviving_results: usize,
    /// Estimated peak bytes resident in binding storage: peak bindings ×
    /// binding arity × element width (4 bytes for interned-id executors,
    /// `size_of::<Value>()` for the reference path). Index/trie structures
    /// are excluded on every path — they are proportional to the *input* —
    /// so this is the number the output-proportional-memory claim of the
    /// WCOJ executor is asserted on.
    pub peak_resident_bytes: usize,
}

/// Private atoms of a *completed* query: (primary-private relation index,
/// PK variable), sorted and deduplicated. Shared by every executor path.
pub(crate) fn private_key_vars(schema: &Schema, q: &Query) -> Result<Vec<(u32, Var)>, EngineError> {
    let mut private_vars: Vec<(u32, Var)> = Vec::new();
    for atom in &q.atoms {
        if let Some(pidx) = schema.primary_private().iter().position(|p| *p == atom.relation) {
            let rel = schema.relation(&atom.relation)?;
            let pk = rel.primary_key.ok_or_else(|| {
                EngineError::MalformedQuery(format!(
                    "primary private relation {} has no primary key",
                    atom.relation
                ))
            })?;
            private_vars.push((pidx as u32, atom.vars[pk]));
        }
    }
    private_vars.sort_unstable();
    private_vars.dedup();
    Ok(private_vars)
}

/// Evaluates the query and returns the lineage-annotated profile.
pub fn profile(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
) -> Result<QueryProfile, EngineError> {
    Ok(profile_with_stats(schema, instance, query, &ExecOptions::default())?.0)
}

/// [`profile`] reading from an arbitrary [`Source`].
pub fn profile_src(
    schema: &Schema,
    source: Source<'_>,
    query: &Query,
) -> Result<QueryProfile, EngineError> {
    Ok(profile_with_stats_src(schema, source, query, &ExecOptions::default())?.0)
}

/// [`profile`] with explicit options and execution statistics.
pub fn profile_with_stats(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
    opts: &ExecOptions,
) -> Result<(QueryProfile, ExecStats), EngineError> {
    profile_with_stats_src(schema, Source::Rows(instance), query, opts)
}

/// [`profile_with_stats`] reading from an arbitrary [`Source`].
pub fn profile_with_stats_src(
    schema: &Schema,
    source: Source<'_>,
    query: &Query,
    opts: &ExecOptions,
) -> Result<(QueryProfile, ExecStats), EngineError> {
    let q = complete_query(schema, query)?;
    if q.num_vars() == 0 {
        // Degenerate zero-variable queries (relations without columns) are
        // not worth a columnar path.
        return match source {
            Source::Rows(instance) => profile_reference(schema, instance, query),
            Source::Archive(a) => profile_reference(schema, &a.materialize(), query),
        };
    }
    let private_vars = private_key_vars(schema, &q)?;
    if use_wcoj(&q, opts.strategy) {
        return match crate::wcoj::run_flat(schema, source, &q, private_vars, opts)? {
            Some(out) => Ok(out),
            None => Ok((QueryProfile::default(), ExecStats::default())),
        };
    }
    let Some(plan) = Plan::new(schema, source, &q, private_vars, opts)? else {
        return Ok((QueryProfile::default(), ExecStats::default()));
    };
    let interned_values = plan.interner.len();
    let (out, peak_bindings, surviving_results) = plan.run(None)?;
    let EmitOut::Flat(builder) = out else {
        unreachable!("flat run produced grouped output");
    };
    let stats = ExecStats {
        peak_bindings,
        interned_values,
        surviving_results,
        peak_resident_bytes: peak_bindings * plan.nvars * std::mem::size_of::<u32>(),
    };
    Ok((builder.build(), stats))
}

/// Whether the query should run on the worst-case-optimal executor.
fn use_wcoj(q: &Query, strategy: Strategy) -> bool {
    match strategy {
        Strategy::Columnar => false,
        Strategy::Wcoj => true,
        Strategy::Auto => !crate::query::join_is_acyclic(&q.atoms),
    }
}

/// Evaluates a *group-by* query: join results are partitioned by the values
/// of `group_vars` and one lineage profile is produced per group, keyed by
/// the group's tuple. This is the engine half of the paper's Section 11
/// extension; the DP half (splitting ε across groups) lives in
/// `r2t-core::groupby`.
///
/// Groups are returned sorted by their key under the canonical value order
/// ([`crate::value::Value::cmp_key`]), so the output is deterministic.
pub fn profile_grouped(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
    group_vars: &[Var],
) -> Result<Vec<(Tuple, QueryProfile)>, EngineError> {
    Ok(profile_grouped_with_stats(schema, instance, query, group_vars, &ExecOptions::default())?.0)
}

/// [`profile_grouped`] reading from an arbitrary [`Source`].
pub fn profile_grouped_src(
    schema: &Schema,
    source: Source<'_>,
    query: &Query,
    group_vars: &[Var],
) -> Result<Vec<(Tuple, QueryProfile)>, EngineError> {
    Ok(profile_grouped_with_stats_src(schema, source, query, group_vars, &ExecOptions::default())?
        .0)
}

/// [`profile_grouped`] with explicit options and execution statistics.
pub fn profile_grouped_with_stats(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
    group_vars: &[Var],
    opts: &ExecOptions,
) -> Result<(Vec<(Tuple, QueryProfile)>, ExecStats), EngineError> {
    profile_grouped_with_stats_src(schema, Source::Rows(instance), query, group_vars, opts)
}

/// [`profile_grouped_with_stats`] reading from an arbitrary [`Source`].
pub fn profile_grouped_with_stats_src(
    schema: &Schema,
    source: Source<'_>,
    query: &Query,
    group_vars: &[Var],
    opts: &ExecOptions,
) -> Result<(Vec<(Tuple, QueryProfile)>, ExecStats), EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();
    for &v in group_vars {
        if (v as usize) >= nvars {
            return Err(EngineError::MalformedQuery(format!(
                "group-by variable {v} not bound by the join"
            )));
        }
    }
    if nvars == 0 {
        let groups = match source {
            Source::Rows(instance) => {
                profile_grouped_reference(schema, instance, query, group_vars)?
            }
            Source::Archive(a) => {
                profile_grouped_reference(schema, &a.materialize(), query, group_vars)?
            }
        };
        return Ok((groups, ExecStats::default()));
    }
    let private_vars = private_key_vars(schema, &q)?;
    if use_wcoj(&q, opts.strategy) {
        return match crate::wcoj::run_grouped(schema, source, &q, group_vars, private_vars, opts)? {
            Some(out) => Ok(out),
            None => Ok((Vec::new(), ExecStats::default())),
        };
    }
    let Some(plan) = Plan::new(schema, source, &q, private_vars, opts)? else {
        return Ok((Vec::new(), ExecStats::default()));
    };
    let interned_values = plan.interner.len();
    let (out, peak_bindings, surviving_results) = plan.run(Some(group_vars))?;
    let EmitOut::Grouped(acc) = out else {
        unreachable!("grouped run produced flat output");
    };
    let groups = resolve_groups(acc, &plan.interner);
    let stats = ExecStats {
        peak_bindings,
        interned_values,
        surviving_results,
        peak_resident_bytes: peak_bindings * plan.nvars * std::mem::size_of::<u32>(),
    };
    Ok((groups, stats))
}

/// Resolves a [`GroupedAcc`]'s interned group keys back to value tuples and
/// sorts groups by the canonical key order. Shared by the columnar and WCOJ
/// grouped paths so their outputs are constructed identically.
pub(crate) fn resolve_groups(acc: GroupedAcc, interner: &Interner) -> Vec<(Tuple, QueryProfile)> {
    let mut groups: Vec<(Tuple, QueryProfile)> = acc
        .entries
        .into_iter()
        .map(|(key, b)| {
            let tuple: Tuple = key.iter().map(|&id| interner.resolve(id).clone()).collect();
            (tuple, b.build())
        })
        .collect();
    groups.sort_by(|(a, _), (b, _)| cmp_tuples(a, b));
    groups
}

/// Evaluates the query answer `Q(I)` directly.
pub fn evaluate(schema: &Schema, instance: &Instance, query: &Query) -> Result<f64, EngineError> {
    Ok(profile(schema, instance, query)?.query_result())
}

// ---------------------------------------------------------------------------
// The columnar pipeline.
// ---------------------------------------------------------------------------

/// The interner a plan reads ids from: owned when built per-query from heap
/// rows, borrowed when the source is an archive (whose database-wide
/// interner is shared by every query — cloning it would cost O(values)).
pub(crate) enum PlanInterner<'a> {
    Owned(Interner),
    Borrowed(&'a Interner),
}

impl std::ops::Deref for PlanInterner<'_> {
    type Target = Interner;

    #[inline]
    fn deref(&self) -> &Interner {
        match self {
            PlanInterner::Owned(i) => i,
            PlanInterner::Borrowed(i) => i,
        }
    }
}

/// Resolves the columnar id tables a query joins over, one table per
/// *distinct* relation in first-appearance order (self-joins share). Shared
/// by the columnar and WCOJ executors — identical table order is what makes
/// their interned-id spaces, and therefore their private reference keys,
/// line up bit-for-bit.
///
/// For [`Source::Rows`] every touched relation is interned into a fresh
/// per-query id space; for [`Source::Archive`] the archive's mapped tables
/// are reused as-is (a cheap `Arc` clone per column) along with its global
/// interner. The two id spaces differ in raw values but agree on equality
/// and row order, which is all profile construction depends on.
pub(crate) fn intern_tables<'a>(
    schema: &Schema,
    source: Source<'a>,
    q: &Query,
) -> Result<(PlanInterner<'a>, Vec<ColumnarTable>, Vec<usize>), EngineError> {
    let mut tables: Vec<ColumnarTable> = Vec::new();
    let mut by_rel: HashMap<&str, usize> = HashMap::new();
    let mut atom_table = Vec::with_capacity(q.atoms.len());
    let mut interner = match source {
        Source::Rows(_) => Interner::new(),
        Source::Archive(_) => Interner::default(), // unused; archive interner is borrowed
    };
    for atom in &q.atoms {
        schema.relation(&atom.relation)?;
        let idx = match by_rel.get(atom.relation.as_str()) {
            Some(&i) => i,
            None => {
                let i = tables.len();
                let table = match source {
                    Source::Rows(instance) => instance.columnar(&atom.relation, &mut interner),
                    Source::Archive(a) => a
                        .table(&atom.relation)
                        .cloned()
                        .unwrap_or(ColumnarTable { cols: Vec::new(), nrows: 0 }),
                };
                tables.push(table);
                by_rel.insert(atom.relation.as_str(), i);
                i
            }
        };
        atom_table.push(idx);
    }
    let interner = match source {
        Source::Rows(_) => PlanInterner::Owned(interner),
        Source::Archive(a) => PlanInterner::Borrowed(a.interner()),
    };
    Ok((interner, tables, atom_table))
}

/// Variables whose `Value` must be resolved per result: those read by the
/// predicate or the weight expression. Sorted and deduplicated.
pub(crate) fn needed_value_vars(q: &Query) -> Vec<Var> {
    let mut needed_vars = Vec::new();
    q.predicate.vars(&mut needed_vars);
    if let Aggregate::Sum(e) = &q.aggregate {
        e.vars(&mut needed_vars);
    }
    needed_vars.sort_unstable();
    needed_vars.dedup();
    needed_vars
}

/// Prepared columnar execution state: interned tables, join order, and the
/// variable sets each emission needs.
struct Plan<'a> {
    q: &'a Query,
    nvars: usize,
    interner: PlanInterner<'a>,
    /// Interned tables, one per *distinct* relation (self-joins share).
    tables: Vec<ColumnarTable>,
    /// Atom index -> index into `tables`.
    atom_table: Vec<usize>,
    /// Greedy join order over atom indices.
    order: Vec<usize>,
    /// (primary-private relation index, PK variable) pairs.
    private_vars: Vec<(u32, Var)>,
    /// Variables whose `Value` must be materialized per result (those read
    /// by the predicate or the weight expression).
    needed_vars: Vec<Var>,
    workers: usize,
    threshold: usize,
    /// Streamed-execution block size (seed rows per partition); 0 disables.
    stream_block: usize,
}

impl<'a> Plan<'a> {
    /// Resolves the source tables and plans the join; `None` when the query
    /// has no atoms (empty profile).
    fn new(
        schema: &Schema,
        source: Source<'a>,
        q: &'a Query,
        private_vars: Vec<(u32, Var)>,
        opts: &ExecOptions,
    ) -> Result<Option<Plan<'a>>, EngineError> {
        if q.atoms.is_empty() {
            return Ok(None);
        }
        let nvars = q.num_vars();
        let (interner, tables, atom_table) = intern_tables(schema, source, q)?;
        let sizes: Vec<usize> = atom_table.iter().map(|&i| tables[i].nrows).collect();
        let order = greedy_order(q, &sizes, nvars);
        let needed_vars = needed_value_vars(q);
        let workers = opts
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
        r2t_obs::gauge_max("exec.interner.values", interner.len() as u64);
        Ok(Some(Plan {
            q,
            nvars,
            interner,
            tables,
            atom_table,
            order,
            private_vars,
            needed_vars,
            workers: workers.max(1),
            threshold: opts.parallel_threshold,
            stream_block: opts.stream_block.unwrap_or(0),
        }))
    }

    /// Worker count for a stage over `nparts` probe bindings.
    fn workers_for(&self, nparts: usize) -> usize {
        if nparts < self.threshold.max(1) {
            1
        } else {
            self.workers.min(nparts)
        }
    }

    /// Runs the pipeline: every stage but the last extends the binding
    /// arena; the last streams into profile shards. Returns the emitted
    /// output, the peak binding count, and the surviving-result count.
    ///
    /// With a `stream_block` the seed stage is split into ascending
    /// contiguous row blocks, the pipeline runs once per block, and the
    /// per-partition shards are merged in block order. Because the
    /// unpartitioned run enumerates bindings in seed-row order, the
    /// concatenation of the partitions' emission streams is exactly the
    /// unpartitioned emission stream — so the deterministic shard merge
    /// yields a bit-identical profile while the binding arena stays bounded
    /// by a block's output instead of the whole join's.
    fn run(&self, group_vars: Option<&[Var]>) -> Result<(EmitOut, usize, usize), EngineError> {
        let _run_span = r2t_obs::span("exec.run");
        // Per-stage key indexes depend only on the bound-variable
        // progression, never on binding contents, so they are built once and
        // shared by every partition.
        let mut bound = vec![false; self.nvars];
        let mut indexes = Vec::with_capacity(self.order.len());
        for &ai in &self.order {
            let atom = &self.q.atoms[ai];
            let table = &self.tables[self.atom_table[ai]];
            indexes.push(KeyIndex::build(table, &atom.vars, &bound));
            for &v in &atom.vars {
                bound[v as usize] = true;
            }
        }
        let seed_rows = self.tables[self.atom_table[self.order[0]]].nrows;
        let out = if self.stream_block == 0 || seed_rows <= self.stream_block {
            self.run_partition(&indexes, None, group_vars)?
        } else {
            self.run_streamed(&indexes, seed_rows, group_vars)?
        };
        r2t_obs::gauge_max("exec.peak_bindings", out.1 as u64);
        r2t_obs::gauge_max("proc.peak_rss_bytes", r2t_obs::peak_rss_bytes());
        Ok(out)
    }

    /// The streamed driver: one pipeline pass per contiguous seed block,
    /// shards merged in block order.
    fn run_streamed(
        &self,
        indexes: &[KeyIndex],
        seed_rows: usize,
        group_vars: Option<&[Var]>,
    ) -> Result<(EmitOut, usize, usize), EngineError> {
        let block = self.stream_block;
        let mut acc = EmitOut::empty(group_vars.is_some());
        let mut peak = 0usize;
        let mut emitted = 0usize;
        let mut partitions = 0u64;
        let mut start = 0usize;
        while start < seed_rows {
            let end = (start + block).min(seed_rows);
            let (out, p, n) = self.run_partition(indexes, Some(start..end), group_vars)?;
            peak = peak.max(p);
            emitted += n;
            partitions += 1;
            match (&mut acc, out) {
                (EmitOut::Flat(a), EmitOut::Flat(b)) => a.merge(b)?,
                (EmitOut::Grouped(a), EmitOut::Grouped(b)) => a.merge(b)?,
                _ => unreachable!("partitions agree on grouping"),
            }
            start = end;
        }
        r2t_obs::counter_add("exec.partition.count", partitions);
        r2t_obs::counter_add("exec.partition.seed_rows", seed_rows as u64);
        r2t_obs::gauge_max("exec.partition.peak_bindings", peak as u64);
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "exec.partitioned_run",
                &[
                    ("partitions", Attr::U64(partitions)),
                    ("block", Attr::U64(block as u64)),
                    ("seed_rows", Attr::U64(seed_rows as u64)),
                    ("emitted", Attr::U64(emitted as u64)),
                ],
            );
        }
        Ok((acc, peak, emitted))
    }

    /// One pipeline pass over `seed` rows of the seed stage (all rows when
    /// `None`), with per-stage indexes prebuilt by the caller.
    fn run_partition(
        &self,
        indexes: &[KeyIndex],
        seed: Option<Range<usize>>,
        group_vars: Option<&[Var]>,
    ) -> Result<(EmitOut, usize, usize), EngineError> {
        let nvars = self.nvars;
        // The seed is one fully-unbound partial: probing it against the
        // first atom's index (which has no bound key columns, i.e. matches
        // every row of the seed range) is exactly the seeding scan.
        let seed_index = seed.map(|r| KeyIndex::All((r.start as u32..r.end as u32).collect()));
        let mut partials: Vec<u32> = vec![UNBOUND; nvars];
        let mut peak = 1usize;
        for (s, &ai) in self.order.iter().enumerate() {
            let atom = &self.q.atoms[ai];
            let table = &self.tables[self.atom_table[ai]];
            let index = match (&seed_index, s) {
                (Some(si), 0) => si,
                _ => &indexes[s],
            };
            let rows_in = partials.len() / nvars;
            if s + 1 == self.order.len() {
                let (out, emitted) =
                    self.emit_stage(&partials, s, atom, table, index, group_vars)?;
                r2t_obs::counter_add("exec.rows.emitted", emitted as u64);
                self.record_stage(s, "emit", rows_in, emitted, table.nrows);
                return Ok((out, peak, emitted));
            }
            partials = self.extend_stage(&partials, s, atom, table, index);
            peak = peak.max(partials.len() / nvars);
            self.record_stage(s, "extend", rows_in, partials.len() / nvars, table.nrows);
            if partials.is_empty() {
                break;
            }
        }
        Ok((EmitOut::empty(group_vars.is_some()), peak, 0))
    }

    /// Records one pipeline stage's build/probe volumes. All counts are
    /// non-private pipeline cardinalities (see DESIGN.md §3.3).
    fn record_stage(
        &self,
        stage: usize,
        kind: &'static str,
        rows_in: usize,
        rows_out: usize,
        build_rows: usize,
    ) {
        r2t_obs::counter_add("exec.stages", 1);
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "exec.stage",
                &[
                    ("stage", Attr::U64(stage as u64)),
                    ("kind", Attr::Str(kind)),
                    ("rows_in", Attr::U64(rows_in as u64)),
                    ("rows_out", Attr::U64(rows_out as u64)),
                    ("build_rows", Attr::U64(build_rows as u64)),
                    ("workers", Attr::U64(self.workers_for(rows_in) as u64)),
                ],
            );
        }
    }

    /// One intermediate probe stage: extends every partial with the atom's
    /// matching rows, fanning out across workers when the probe side is
    /// large enough. Chunks are contiguous and concatenated in order, so the
    /// output arena is identical for any worker count. `stage` is the
    /// pipeline position, used only for telemetry labels.
    fn extend_stage(
        &self,
        partials: &[u32],
        stage: usize,
        atom: &Atom,
        table: &ColumnarTable,
        index: &KeyIndex,
    ) -> Vec<u32> {
        let nvars = self.nvars;
        let nparts = partials.len() / nvars;
        let workers = self.workers_for(nparts);
        if workers <= 1 {
            return extend_range(partials, nvars, &atom.vars, table, index);
        }
        let chunk_parts = nparts.div_ceil(workers);
        let outs: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = partials
                .chunks(chunk_parts * nvars)
                .enumerate()
                .map(|(widx, chunk)| {
                    scope.spawn(move || {
                        let t0 = worker_clock();
                        let out = extend_range(chunk, nvars, &atom.vars, table, index);
                        record_worker(t0, stage, widx, chunk.len() / nvars, out.len() / nvars);
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("probe worker panicked")).collect()
        });
        let total = outs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for o in outs {
            out.extend_from_slice(&o);
        }
        out
    }

    /// The final probe stage: surviving bindings stream into per-worker
    /// profile shards, merged in chunk order (deterministic for any worker
    /// count).
    fn emit_stage(
        &self,
        partials: &[u32],
        stage: usize,
        atom: &Atom,
        table: &ColumnarTable,
        index: &KeyIndex,
        group_vars: Option<&[Var]>,
    ) -> Result<(EmitOut, usize), EngineError> {
        let nparts = partials.len() / self.nvars;
        let workers = self.workers_for(nparts);
        if workers <= 1 {
            return self.emit_range(partials, atom, table, index, group_vars);
        }
        let chunk_parts = nparts.div_ceil(workers);
        let shards: Vec<Result<(EmitOut, usize), EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = partials
                .chunks(chunk_parts * self.nvars)
                .enumerate()
                .map(|(widx, chunk)| {
                    scope.spawn(move || {
                        let t0 = worker_clock();
                        let out = self.emit_range(chunk, atom, table, index, group_vars);
                        let emitted = out.as_ref().map(|&(_, n)| n).unwrap_or(0);
                        record_worker(t0, stage, widx, chunk.len() / self.nvars, emitted);
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("emit worker panicked")).collect()
        });
        let mut shards = shards.into_iter();
        let (mut acc, mut emitted) = shards.next().expect("at least one worker")?;
        for shard in shards {
            let (shard, n) = shard?;
            emitted += n;
            match (&mut acc, shard) {
                (EmitOut::Flat(a), EmitOut::Flat(b)) => a.merge(b)?,
                (EmitOut::Grouped(a), EmitOut::Grouped(b)) => a.merge(b)?,
                _ => unreachable!("workers agree on grouping"),
            }
        }
        Ok((acc, emitted))
    }

    /// Probes one contiguous chunk of partials through the final atom and
    /// emits surviving bindings into a fresh shard.
    fn emit_range(
        &self,
        chunk: &[u32],
        atom: &Atom,
        table: &ColumnarTable,
        index: &KeyIndex,
        group_vars: Option<&[Var]>,
    ) -> Result<(EmitOut, usize), EngineError> {
        let nvars = self.nvars;
        let mut out = EmitOut::empty(group_vars.is_some());
        let mut emitted = 0usize;
        let mut keybuf: Vec<u32> = Vec::new();
        let mut gkey: Vec<u32> = Vec::new();
        let mut pkey: Vec<u32> = Vec::new();
        let mut nb: Vec<u32> = vec![UNBOUND; nvars];
        let mut scratch: Vec<Value> = vec![Value::Int(i64::MIN); nvars];
        for p in chunk.chunks_exact(nvars) {
            let Some(matches) = index.candidates(p, &mut keybuf) else { continue };
            'rows: for &ri in matches {
                nb.copy_from_slice(p);
                for (col, &v) in atom.vars.iter().enumerate() {
                    let id = table.cols[col][ri as usize];
                    let slot = &mut nb[v as usize];
                    if *slot == UNBOUND {
                        *slot = id;
                    } else if *slot != id {
                        continue 'rows;
                    }
                }
                // The binding is complete: evaluate predicate and weight on
                // the resolved values, then emit lineage over interned ids.
                for &v in &self.needed_vars {
                    scratch[v as usize] = self.interner.resolve(nb[v as usize]).clone();
                }
                if !self.q.predicate.eval(&scratch) {
                    continue;
                }
                let w = self.q.aggregate.weight(&scratch);
                if w == 0.0 {
                    continue;
                }
                emitted += 1;
                let refs = self
                    .private_vars
                    .iter()
                    .map(|&(pidx, var)| pack_private_key(pidx, nb[var as usize]));
                let builder = match (&mut out, group_vars) {
                    (EmitOut::Flat(b), _) => b,
                    (EmitOut::Grouped(acc), Some(gv)) => {
                        gkey.clear();
                        gkey.extend(gv.iter().map(|&v| nb[v as usize]));
                        acc.builder(&gkey)
                    }
                    _ => unreachable!("grouped output without group vars"),
                };
                match &self.q.projection {
                    None => {
                        builder.add_result(w, refs);
                    }
                    Some(proj) => {
                        pkey.clear();
                        pkey.extend(proj.iter().map(|&v| nb[v as usize]));
                        builder.add_projected_result(&pkey, w, w, refs)?;
                    }
                }
            }
        }
        Ok((out, emitted))
    }
}

/// Greedy join order: smallest atom first, then maximize shared bound
/// variables, tie-breaking towards smaller relations. The WCOJ executor
/// reuses this as its canonical *atom pipeline order* so its emission order
/// reproduces the columnar executor's exactly.
pub(crate) fn greedy_order(q: &Query, sizes: &[usize], nvars: usize) -> Vec<usize> {
    let natoms = q.atoms.len();
    let mut used = vec![false; natoms];
    let mut order = Vec::with_capacity(natoms);
    let first = (0..natoms).min_by_key(|&i| sizes[i]).expect("nonempty");
    used[first] = true;
    order.push(first);
    let mut bound = vec![false; nvars];
    for &v in &q.atoms[first].vars {
        bound[v as usize] = true;
    }
    while order.len() < natoms {
        let next = (0..natoms)
            .filter(|&i| !used[i])
            .max_by_key(|&i| {
                let shared = q.atoms[i].vars.iter().filter(|&&v| bound[v as usize]).count();
                (shared, std::cmp::Reverse(sizes[i]))
            })
            .expect("unused atom exists");
        used[next] = true;
        for &v in &q.atoms[next].vars {
            bound[v as usize] = true;
        }
        order.push(next);
    }
    order
}

/// Starts the per-worker timer when full-trace telemetry is active; the
/// level check keeps `Instant::now` syscalls off the hot path otherwise.
pub(crate) fn worker_clock() -> Option<Instant> {
    r2t_obs::enabled(r2t_obs::Level::Full).then(Instant::now)
}

/// Records one worker's chunk timing (skew shows up as spread across the
/// `secs` values of a stage's workers). No-op unless [`worker_clock`] armed.
pub(crate) fn record_worker(
    t0: Option<Instant>,
    stage: usize,
    worker: usize,
    rows_in: usize,
    rows_out: usize,
) {
    if let Some(t0) = t0 {
        r2t_obs::event(
            "exec.worker",
            &[
                ("stage", Attr::U64(stage as u64)),
                ("worker", Attr::U64(worker as u64)),
                ("rows_in", Attr::U64(rows_in as u64)),
                ("rows_out", Attr::U64(rows_out as u64)),
                ("secs", Attr::F64(t0.elapsed().as_secs_f64())),
            ],
        );
    }
}

/// Extends each partial in `chunk` with the atom's matching rows; the
/// `UNBOUND` sentinel marks unbound variables, and repeated variables must
/// agree (within the atom and against the partial).
fn extend_range(
    chunk: &[u32],
    nvars: usize,
    vars: &[Var],
    table: &ColumnarTable,
    index: &KeyIndex,
) -> Vec<u32> {
    let mut out = Vec::new();
    let mut keybuf: Vec<u32> = Vec::new();
    for p in chunk.chunks_exact(nvars) {
        let Some(matches) = index.candidates(p, &mut keybuf) else { continue };
        'rows: for &ri in matches {
            let base = out.len();
            out.extend_from_slice(p);
            for (col, &v) in vars.iter().enumerate() {
                let id = table.cols[col][ri as usize];
                let slot = &mut out[base + v as usize];
                if *slot == UNBOUND {
                    *slot = id;
                } else if *slot != id {
                    out.truncate(base);
                    continue 'rows;
                }
            }
        }
    }
    out
}

/// A per-stage hash index over the atom's key columns (first occurrence of
/// each already-bound variable), keyed by interned ids.
enum KeyIndex {
    /// No bound key columns: every row matches (seed or Cartesian stage).
    All(Vec<u32>),
    /// 1–2 key columns packed into a `u64`.
    Packed { key_vars: [Var; 2], nkeys: usize, map: HashMap<u64, Vec<u32>> },
    /// 3+ key columns.
    Wide { key_vars: Vec<Var>, map: HashMap<Box<[u32]>, Vec<u32>> },
}

impl KeyIndex {
    fn build(table: &ColumnarTable, vars: &[Var], bound: &[bool]) -> KeyIndex {
        if table.nrows == 0 {
            // An empty relation has no column vectors to index (its arity is
            // unknowable from zero rows); no candidate ever matches.
            return KeyIndex::All(Vec::new());
        }
        let mut key_cols: Vec<(usize, Var)> = Vec::new();
        let mut seen: Vec<Var> = Vec::new();
        for (col, &v) in vars.iter().enumerate() {
            if bound[v as usize] && !seen.contains(&v) {
                key_cols.push((col, v));
                seen.push(v);
            }
        }
        match key_cols.len() {
            0 => KeyIndex::All((0..table.nrows as u32).collect()),
            n @ (1 | 2) => {
                let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
                let c0 = &table.cols[key_cols[0].0];
                for (ri, &v0) in c0.iter().enumerate() {
                    let mut k = v0 as u64;
                    if n == 2 {
                        k = (k << 32) | table.cols[key_cols[1].0][ri] as u64;
                    }
                    map.entry(k).or_default().push(ri as u32);
                }
                let second = if n == 2 { key_cols[1].1 } else { 0 };
                KeyIndex::Packed { key_vars: [key_cols[0].1, second], nkeys: n, map }
            }
            _ => {
                let mut map: HashMap<Box<[u32]>, Vec<u32>> = HashMap::new();
                let mut key: Vec<u32> = Vec::with_capacity(key_cols.len());
                for ri in 0..table.nrows {
                    key.clear();
                    key.extend(key_cols.iter().map(|&(c, _)| table.cols[c][ri]));
                    if let Some(rows) = map.get_mut(key.as_slice()) {
                        rows.push(ri as u32);
                    } else {
                        map.insert(key.as_slice().into(), vec![ri as u32]);
                    }
                }
                KeyIndex::Wide { key_vars: key_cols.iter().map(|&(_, v)| v).collect(), map }
            }
        }
    }

    /// Row ids matching the partial's key values (`None` when absent).
    #[inline]
    fn candidates<'a>(&'a self, p: &[u32], keybuf: &mut Vec<u32>) -> Option<&'a [u32]> {
        match self {
            KeyIndex::All(rows) => Some(rows),
            KeyIndex::Packed { key_vars, nkeys, map } => {
                let mut k = p[key_vars[0] as usize] as u64;
                if *nkeys == 2 {
                    k = (k << 32) | p[key_vars[1] as usize] as u64;
                }
                map.get(&k).map(Vec::as_slice)
            }
            KeyIndex::Wide { key_vars, map } => {
                keybuf.clear();
                keybuf.extend(key_vars.iter().map(|&v| p[v as usize]));
                map.get(keybuf.as_slice()).map(Vec::as_slice)
            }
        }
    }
}

/// Per-worker emission target: one shard for flat queries, a keyed shard
/// collection for group-by queries.
pub(crate) enum EmitOut {
    Flat(IdProfileBuilder),
    Grouped(GroupedAcc),
}

impl EmitOut {
    pub(crate) fn empty(grouped: bool) -> EmitOut {
        if grouped {
            EmitOut::Grouped(GroupedAcc::default())
        } else {
            EmitOut::Flat(IdProfileBuilder::new())
        }
    }
}

/// Group-keyed shard collection preserving first-seen group order (so shard
/// merges reproduce the sequential group discovery order).
#[derive(Default)]
pub(crate) struct GroupedAcc {
    ids: HashMap<Box<[u32]>, u32>,
    pub(crate) entries: Vec<(Box<[u32]>, IdProfileBuilder)>,
}

impl GroupedAcc {
    pub(crate) fn builder(&mut self, key: &[u32]) -> &mut IdProfileBuilder {
        if let Some(&i) = self.ids.get(key) {
            return &mut self.entries[i as usize].1;
        }
        let key: Box<[u32]> = key.into();
        self.ids.insert(key.clone(), self.entries.len() as u32);
        self.entries.push((key, IdProfileBuilder::new()));
        &mut self.entries.last_mut().expect("just pushed").1
    }

    pub(crate) fn merge(&mut self, shard: GroupedAcc) -> Result<(), EngineError> {
        for (key, b) in shard.entries {
            self.builder(&key).merge(b)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The reference executor (pre-columnar row-at-a-time path).
// ---------------------------------------------------------------------------

/// Evaluates via the original single-threaded row-at-a-time executor
/// (`Vec<Value>` bindings, value-keyed hash indexes). Kept as the
/// differential-testing oracle and the baseline the `join_exec` benchmark
/// measures against.
pub fn profile_reference(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
) -> Result<(QueryProfile, ExecStats), EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();
    let private_vars = private_key_vars(schema, &q)?;
    let (bindings, peak_bindings) = join_rows(schema, instance, &q, nvars)?;
    let mut builder: ProfileBuilder<PrivateKey, Tuple> = ProfileBuilder::new();
    let mut surviving = 0usize;
    for binding in &bindings {
        if !q.predicate.eval(binding) {
            continue;
        }
        let w = q.aggregate.weight(binding);
        if w == 0.0 {
            continue;
        }
        surviving += 1;
        let refs = private_vars.iter().map(|&(pidx, var)| (pidx, binding[var as usize].clone()));
        match &q.projection {
            None => {
                builder.add_result(w, refs);
            }
            Some(proj) => {
                let key: Tuple = proj.iter().map(|&v| binding[v as usize].clone()).collect();
                builder.add_projected_result(key, w, w, refs)?;
            }
        }
    }
    let stats = ExecStats {
        peak_bindings,
        interned_values: 0,
        surviving_results: surviving,
        peak_resident_bytes: peak_bindings * nvars * std::mem::size_of::<Value>(),
    };
    Ok((builder.build(), stats))
}

/// Group-by evaluation via the reference executor; same output contract as
/// [`profile_grouped`] (canonically key-sorted groups).
pub fn profile_grouped_reference(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
    group_vars: &[Var],
) -> Result<Vec<(Tuple, QueryProfile)>, EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();
    for &v in group_vars {
        if (v as usize) >= nvars {
            return Err(EngineError::MalformedQuery(format!(
                "group-by variable {v} not bound by the join"
            )));
        }
    }
    let private_vars = private_key_vars(schema, &q)?;
    let (bindings, _) = join_rows(schema, instance, &q, nvars)?;
    let mut ids: HashMap<Tuple, usize> = HashMap::new();
    let mut entries: Vec<(Tuple, ProfileBuilder<PrivateKey, Tuple>)> = Vec::new();
    for binding in &bindings {
        if !q.predicate.eval(binding) {
            continue;
        }
        let w = q.aggregate.weight(binding);
        if w == 0.0 {
            continue;
        }
        let key: Tuple = group_vars.iter().map(|&v| binding[v as usize].clone()).collect();
        let idx = match ids.get(&key) {
            Some(&i) => i,
            None => {
                let i = entries.len();
                ids.insert(key.clone(), i);
                entries.push((key, ProfileBuilder::new()));
                i
            }
        };
        let builder = &mut entries[idx].1;
        let refs = private_vars.iter().map(|&(pidx, var)| (pidx, binding[var as usize].clone()));
        match &q.projection {
            None => {
                builder.add_result(w, refs);
            }
            Some(proj) => {
                let pkey: Tuple = proj.iter().map(|&v| binding[v as usize].clone()).collect();
                builder.add_projected_result(pkey, w, w, refs)?;
            }
        }
    }
    let mut out: Vec<(Tuple, QueryProfile)> =
        entries.into_iter().map(|(key, b)| (key, b.build())).collect();
    out.sort_by(|(a, _), (b, _)| cmp_tuples(a, b));
    Ok(out)
}

/// Computes all join bindings (dense variable assignments) row-at-a-time,
/// returning the bindings and the peak materialized binding count.
fn join_rows(
    schema: &Schema,
    instance: &Instance,
    q: &Query,
    nvars: usize,
) -> Result<(Vec<Vec<Value>>, usize), EngineError> {
    if q.atoms.is_empty() {
        return Ok((Vec::new(), 0));
    }
    // Validate relations and collect sizes.
    let mut sizes = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        schema.relation(&atom.relation)?;
        sizes.push(instance.rows(&atom.relation).len());
    }
    let order = greedy_order(q, &sizes, nvars);

    // Seed with the first atom.
    let sentinel = Value::Int(i64::MIN);
    let mut partials: Vec<Vec<Value>> = Vec::new();
    let mut bound_now = vec![false; nvars];
    {
        let atom = &q.atoms[order[0]];
        for row in instance.rows(&atom.relation) {
            if let Some(b) = bind_tuple(&vec![sentinel.clone(); nvars], &bound_now, atom, row) {
                partials.push(b);
            }
        }
        for &v in &atom.vars {
            bound_now[v as usize] = true;
        }
    }
    let mut peak = partials.len();

    for &ai in &order[1..] {
        let atom = &q.atoms[ai];
        let rows = instance.rows(&atom.relation);
        // Key positions: columns whose variable is already bound (first
        // occurrence per variable).
        let mut key_vars: Vec<(usize, Var)> = Vec::new(); // (col, var)
        let mut seen = Vec::new();
        for (col, &v) in atom.vars.iter().enumerate() {
            if bound_now[v as usize] && !seen.contains(&v) {
                key_vars.push((col, v));
                seen.push(v);
            }
        }
        // Build a hash index on those columns.
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in rows.iter().enumerate() {
            let key: Vec<Value> = key_vars.iter().map(|&(c, _)| row[c].clone()).collect();
            index.entry(key).or_default().push(ri);
        }
        let mut next_partials = Vec::new();
        for p in &partials {
            let key: Vec<Value> = key_vars.iter().map(|&(_, v)| p[v as usize].clone()).collect();
            if let Some(matches) = index.get(&key) {
                for &ri in matches {
                    if let Some(b) = bind_tuple(p, &bound_now, atom, &rows[ri]) {
                        next_partials.push(b);
                    }
                }
            }
        }
        partials = next_partials;
        peak = peak.max(partials.len());
        for &v in &atom.vars {
            bound_now[v as usize] = true;
        }
    }
    Ok((partials, peak))
}

/// Extends a partial binding with a tuple; `None` on conflict (repeated
/// variables must agree).
fn bind_tuple(partial: &[Value], bound: &[bool], atom: &Atom, row: &Tuple) -> Option<Vec<Value>> {
    let mut out = partial.to_vec();
    let mut newly: Vec<Var> = Vec::with_capacity(atom.vars.len());
    for (col, &v) in atom.vars.iter().enumerate() {
        let vi = v as usize;
        if bound[vi] || newly.contains(&v) {
            if out[vi] != row[col] {
                return None;
            }
        } else {
            out[vi] = row[col].clone();
            newly.push(v);
        }
    }
    Some(out)
}

/// A deliberately naive nested-loop evaluator used as a test oracle.
pub fn evaluate_bruteforce(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
) -> Result<f64, EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();
    let sentinel = Value::Int(i64::MIN);
    let mut bindings: Vec<Vec<Value>> = vec![vec![sentinel; nvars]];
    let mut bound = vec![false; nvars];
    for atom in &q.atoms {
        schema.relation(&atom.relation)?;
        let rows = instance.rows(&atom.relation);
        let mut next = Vec::new();
        for b in &bindings {
            for row in rows {
                if let Some(nb) = bind_tuple(b, &bound, atom, row) {
                    next.push(nb);
                }
            }
        }
        bindings = next;
        for &v in &atom.vars {
            bound[v as usize] = true;
        }
    }
    let mut total = 0.0;
    let mut seen: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
    for b in &bindings {
        if !q.predicate.eval(b) {
            continue;
        }
        let w = q.aggregate.weight(b);
        match &q.projection {
            None => total += w,
            Some(proj) => {
                let key: Tuple = proj.iter().map(|&v| b[v as usize].clone()).collect();
                if seen.insert(key) {
                    total += w;
                }
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{atom, CmpOp, Expr, Predicate, Query};
    use crate::schema::{graph_schema_node_dp, Schema};

    fn triangle_plus_star() -> (Schema, Instance) {
        // Triangle 0-1-2 and a star center 3 with leaves 4,5,6.
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..7).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (3, 5), (3, 6)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
            edges.push(vec![Value::Int(b), Value::Int(a)]);
        }
        inst.insert_all("Edge", edges);
        (s, inst)
    }

    #[test]
    fn edge_count_with_predicate() {
        let (s, inst) = triangle_plus_star();
        // Undirected edges counted once: src < dst.
        let q = Query::count(vec![atom("Edge", &[0, 1])]).with_predicate(Predicate::cmp_vars(
            0,
            CmpOp::Lt,
            1,
        ));
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 6.0);
    }

    #[test]
    fn lineage_tracks_both_endpoints() {
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])]).with_predicate(Predicate::cmp_vars(
            0,
            CmpOp::Lt,
            1,
        ));
        let p = profile(&s, &inst, &q).unwrap();
        assert_eq!(p.results.len(), 6);
        assert!(p.results.iter().all(|r| r.refs.len() == 2));
        // Star center has sensitivity 3; triangle nodes 2; leaves 1.
        let mut sens = p.sensitivities();
        sens.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sens, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn triangle_count_via_self_join() {
        let (s, inst) = triangle_plus_star();
        let q =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])])
                .with_predicate(Predicate::And(vec![
                    Predicate::cmp_vars(0, CmpOp::Lt, 1),
                    Predicate::cmp_vars(1, CmpOp::Lt, 2),
                ]));
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 1.0);
    }

    #[test]
    fn matches_bruteforce_on_patterns() {
        let (s, inst) = triangle_plus_star();
        // Length-2 paths (ordered, center distinct ends).
        let q = Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
            .with_predicate(Predicate::cmp_vars(0, CmpOp::Lt, 2));
        let fast = evaluate(&s, &inst, &q).unwrap();
        let slow = evaluate_bruteforce(&s, &inst, &q).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn sum_aggregate() {
        // Sum of dst over all edges from node 3.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])])
            .with_predicate(Predicate::cmp_const(0, CmpOp::Eq, Value::Int(3)))
            .with_sum(Expr::Var(1));
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 15.0);
    }

    #[test]
    fn projection_removes_duplicates() {
        // Distinct sources with any outgoing edge.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])]).with_projection(vec![0]);
        // All 7 nodes have at least one incident (directed) edge.
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 7.0);
        let brute = evaluate_bruteforce(&s, &inst, &q).unwrap();
        assert_eq!(brute, 7.0);
        let p = profile(&s, &inst, &q).unwrap();
        assert_eq!(p.groups.as_ref().unwrap().len(), 7);
        assert_eq!(p.results.len(), 12);
    }

    #[test]
    fn empty_instance_yields_zero() {
        let s = graph_schema_node_dp();
        let inst = Instance::new();
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 0.0);
        let p = profile(&s, &inst, &q).unwrap();
        assert_eq!(p.num_private, 0);
        assert!(p.results.is_empty());
    }

    #[test]
    fn cartesian_product_when_forced() {
        // Node(A) x Node(B): no shared variables.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Node", &[0]), atom("Node", &[1])]);
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 49.0);
    }

    #[test]
    fn repeated_variable_within_atom() {
        // Self-loops only: Edge(A, A). None exist.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 0])]);
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 0.0);
    }

    /// Queries exercising every executor feature on the shared fixture.
    fn fixture_queries() -> Vec<Query> {
        vec![
            Query::count(vec![atom("Edge", &[0, 1])]),
            Query::count(vec![atom("Edge", &[0, 1])]).with_predicate(Predicate::cmp_vars(
                0,
                CmpOp::Lt,
                1,
            )),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
                .with_predicate(Predicate::cmp_vars(0, CmpOp::Ne, 2)),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])]),
            Query::count(vec![atom("Edge", &[0, 1])]).with_sum(Expr::Var(1)),
            Query::count(vec![atom("Edge", &[0, 1])]).with_projection(vec![0]),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
                .with_projection(vec![0, 2]),
            Query::count(vec![atom("Node", &[0]), atom("Node", &[1])]),
        ]
    }

    #[test]
    fn columnar_matches_reference() {
        let (s, inst) = triangle_plus_star();
        for q in fixture_queries() {
            let fast = profile(&s, &inst, &q).unwrap();
            let (slow, _) = profile_reference(&s, &inst, &q).unwrap();
            assert_eq!(fast, slow, "{q:?}");
        }
    }

    #[test]
    fn parallel_profiles_are_deterministic() {
        let (s, inst) = triangle_plus_star();
        for q in fixture_queries() {
            let mut runs = Vec::new();
            for workers in [1, 2, 5] {
                let opts = ExecOptions {
                    workers: Some(workers),
                    parallel_threshold: 1,
                    ..ExecOptions::default()
                };
                runs.push(profile_with_stats(&s, &inst, &q, &opts).unwrap().0);
            }
            assert_eq!(runs[0], runs[1], "{q:?}");
            assert_eq!(runs[0], runs[2], "{q:?}");
            // And the forced-parallel profile equals the default one.
            assert_eq!(runs[0], profile(&s, &inst, &q).unwrap(), "{q:?}");
        }
    }

    #[test]
    fn inconsistent_projected_weight_rejected() {
        // SUM(dst) projected onto src: node 0 has edges to 1 and 2, so the
        // "group weight" differs across members — malformed by Section 7.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])])
            .with_sum(Expr::Var(1))
            .with_projection(vec![0]);
        let err = profile(&s, &inst, &q).unwrap_err();
        assert!(matches!(err, EngineError::InconsistentGroupWeight { .. }), "{err}");
        let err = profile_reference(&s, &inst, &q).unwrap_err();
        assert!(matches!(err, EngineError::InconsistentGroupWeight { .. }), "{err}");
    }

    #[test]
    fn stats_report_peak_and_interning() {
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])]);
        let (_, stats) = profile_with_stats(&s, &inst, &q, &ExecOptions::default()).unwrap();
        assert!(stats.peak_bindings > 0);
        // 7 node ids; every edge value is a node id, so nothing more.
        assert_eq!(stats.interned_values, 7);
        assert!(stats.surviving_results > 0);
        let (_, ref_stats) = profile_reference(&s, &inst, &q).unwrap();
        assert_eq!(ref_stats.surviving_results, stats.surviving_results);
    }
}

#[cfg(test)]
mod grouped_tests {
    use super::*;
    use crate::query::{atom, Query};
    use crate::schema::graph_schema_node_dp;

    #[test]
    fn grouped_profile_partitions_results() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..4).map(|i| vec![Value::Int(i)]));
        // Out-edges: node 0 has 2, node 1 has 1.
        inst.insert_all(
            "Edge",
            [(0, 1), (0, 2), (1, 2)].map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
        );
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let groups = profile_grouped(&s, &inst, &q, &[0]).unwrap();
        assert_eq!(groups.len(), 2);
        let total: f64 = groups.iter().map(|(_, p)| p.query_result()).sum();
        assert_eq!(total, 3.0);
        // Each group's lineage is self-contained.
        for (key, p) in &groups {
            assert_eq!(key.len(), 1);
            assert!(p.results.iter().all(|r| r.refs.len() == 2));
        }
    }

    #[test]
    fn grouped_totals_match_ungrouped() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..6).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
        }
        inst.insert_all("Edge", edges);
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let total = profile(&s, &inst, &q).unwrap().query_result();
        let grouped: f64 = profile_grouped(&s, &inst, &q, &[0])
            .unwrap()
            .iter()
            .map(|(_, p)| p.query_result())
            .sum();
        assert_eq!(total, grouped);
    }

    #[test]
    fn bad_group_var_rejected() {
        let s = graph_schema_node_dp();
        let inst = Instance::new();
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        assert!(profile_grouped(&s, &inst, &q, &[99]).is_err());
    }

    #[test]
    fn grouped_columnar_matches_reference_and_is_deterministic() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..8).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6), (6, 7), (7, 5)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
            edges.push(vec![Value::Int(b), Value::Int(a)]);
        }
        inst.insert_all("Edge", edges);
        for q in [
            Query::count(vec![atom("Edge", &[0, 1])]),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])]),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
                .with_projection(vec![0, 2]),
        ] {
            let reference = profile_grouped_reference(&s, &inst, &q, &[0]).unwrap();
            let fast = profile_grouped(&s, &inst, &q, &[0]).unwrap();
            assert_eq!(fast, reference, "{q:?}");
            let opts =
                ExecOptions { workers: Some(4), parallel_threshold: 1, ..ExecOptions::default() };
            let forced = profile_grouped_with_stats(&s, &inst, &q, &[0], &opts).unwrap().0;
            assert_eq!(forced, reference, "{q:?}");
        }
    }

    #[test]
    fn group_output_is_sorted_by_canonical_key_order() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..12).map(|i| vec![Value::Int(i)]));
        inst.insert_all(
            "Edge",
            [(10, 1), (2, 3), (7, 4)].map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
        );
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let groups = profile_grouped(&s, &inst, &q, &[0]).unwrap();
        let keys: Vec<i64> = groups.iter().map(|(k, _)| k[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![2, 7, 10], "numeric order, not display order");
    }
}
