//! The join executor with lineage tracking.
//!
//! Evaluates an SPJA query by multi-way hash join: atoms are joined in a
//! greedy order (start from the smallest relation, then always pick the atom
//! sharing the most bound variables, breaking ties by relation size, so
//! Cartesian products are taken only when forced). The predicate is applied
//! to full bindings and failing results are dropped (equivalent to setting
//! `ψ(q) = 0` as the paper does).
//!
//! For every surviving result the executor records which primary-private
//! tuples it references: after completion, each atom over a primary private
//! relation binds that relation's PK to a variable, and the value of that
//! variable in the result identifies the referenced tuple (Section 3.2:
//! `q` references `t_P` iff `|t_P ⋈ q| = 1`).

use crate::complete::complete_query;
use crate::instance::Instance;
use crate::lineage::{ProfileBuilder, QueryProfile};
use crate::query::Query;
use crate::schema::Schema;
use crate::value::{Tuple, Value};
use crate::EngineError;
use std::collections::HashMap;

/// A reference key for a private tuple: (primary-private relation index,
/// primary-key value).
pub type PrivateKey = (u32, Value);

/// Evaluates the query and returns the lineage-annotated profile.
pub fn profile(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
) -> Result<QueryProfile, EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();

    // Private atoms: (atom idx, private relation idx, PK variable).
    let mut private_vars: Vec<(u32, crate::query::Var)> = Vec::new();
    for atom in &q.atoms {
        if let Some(pidx) = schema.primary_private().iter().position(|p| *p == atom.relation) {
            let rel = schema.relation(&atom.relation)?;
            let pk = rel.primary_key.ok_or_else(|| {
                EngineError::MalformedQuery(format!(
                    "primary private relation {} has no primary key",
                    atom.relation
                ))
            })?;
            private_vars.push((pidx as u32, atom.vars[pk]));
        }
    }
    private_vars.sort_unstable();
    private_vars.dedup();

    let bindings = join(schema, instance, &q, nvars)?;

    let mut builder: ProfileBuilder<PrivateKey> = ProfileBuilder::new();
    for binding in &bindings {
        if !q.predicate.eval(binding) {
            continue;
        }
        let w = q.aggregate.weight(binding);
        if w == 0.0 {
            continue;
        }
        let refs = private_vars.iter().map(|&(pidx, var)| (pidx, binding[var as usize].clone()));
        match &q.projection {
            None => {
                builder.add_result(w, refs);
            }
            Some(proj) => {
                let key: Tuple = proj.iter().map(|&v| binding[v as usize].clone()).collect();
                // The projected result's weight must depend only on the
                // projected variables; `w` computed from this member is that
                // weight (asserted consistent across members in debug).
                builder.add_projected_result((u32::MAX, Value::Str(fmt_key(&key))), w, w, refs);
            }
        }
    }
    Ok(builder.build())
}

/// Evaluates a *group-by* query: join results are partitioned by the values
/// of `group_vars` and one lineage profile is produced per group, keyed by
/// the group's tuple. This is the engine half of the paper's Section 11
/// extension; the DP half (splitting ε across groups) lives in
/// `r2t-core::groupby`.
///
/// Groups are returned sorted by their key's display form, so the output is
/// deterministic.
pub fn profile_grouped(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
    group_vars: &[crate::query::Var],
) -> Result<Vec<(Tuple, QueryProfile)>, EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();
    for &v in group_vars {
        if (v as usize) >= nvars {
            return Err(EngineError::MalformedQuery(format!(
                "group-by variable {v} not bound by the join"
            )));
        }
    }
    let mut private_vars: Vec<(u32, crate::query::Var)> = Vec::new();
    for atom in &q.atoms {
        if let Some(pidx) = schema.primary_private().iter().position(|p| *p == atom.relation) {
            let rel = schema.relation(&atom.relation)?;
            let pk = rel.primary_key.ok_or_else(|| {
                EngineError::MalformedQuery(format!(
                    "primary private relation {} has no primary key",
                    atom.relation
                ))
            })?;
            private_vars.push((pidx as u32, atom.vars[pk]));
        }
    }
    private_vars.sort_unstable();
    private_vars.dedup();

    let bindings = join(schema, instance, &q, nvars)?;
    let mut groups: HashMap<std::sync::Arc<str>, (Tuple, ProfileBuilder<PrivateKey>)> =
        HashMap::new();
    for binding in &bindings {
        if !q.predicate.eval(binding) {
            continue;
        }
        let w = q.aggregate.weight(binding);
        if w == 0.0 {
            continue;
        }
        let key: Tuple = group_vars.iter().map(|&v| binding[v as usize].clone()).collect();
        let fkey = fmt_key(&key);
        let (_, builder) = groups.entry(fkey).or_insert_with(|| (key, ProfileBuilder::new()));
        let refs = private_vars.iter().map(|&(pidx, var)| (pidx, binding[var as usize].clone()));
        match &q.projection {
            None => {
                builder.add_result(w, refs);
            }
            Some(proj) => {
                let pkey: Tuple = proj.iter().map(|&v| binding[v as usize].clone()).collect();
                builder.add_projected_result((u32::MAX, Value::Str(fmt_key(&pkey))), w, w, refs);
            }
        }
    }
    let mut out: Vec<(Tuple, QueryProfile)> =
        groups.into_values().map(|(key, b)| (key, b.build())).collect();
    out.sort_by_key(|(key, _)| fmt_key(key));
    Ok(out)
}

fn fmt_key(t: &Tuple) -> std::sync::Arc<str> {
    use std::fmt::Write;
    let mut s = String::new();
    for v in t {
        // A length-prefixed encoding keeps distinct tuples distinct.
        match v {
            Value::Int(i) => write!(s, "i{i};"),
            Value::Float(f) => write!(s, "f{};", f.to_bits()),
            Value::Str(x) => write!(s, "s{}:{x};", x.len()),
        }
        .expect("writing to a String cannot fail");
    }
    std::sync::Arc::from(s.as_str())
}

/// Evaluates the query answer `Q(I)` directly.
pub fn evaluate(schema: &Schema, instance: &Instance, query: &Query) -> Result<f64, EngineError> {
    Ok(profile(schema, instance, query)?.query_result())
}

/// Computes all join bindings (dense variable assignments).
fn join(
    schema: &Schema,
    instance: &Instance,
    q: &Query,
    nvars: usize,
) -> Result<Vec<Vec<Value>>, EngineError> {
    if q.atoms.is_empty() {
        return Ok(Vec::new());
    }
    // Validate relations and collect sizes.
    let mut sizes = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        schema.relation(&atom.relation)?;
        sizes.push(instance.rows(&atom.relation).len());
    }

    // Greedy ordering.
    let natoms = q.atoms.len();
    let mut used = vec![false; natoms];
    let mut order = Vec::with_capacity(natoms);
    let first = (0..natoms).min_by_key(|&i| sizes[i]).expect("nonempty");
    used[first] = true;
    order.push(first);
    let mut bound = vec![false; nvars];
    for &v in &q.atoms[first].vars {
        bound[v as usize] = true;
    }
    while order.len() < natoms {
        let next = (0..natoms)
            .filter(|&i| !used[i])
            .max_by_key(|&i| {
                let shared = q.atoms[i].vars.iter().filter(|&&v| bound[v as usize]).count();
                (shared, std::cmp::Reverse(sizes[i]))
            })
            .expect("unused atom exists");
        used[next] = true;
        for &v in &q.atoms[next].vars {
            bound[v as usize] = true;
        }
        order.push(next);
    }

    // Seed with the first atom.
    let sentinel = Value::Int(i64::MIN);
    let mut partials: Vec<Vec<Value>> = Vec::new();
    let mut bound_now = vec![false; nvars];
    {
        let atom = &q.atoms[order[0]];
        for row in instance.rows(&atom.relation) {
            if let Some(b) = bind_tuple(&vec![sentinel.clone(); nvars], &bound_now, atom, row) {
                partials.push(b);
            }
        }
        for &v in &atom.vars {
            bound_now[v as usize] = true;
        }
    }

    for &ai in &order[1..] {
        let atom = &q.atoms[ai];
        let rows = instance.rows(&atom.relation);
        // Key positions: columns whose variable is already bound (first
        // occurrence per variable).
        let mut key_vars: Vec<(usize, u32)> = Vec::new(); // (col, var)
        let mut seen = Vec::new();
        for (col, &v) in atom.vars.iter().enumerate() {
            if bound_now[v as usize] && !seen.contains(&v) {
                key_vars.push((col, v));
                seen.push(v);
            }
        }
        // Build a hash index on those columns.
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in rows.iter().enumerate() {
            let key: Vec<Value> = key_vars.iter().map(|&(c, _)| row[c].clone()).collect();
            index.entry(key).or_default().push(ri);
        }
        let mut next_partials = Vec::new();
        for p in &partials {
            let key: Vec<Value> = key_vars.iter().map(|&(_, v)| p[v as usize].clone()).collect();
            if let Some(matches) = index.get(&key) {
                for &ri in matches {
                    if let Some(b) = bind_tuple(p, &bound_now, atom, &rows[ri]) {
                        next_partials.push(b);
                    }
                }
            }
        }
        partials = next_partials;
        for &v in &atom.vars {
            bound_now[v as usize] = true;
        }
    }
    Ok(partials)
}

/// Extends a partial binding with a tuple; `None` on conflict (repeated
/// variables must agree).
fn bind_tuple(
    partial: &[Value],
    bound: &[bool],
    atom: &crate::query::Atom,
    row: &Tuple,
) -> Option<Vec<Value>> {
    let mut out = partial.to_vec();
    let mut newly: Vec<u32> = Vec::with_capacity(atom.vars.len());
    for (col, &v) in atom.vars.iter().enumerate() {
        let vi = v as usize;
        if bound[vi] || newly.contains(&v) {
            if out[vi] != row[col] {
                return None;
            }
        } else {
            out[vi] = row[col].clone();
            newly.push(v);
        }
    }
    Some(out)
}

/// A deliberately naive nested-loop evaluator used as a test oracle.
pub fn evaluate_bruteforce(
    schema: &Schema,
    instance: &Instance,
    query: &Query,
) -> Result<f64, EngineError> {
    let q = complete_query(schema, query)?;
    let nvars = q.num_vars();
    let sentinel = Value::Int(i64::MIN);
    let mut bindings: Vec<Vec<Value>> = vec![vec![sentinel; nvars]];
    let mut bound = vec![false; nvars];
    for atom in &q.atoms {
        schema.relation(&atom.relation)?;
        let rows = instance.rows(&atom.relation);
        let mut next = Vec::new();
        for b in &bindings {
            for row in rows {
                if let Some(nb) = bind_tuple(b, &bound, atom, row) {
                    next.push(nb);
                }
            }
        }
        bindings = next;
        for &v in &atom.vars {
            bound[v as usize] = true;
        }
    }
    let mut total = 0.0;
    let mut seen = std::collections::HashSet::new();
    for b in &bindings {
        if !q.predicate.eval(b) {
            continue;
        }
        let w = q.aggregate.weight(b);
        match &q.projection {
            None => total += w,
            Some(proj) => {
                let key: Tuple = proj.iter().map(|&v| b[v as usize].clone()).collect();
                if seen.insert(fmt_key(&key)) {
                    total += w;
                }
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{atom, CmpOp, Expr, Predicate, Query};
    use crate::schema::{graph_schema_node_dp, Schema};

    fn triangle_plus_star() -> (Schema, Instance) {
        // Triangle 0-1-2 and a star center 3 with leaves 4,5,6.
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..7).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (3, 5), (3, 6)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
            edges.push(vec![Value::Int(b), Value::Int(a)]);
        }
        inst.insert_all("Edge", edges);
        (s, inst)
    }

    #[test]
    fn edge_count_with_predicate() {
        let (s, inst) = triangle_plus_star();
        // Undirected edges counted once: src < dst.
        let q = Query::count(vec![atom("Edge", &[0, 1])]).with_predicate(Predicate::cmp_vars(
            0,
            CmpOp::Lt,
            1,
        ));
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 6.0);
    }

    #[test]
    fn lineage_tracks_both_endpoints() {
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])]).with_predicate(Predicate::cmp_vars(
            0,
            CmpOp::Lt,
            1,
        ));
        let p = profile(&s, &inst, &q).unwrap();
        assert_eq!(p.results.len(), 6);
        assert!(p.results.iter().all(|r| r.refs.len() == 2));
        // Star center has sensitivity 3; triangle nodes 2; leaves 1.
        let mut sens = p.sensitivities();
        sens.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sens, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn triangle_count_via_self_join() {
        let (s, inst) = triangle_plus_star();
        let q =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])])
                .with_predicate(Predicate::And(vec![
                    Predicate::cmp_vars(0, CmpOp::Lt, 1),
                    Predicate::cmp_vars(1, CmpOp::Lt, 2),
                ]));
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 1.0);
    }

    #[test]
    fn matches_bruteforce_on_patterns() {
        let (s, inst) = triangle_plus_star();
        // Length-2 paths (ordered, center distinct ends).
        let q = Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
            .with_predicate(Predicate::cmp_vars(0, CmpOp::Lt, 2));
        let fast = evaluate(&s, &inst, &q).unwrap();
        let slow = evaluate_bruteforce(&s, &inst, &q).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn sum_aggregate() {
        // Sum of dst over all edges from node 3.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])])
            .with_predicate(Predicate::cmp_const(0, CmpOp::Eq, Value::Int(3)))
            .with_sum(Expr::Var(1));
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 15.0);
    }

    #[test]
    fn projection_removes_duplicates() {
        // Distinct sources with any outgoing edge.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 1])]).with_projection(vec![0]);
        // All 7 nodes have at least one incident (directed) edge.
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 7.0);
        let brute = evaluate_bruteforce(&s, &inst, &q).unwrap();
        assert_eq!(brute, 7.0);
        let p = profile(&s, &inst, &q).unwrap();
        assert_eq!(p.groups.as_ref().unwrap().len(), 7);
        assert_eq!(p.results.len(), 12);
    }

    #[test]
    fn empty_instance_yields_zero() {
        let s = graph_schema_node_dp();
        let inst = Instance::new();
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 0.0);
        let p = profile(&s, &inst, &q).unwrap();
        assert_eq!(p.num_private, 0);
        assert!(p.results.is_empty());
    }

    #[test]
    fn cartesian_product_when_forced() {
        // Node(A) x Node(B): no shared variables.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Node", &[0]), atom("Node", &[1])]);
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 49.0);
    }

    #[test]
    fn repeated_variable_within_atom() {
        // Self-loops only: Edge(A, A). None exist.
        let (s, inst) = triangle_plus_star();
        let q = Query::count(vec![atom("Edge", &[0, 0])]);
        assert_eq!(evaluate(&s, &inst, &q).unwrap(), 0.0);
    }
}

#[cfg(test)]
mod grouped_tests {
    use super::*;
    use crate::query::{atom, Query};
    use crate::schema::graph_schema_node_dp;

    #[test]
    fn grouped_profile_partitions_results() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..4).map(|i| vec![Value::Int(i)]));
        // Out-edges: node 0 has 2, node 1 has 1.
        inst.insert_all(
            "Edge",
            [(0, 1), (0, 2), (1, 2)].map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
        );
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let groups = profile_grouped(&s, &inst, &q, &[0]).unwrap();
        assert_eq!(groups.len(), 2);
        let total: f64 = groups.iter().map(|(_, p)| p.query_result()).sum();
        assert_eq!(total, 3.0);
        // Each group's lineage is self-contained.
        for (key, p) in &groups {
            assert_eq!(key.len(), 1);
            assert!(p.results.iter().all(|r| r.refs.len() == 2));
        }
    }

    #[test]
    fn grouped_totals_match_ungrouped() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..6).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
        }
        inst.insert_all("Edge", edges);
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let total = profile(&s, &inst, &q).unwrap().query_result();
        let grouped: f64 = profile_grouped(&s, &inst, &q, &[0])
            .unwrap()
            .iter()
            .map(|(_, p)| p.query_result())
            .sum();
        assert_eq!(total, grouped);
    }

    #[test]
    fn bad_group_var_rejected() {
        let s = graph_schema_node_dp();
        let inst = Instance::new();
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        assert!(profile_grouped(&s, &inst, &q, &[99]).is_err());
    }
}
