//! Value interning for the columnar executor.
//!
//! The join executor works over dense `u32` value ids instead of [`Value`]s:
//! every value appearing in a joined relation is interned exactly once, and
//! all subsequent key hashing, equality checking, and binding storage happens
//! on the ids. Interning preserves [`Value`] equality exactly (bitwise for
//! floats, kind-strict across `Int`/`Float`/`Str`), so id equality is value
//! equality and hash-join semantics are unchanged.
//!
//! [`ColumnarTable`] is the interned, column-major image of one relation:
//! `cols[c][r]` is the id of row `r`'s value in column `c`. Cache-friendly
//! column access is what the probe loops iterate over.

use crate::value::{Tuple, Value};
use std::collections::HashMap;

/// Id reserved as the "unbound variable" sentinel in partial bindings; the
/// interner never hands it out.
pub const UNBOUND: u32 = u32::MAX;

/// A dense `Value -> u32` dictionary with an id-indexed reverse side table.
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Value, u32>,
    values: Vec<Value>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a value, returning its dense id (allocating on first sight).
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let id = self.values.len() as u32;
        assert!(id < UNBOUND, "interner id space exhausted");
        self.ids.insert(v.clone(), id);
        self.values.push(v.clone());
        id
    }

    /// The value behind an id.
    #[inline]
    pub fn resolve(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One relation's rows interned column-major: `cols[c][r]` is the id of the
/// value in column `c` of row `r`.
#[derive(Debug)]
pub struct ColumnarTable {
    /// Column-major interned ids.
    pub cols: Vec<Vec<u32>>,
    /// Number of rows.
    pub nrows: usize,
}

impl ColumnarTable {
    /// Interns `rows` (all of the same arity) into a columnar table.
    pub fn from_rows(rows: &[Tuple], interner: &mut Interner) -> ColumnarTable {
        let arity = rows.first().map(|t| t.len()).unwrap_or(0);
        let mut cols = vec![Vec::with_capacity(rows.len()); arity];
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                cols[c].push(interner.intern(v));
            }
        }
        ColumnarTable { cols, nrows: rows.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_preserves_value_identity() {
        let mut i = Interner::new();
        let a = i.intern(&Value::Int(7));
        let b = i.intern(&Value::Int(7));
        let c = i.intern(&Value::Float(7.0));
        let d = i.intern(&Value::str("7"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(c, d);
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(a), &Value::Int(7));
        assert_eq!(i.resolve(d), &Value::str("7"));
    }

    #[test]
    fn float_interning_is_bitwise() {
        let mut i = Interner::new();
        let z = i.intern(&Value::Float(0.0));
        let nz = i.intern(&Value::Float(-0.0));
        assert_ne!(z, nz, "0.0 and -0.0 are distinct join keys");
    }

    #[test]
    fn columnar_table_round_trips() {
        let mut i = Interner::new();
        let rows = vec![vec![Value::Int(1), Value::str("x")], vec![Value::Int(2), Value::str("x")]];
        let t = ColumnarTable::from_rows(&rows, &mut i);
        assert_eq!(t.nrows, 2);
        assert_eq!(t.cols.len(), 2);
        assert_eq!(t.cols[1][0], t.cols[1][1], "shared string interned once");
        assert_eq!(i.resolve(t.cols[0][1]), &Value::Int(2));
    }

    #[test]
    fn empty_rows_make_empty_table() {
        let mut i = Interner::new();
        let t = ColumnarTable::from_rows(&[], &mut i);
        assert_eq!(t.nrows, 0);
        assert!(t.cols.is_empty());
        assert!(i.is_empty());
    }
}
