//! Value interning for the columnar executor.
//!
//! The join executor works over dense `u32` value ids instead of [`Value`]s:
//! every value appearing in a joined relation is interned exactly once, and
//! all subsequent key hashing, equality checking, and binding storage happens
//! on the ids. Interning preserves [`Value`] equality exactly (bitwise for
//! floats, kind-strict across `Int`/`Float`/`Str`), so id equality is value
//! equality and hash-join semantics are unchanged.
//!
//! [`ColumnarTable`] is the interned, column-major image of one relation:
//! `cols[c][r]` is the id of row `r`'s value in column `c`. Cache-friendly
//! column access is what the probe loops iterate over.

use crate::value::{Tuple, Value};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

/// Id reserved as the "unbound variable" sentinel in partial bindings; the
/// interner never hands it out.
pub const UNBOUND: u32 = u32::MAX;

/// A dense `Value -> u32` dictionary with an id-indexed reverse side table.
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Value, u32>,
    values: Vec<Value>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a value, returning its dense id (allocating on first sight).
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let id = self.values.len() as u32;
        assert!(id < UNBOUND, "interner id space exhausted");
        self.ids.insert(v.clone(), id);
        self.values.push(v.clone());
        id
    }

    /// The value behind an id.
    #[inline]
    pub fn resolve(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Rebuilds an interner from its dense side table (archive reopen).
    ///
    /// The forward map is reconstructed so the interner behaves identically
    /// to the one that produced `values`: re-interning any archived value
    /// returns its original id. Returns `None` if `values` contains a
    /// duplicate (a well-formed archive never does).
    pub fn from_values(values: Vec<Value>) -> Option<Interner> {
        let ids = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect::<HashMap<_, _>>();
        if ids.len() != values.len() {
            return None;
        }
        Some(Interner { ids, values })
    }

    /// The dense side table, id-ordered (archive serialization).
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// Backing store for one interned column: either an owned heap vector (the
/// in-memory path) or a zero-copy window into a memory-mapped archive.
///
/// Both deref to `&[u32]`, so every probe-loop read site (`cols[c][r]`,
/// `.iter()`, slicing) is identical for heap and mapped tables.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Owned ids produced by [`ColumnarTable::from_rows`].
    Heap(Vec<u32>),
    /// A `len`-element window starting `off` *elements* (not bytes) into a
    /// memory-mapped archive's u32 payload.
    Mapped {
        /// Keeps the mapping alive for as long as any column views it.
        map: Arc<crate::storage::Mapping>,
        /// Element offset of this column's first id.
        off: usize,
        /// Number of ids in this column (one per row).
        len: usize,
    },
}

impl Deref for ColumnData {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        match self {
            ColumnData::Heap(v) => v,
            ColumnData::Mapped { map, off, len } => &map.as_u32s()[*off..*off + *len],
        }
    }
}

impl From<Vec<u32>> for ColumnData {
    fn from(v: Vec<u32>) -> ColumnData {
        ColumnData::Heap(v)
    }
}

/// One relation's rows interned column-major: `cols[c][r]` is the id of the
/// value in column `c` of row `r`. Cloning a mapped table is cheap (an `Arc`
/// bump per column); cloning a heap table copies its id vectors.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    /// Column-major interned ids (heap-owned or archive-mapped).
    pub cols: Vec<ColumnData>,
    /// Number of rows.
    pub nrows: usize,
}

impl ColumnarTable {
    /// Interns `rows` (all of the same arity) into a columnar table.
    pub fn from_rows(rows: &[Tuple], interner: &mut Interner) -> ColumnarTable {
        let arity = rows.first().map(|t| t.len()).unwrap_or(0);
        let mut cols = vec![Vec::with_capacity(rows.len()); arity];
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                cols[c].push(interner.intern(v));
            }
        }
        ColumnarTable { cols: cols.into_iter().map(ColumnData::Heap).collect(), nrows: rows.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_preserves_value_identity() {
        let mut i = Interner::new();
        let a = i.intern(&Value::Int(7));
        let b = i.intern(&Value::Int(7));
        let c = i.intern(&Value::Float(7.0));
        let d = i.intern(&Value::str("7"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(c, d);
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(a), &Value::Int(7));
        assert_eq!(i.resolve(d), &Value::str("7"));
    }

    #[test]
    fn float_interning_is_bitwise() {
        let mut i = Interner::new();
        let z = i.intern(&Value::Float(0.0));
        let nz = i.intern(&Value::Float(-0.0));
        assert_ne!(z, nz, "0.0 and -0.0 are distinct join keys");
    }

    #[test]
    fn columnar_table_round_trips() {
        let mut i = Interner::new();
        let rows = vec![vec![Value::Int(1), Value::str("x")], vec![Value::Int(2), Value::str("x")]];
        let t = ColumnarTable::from_rows(&rows, &mut i);
        assert_eq!(t.nrows, 2);
        assert_eq!(t.cols.len(), 2);
        assert_eq!(t.cols[1][0], t.cols[1][1], "shared string interned once");
        assert_eq!(i.resolve(t.cols[0][1]), &Value::Int(2));
    }

    #[test]
    fn empty_rows_make_empty_table() {
        let mut i = Interner::new();
        let t = ColumnarTable::from_rows(&[], &mut i);
        assert_eq!(t.nrows, 0);
        assert!(t.cols.is_empty());
        assert!(i.is_empty());
    }
}
