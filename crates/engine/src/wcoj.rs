//! Worst-case-optimal join executor (generic join / leapfrog triejoin).
//!
//! The columnar pipeline in [`crate::exec`] joins atom-at-a-time, so cyclic
//! patterns pay the classic intermediate blowup: counting triangles on a
//! graph first materializes every *wedge* (length-2 path), of which there
//! are `Σ_v deg(v)²` — orders of magnitude more than there are triangles.
//! This executor instead enumerates bindings *variable-at-a-time*: for each
//! variable in a global order it intersects, by leapfrog search over sorted
//! trie iterators, the candidate values of every atom containing that
//! variable. Intermediate state is one root-to-leaf path of trie windows, so
//! peak binding storage is proportional to the **output**, never to an
//! intermediate join (the AGM/NPRR worst-case-optimality argument).
//!
//! ## Bit-identity with the columnar executor
//!
//! Every executor must produce the same [`QueryProfile`] down to result
//! order and dense private-id numbering, because R2T's DP outputs are a
//! deterministic function of the profile. The columnar pipeline emits
//! results in lexicographic order of the per-atom row-index vector `(r_{o_0},
//! …, r_{o_{k-1}})`, where `o` is [`crate::exec::greedy_order`]: the seed
//! stage scans atom `o_0`'s rows ascending, and every probe stage extends
//! partials in arena order with candidate rows ascending. This executor
//! therefore records, for every surviving result, exactly that row-index
//! vector (plus an index into a value-binding arena), **globally sorts** the
//! records by row vector, and only then streams them — in the columnar
//! executor's order — into the same per-worker [`IdProfileBuilder`] shards,
//! merged in the same positional order. Enumeration order, variable order,
//! and worker partitioning therefore cannot leak into the profile, which
//! makes the deterministic parallelization trivial: workers split the first
//! variable's domain and the sort erases the split.
//!
//! ## Comparison-predicate pushdown
//!
//! Trie keys live in a *value-ordered* remap of the interner id space (ids
//! sorted by the predicate comparator [`Value::cmp_total`], ties by id), so
//! order-comparison conjuncts of the predicate (`a < b`, `v ≥ 3`) become
//! per-level key-range bounds enforced *inside* the intersections. For the
//! symmetry-broken cyclic patterns this is the difference between skipping
//! the `k!` automorphic orderings and enumerating then discarding them. The
//! leaf still evaluates the full predicate, so pruning is sound by
//! construction: it removes only bindings the leaf would reject, and the
//! emitted record set — hence the profile — is unchanged.
//!
//! Telemetry is reported under `exec.wcoj.*` (intersections, galloping
//! seeks, emitted bindings, peak trie depth, per-worker skew) and obeys the
//! same rule as the rest of the engine: observability never changes outputs.

use crate::exec::{
    greedy_order, intern_tables, needed_value_vars, record_worker, resolve_groups, worker_clock,
    EmitOut, ExecOptions, ExecStats, PlanInterner, Source,
};
use crate::interner::{ColumnarTable, Interner, UNBOUND};
use crate::lineage::{pack_private_key, QueryProfile};
use crate::query::{CmpOp, Expr, Predicate, Query, Var};
use crate::schema::Schema;
use crate::value::{Tuple, Value};
use crate::EngineError;
use r2t_obs::Attr;
use std::collections::HashMap;

/// Grouped executor output: one lineage profile per group key, in the
/// canonical group order.
type GroupedProfiles = Vec<(Tuple, QueryProfile)>;

/// Trie-sharing key: (table index, level columns, equality-filter pairs).
/// Self-join atoms with the same shape share one trie.
type TrieShape = (usize, Vec<usize>, Vec<(usize, usize)>);

/// Flat-query entry point used by [`crate::exec::profile_with_stats`]'s
/// dispatch. `q` must already be completed; returns `None` for queries with
/// no atoms (empty profile).
pub(crate) fn run_flat(
    schema: &Schema,
    source: Source<'_>,
    q: &Query,
    private_vars: Vec<(u32, Var)>,
    opts: &ExecOptions,
) -> Result<Option<(QueryProfile, ExecStats)>, EngineError> {
    let Some(plan) = WcojPlan::new(schema, source, q, private_vars, opts)? else {
        return Ok(None);
    };
    let (out, stats) = plan.run(None)?;
    let EmitOut::Flat(builder) = out else {
        unreachable!("flat run produced grouped output");
    };
    Ok(Some((builder.build(), stats)))
}

/// Group-by entry point used by [`crate::exec::profile_grouped_with_stats`].
pub(crate) fn run_grouped(
    schema: &Schema,
    source: Source<'_>,
    q: &Query,
    group_vars: &[Var],
    private_vars: Vec<(u32, Var)>,
    opts: &ExecOptions,
) -> Result<Option<(GroupedProfiles, ExecStats)>, EngineError> {
    let Some(plan) = WcojPlan::new(schema, source, q, private_vars, opts)? else {
        return Ok(None);
    };
    let (out, stats) = plan.run(Some(group_vars))?;
    let EmitOut::Grouped(acc) = out else {
        unreachable!("grouped run produced flat output");
    };
    Ok(Some((resolve_groups(acc, &plan.interner), stats)))
}

// ---------------------------------------------------------------------------
// Tries.
// ---------------------------------------------------------------------------

/// A sorted trie over one atom's interned columns, laid out flat: `rows`
/// holds the backing table's row ids sorted lexicographically by the atom's
/// columns *permuted into the global variable order* (raw row id as final
/// tiebreak, so leaf row lists ascend), and `keys[d][i]` is the id at trie
/// level `d` of sorted position `i`. A "trie node" is just a `(lo, hi)`
/// window into this layout; descending means shrinking the window to one
/// key's run, so no pointer structure is ever built.
struct Trie {
    rows: Vec<u32>,
    keys: Vec<Vec<u32>>,
    /// Distinct level-0 keys. An atom participates at trie depth 0 exactly
    /// when its window is still the full root, so root-level intersections
    /// run over this (much shorter, duplicate-free) list instead of the
    /// per-row key column.
    dir_keys: Vec<u32>,
    /// Row-space run boundaries per distinct level-0 key: key `i` covers
    /// rows `dir_lo[i]..dir_lo[i + 1]` (one sentinel entry at the end).
    dir_lo: Vec<u32>,
    /// `dir_seek[t]` is the first directory position whose key is `>= t`,
    /// for every ordered key `t` (plus a sentinel): directory members seek
    /// in O(1) instead of galloping. Input-proportional memory (one entry
    /// per interned value), like the tries themselves.
    dir_seek: Vec<u32>,
}

impl Trie {
    /// Builds the trie for `level_cols` (one column per distinct variable,
    /// outermost first). Rows violating an intra-atom repeated-variable
    /// equality (`eq_pairs`, each `(first_col, later_col)`) are filtered out
    /// up front so enumeration never sees them. Keys are stored in the
    /// *value-ordered* key space (`ord_of_id`, see [`WcojPlan`]) rather than
    /// raw interner ids, so comparison-predicate bounds translate to key
    /// ranges; the map is injective, so key equality is still id equality.
    fn build(
        table: &ColumnarTable,
        level_cols: &[usize],
        eq_pairs: &[(usize, usize)],
        ord_of_id: &[u32],
    ) -> Trie {
        let mut rows: Vec<u32> = (0..table.nrows as u32)
            .filter(|&ri| {
                eq_pairs
                    .iter()
                    .all(|&(a, b)| table.cols[a][ri as usize] == table.cols[b][ri as usize])
            })
            .collect();
        let key = |c: usize, ri: u32| ord_of_id[table.cols[c][ri as usize] as usize];
        let keys: Vec<Vec<u32>>;
        if (1..=3).contains(&level_cols.len()) {
            // Pack `(keys…, row id)` into one `u128` so the sort compares
            // registers instead of chasing table columns on every
            // comparison: up to three 32-bit key levels above the 32-bit
            // row-id tiebreak; missing levels stay zero, which preserves
            // the lexicographic order.
            let mut packed: Vec<u128> = rows
                .iter()
                .map(|&ri| {
                    let mut p = ri as u128;
                    for (d, &c) in level_cols.iter().enumerate() {
                        p |= (key(c, ri) as u128) << (96 - 32 * d);
                    }
                    p
                })
                .collect();
            packed.sort_unstable();
            for (r, &p) in rows.iter_mut().zip(&packed) {
                *r = p as u32;
            }
            // The key columns are already inside the packed words —
            // unpack them sequentially rather than re-chasing the table.
            keys = (0..level_cols.len())
                .map(|d| packed.iter().map(|&p| (p >> (96 - 32 * d)) as u32).collect())
                .collect();
        } else {
            rows.sort_unstable_by(|&a, &b| {
                for &c in level_cols {
                    match key(c, a).cmp(&key(c, b)) {
                        std::cmp::Ordering::Equal => {}
                        o => return o,
                    }
                }
                a.cmp(&b)
            });
            keys =
                level_cols.iter().map(|&c| rows.iter().map(|&ri| key(c, ri)).collect()).collect();
        }
        // Level-0 run directory (see the field docs above).
        let mut dir_keys = Vec::new();
        let mut dir_lo = Vec::new();
        if let Some(k0) = keys.first() {
            let mut i = 0u32;
            let n = k0.len() as u32;
            while i < n {
                dir_keys.push(k0[i as usize]);
                dir_lo.push(i);
                i = run_end(k0, i, n);
            }
        }
        dir_lo.push(rows.len() as u32);
        let n_ids = ord_of_id.len();
        let mut dir_seek = vec![0u32; n_ids + 1];
        let mut p = 0u32;
        for (t, slot) in dir_seek.iter_mut().enumerate() {
            while (p as usize) < dir_keys.len() && dir_keys[p as usize] < t as u32 {
                p += 1;
            }
            *slot = p;
        }
        Trie { rows, keys, dir_keys, dir_lo, dir_seek }
    }

    fn len(&self) -> u32 {
        self.rows.len() as u32
    }
}

/// First position in `keys[lo..hi]` whose key is `>= target`, found by a
/// short linear probe (intersections of similarly dense sets advance by a
/// handful of positions most of the time), then exponential (galloping)
/// probe plus binary search — `O(log d)` in the distance `d` advanced, which
/// is what makes leapfrog intersection cost proportional to the *smallest*
/// participating set.
#[inline]
fn gallop_ge(keys: &[u32], lo: u32, hi: u32, target: u32) -> u32 {
    let mut lo = lo as usize;
    let hi = hi as usize;
    for _ in 0..4 {
        if lo >= hi || keys[lo] >= target {
            return lo as u32;
        }
        lo += 1;
    }
    if lo >= hi || keys[lo] >= target {
        return lo as u32;
    }
    let mut step = 1usize;
    while lo + step < hi && keys[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let upper = (lo + step).min(hi);
    (lo + 1 + keys[lo + 1..upper].partition_point(|&k| k < target)) as u32
}

/// End of the run of positions whose key equals `keys[p]`: linear peek for
/// the overwhelmingly common short run, galloping for long ones (duplicate-
/// heavy first trie levels).
#[inline]
fn run_end(keys: &[u32], p: u32, hi: u32) -> u32 {
    let x = keys[p as usize];
    let mut e = p + 1;
    let peek = hi.min(p + 4);
    while e < peek && keys[e as usize] == x {
        e += 1;
    }
    if e == peek && e < hi && keys[e as usize] == x {
        return gallop_ge(keys, e, hi, x + 1);
    }
    e
}

// ---------------------------------------------------------------------------
// Planning.
// ---------------------------------------------------------------------------

/// Prepared WCOJ execution state: interned tables (shared layout with the
/// columnar executor via [`intern_tables`]), per-atom tries, the global
/// variable order, and the emission metadata.
pub(crate) struct WcojPlan<'q> {
    q: &'q Query,
    nvars: usize,
    natoms: usize,
    pub(crate) interner: PlanInterner<'q>,
    /// Canonical atom order for emission row vectors — the columnar
    /// executor's pipeline order, so the post-sort emission sequence is
    /// bit-identical to its output.
    pipeline: Vec<usize>,
    /// Global variable order (only variables that occur in atoms).
    var_order: Vec<Var>,
    tries: Vec<Trie>,
    /// Atom index -> index into `tries` (atoms with identical shape share).
    atom_trie: Vec<usize>,
    /// For each variable-order level: the `(atom, trie depth)` pairs whose
    /// tries participate in that level's intersection.
    atoms_at_level: Vec<Vec<(usize, usize)>>,
    /// Value-ordered key space: interner ids sorted by the predicate
    /// comparator [`Value::cmp_total`] (ties broken by id, so the map is
    /// injective). `id_of_ord[k]` recovers the interner id behind ordered
    /// key `k`; `class_of_ord[k]` is its `cmp_total` equivalence class (e.g.
    /// `Int(3)` and `Float(3.0)` share a class but keep distinct keys);
    /// `class_start[c]` is the first ordered key of class `c`, with a final
    /// sentinel entry, so class-granular range bounds are O(1) lookups.
    id_of_ord: Vec<u32>,
    class_of_ord: Vec<u32>,
    class_start: Vec<u32>,
    /// Per-level pruning bounds compiled from the predicate's top-level
    /// comparison conjuncts (see [`LevelBounds`]).
    level_bounds: Vec<LevelBounds>,
    needed_vars: Vec<Var>,
    private_vars: Vec<(u32, Var)>,
    workers: usize,
    threshold: usize,
}

/// Range constraints on one level's intersection, compiled from necessary
/// conditions of the query predicate (top-level `And` conjuncts of the form
/// `var op var` / `var op const` with an order comparison). Pruning with
/// them is sound because it only ever removes bindings the leaf predicate
/// check would reject — the emitted record set, and with it the profile, is
/// untouched; cyclic patterns with symmetry-breaking predicates (`a < b <
/// c`) skip the factorial blowup instead of filtering it at the leaf.
#[derive(Default)]
struct LevelBounds {
    /// `(earlier variable, strict)`: this level's value must compare greater
    /// (or equal) to the named already-bound variable.
    lower_vars: Vec<(Var, bool)>,
    /// `(earlier variable, strict)`: upper counterpart.
    upper_vars: Vec<(Var, bool)>,
    /// Constant bounds, pre-resolved to ordered-key space: admissible keys
    /// lie in `const_lo..const_hi`.
    const_lo: u32,
    const_hi: u32,
}

/// Flattens nested `And`s into the conjuncts that are necessary conditions
/// of `p`.
fn conjuncts<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
    match p {
        Predicate::And(ps) => {
            for q in ps {
                conjuncts(q, out);
            }
        }
        other => out.push(other),
    }
}

/// Mirrors a comparison for operand swap: `c op v  ≡  v mirror(op) c`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Compiles the predicate's top-level comparison conjuncts into per-level
/// [`LevelBounds`]. Var-var comparisons attach to the *later* variable's
/// level (the earlier one is already bound when the level intersects);
/// var-const comparisons resolve to ordered-key constants here, at class
/// granularity, via binary search over the class representatives.
fn compile_bounds(
    q: &Query,
    var_level: &[usize],
    nlevels: usize,
    interner: &Interner,
    id_of_ord: &[u32],
    class_start: &[u32],
) -> Vec<LevelBounds> {
    let n_ids = id_of_ord.len() as u32;
    let mut bounds: Vec<LevelBounds> = (0..nlevels)
        .map(|_| LevelBounds { const_lo: 0, const_hi: n_ids, ..LevelBounds::default() })
        .collect();
    let nclasses = class_start.len() - 1;
    let rep = |c: usize| interner.resolve(id_of_ord[class_start[c] as usize]);
    let level = |v: Var| var_level.get(v as usize).copied().unwrap_or(usize::MAX);
    let mut cs: Vec<&Predicate> = Vec::new();
    conjuncts(&q.predicate, &mut cs);
    for c in cs {
        let Predicate::Cmp(op, ea, eb) = c else { continue };
        // Normalize to `v op rhs` with `rhs` a variable or constant.
        let (op, v, rhs) = match (ea, eb) {
            (Expr::Var(v), rhs @ (Expr::Var(_) | Expr::Const(_))) => (*op, *v, rhs),
            (lhs @ Expr::Const(_), Expr::Var(v)) => (mirror(*op), *v, lhs),
            _ => continue,
        };
        let lv = level(v);
        if lv == usize::MAX {
            continue;
        }
        match rhs {
            Expr::Var(u) => {
                let lu = level(*u);
                if lu == usize::MAX || lu == lv {
                    continue;
                }
                // Attach the constraint to whichever side binds later.
                let (target, other, op) = if lv > lu { (lv, *u, op) } else { (lu, v, mirror(op)) };
                let lb = &mut bounds[target];
                match op {
                    CmpOp::Gt => lb.lower_vars.push((other, true)),
                    CmpOp::Ge => lb.lower_vars.push((other, false)),
                    CmpOp::Lt => lb.upper_vars.push((other, true)),
                    CmpOp::Le => lb.upper_vars.push((other, false)),
                    CmpOp::Eq => {
                        lb.lower_vars.push((other, false));
                        lb.upper_vars.push((other, false));
                    }
                    CmpOp::Ne => {}
                }
            }
            Expr::Const(cv) => {
                // `ins`: first class whose representative is not below the
                // constant; `eq` when that class *is* the constant's class.
                let mut lo = 0usize;
                let mut hi = nclasses;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if rep(mid).cmp_total(cv) == std::cmp::Ordering::Less {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                let ins = lo;
                let eq = ins < nclasses && rep(ins).cmp_total(cv) == std::cmp::Ordering::Equal;
                let above = class_start[if eq { ins + 1 } else { ins }];
                let at = class_start[ins];
                let lb = &mut bounds[lv];
                match op {
                    CmpOp::Gt => lb.const_lo = lb.const_lo.max(above),
                    CmpOp::Ge => lb.const_lo = lb.const_lo.max(at),
                    CmpOp::Lt => lb.const_hi = lb.const_hi.min(at),
                    CmpOp::Le => lb.const_hi = lb.const_hi.min(above),
                    CmpOp::Eq => {
                        lb.const_lo = lb.const_lo.max(at);
                        lb.const_hi = lb.const_hi.min(above);
                    }
                    CmpOp::Ne => {}
                }
            }
            // The normalization above only lets Var/Const through.
            _ => unreachable!("rhs is a variable or constant"),
        }
    }
    bounds
}

/// Frequency-driven variable order: start from the variable occurring in the
/// most atoms (it has the most constraining intersections), then repeatedly
/// pick, among variables sharing an atom with the already-ordered set (to
/// keep intersections selective rather than Cartesian), the one with the
/// highest atom frequency; ties break to the smallest variable id so the
/// order — and with it all telemetry — is deterministic. Disconnected
/// components fall back to the global frequency maximum.
fn variable_order(q: &Query, nvars: usize) -> Vec<Var> {
    let atom_vars: Vec<Vec<Var>> = q
        .atoms
        .iter()
        .map(|a| {
            let mut vs = a.vars.clone();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect();
    let mut freq = vec![0usize; nvars];
    for vs in &atom_vars {
        for &v in vs {
            freq[v as usize] += 1;
        }
    }
    let mut chosen = vec![false; nvars];
    let mut order: Vec<Var> = Vec::new();
    let total = freq.iter().filter(|&&c| c > 0).count();
    while order.len() < total {
        let connected = |v: Var| {
            atom_vars.iter().any(|vs| vs.contains(&v) && vs.iter().any(|&u| chosen[u as usize]))
        };
        let pick = (0..nvars as Var)
            .filter(|&v| freq[v as usize] > 0 && !chosen[v as usize])
            .max_by_key(|&v| {
                (!order.is_empty() && connected(v), freq[v as usize], std::cmp::Reverse(v))
            })
            .expect("unordered variable exists");
        chosen[pick as usize] = true;
        order.push(pick);
    }
    order
}

impl<'q> WcojPlan<'q> {
    /// Resolves the source tables, plans the variable order, and builds the
    /// tries; `None` when the query has no atoms.
    pub(crate) fn new(
        schema: &Schema,
        source: Source<'q>,
        q: &'q Query,
        private_vars: Vec<(u32, Var)>,
        opts: &ExecOptions,
    ) -> Result<Option<WcojPlan<'q>>, EngineError> {
        if q.atoms.is_empty() {
            return Ok(None);
        }
        let nvars = q.num_vars();
        let natoms = q.atoms.len();
        let (interner, tables, atom_table) = intern_tables(schema, source, q)?;
        let sizes: Vec<usize> = atom_table.iter().map(|&i| tables[i].nrows).collect();
        let pipeline = greedy_order(q, &sizes, nvars);
        let var_order = variable_order(q, nvars);
        let mut var_level = vec![usize::MAX; nvars];
        for (l, &v) in var_order.iter().enumerate() {
            var_level[v as usize] = l;
        }
        // Value-ordered key space (see the field docs on `WcojPlan`).
        let n_ids = interner.len();
        let mut id_of_ord: Vec<u32> = (0..n_ids as u32).collect();
        // All-integer domains (every graph workload) sort by packed
        // order-preserving `(u64-mapped value, id)` words; `cmp_total` on
        // two `Int`s is exactly the numeric order, so this matches the
        // general comparator below without resolving values per comparison.
        let all_int = id_of_ord.iter().all(|&id| matches!(interner.resolve(id), Value::Int(_)));
        if all_int {
            let mut packed: Vec<u128> = id_of_ord
                .iter()
                .map(|&id| {
                    let Value::Int(v) = *interner.resolve(id) else { unreachable!() };
                    ((((v as u64) ^ (1u64 << 63)) as u128) << 32) | id as u128
                })
                .collect();
            packed.sort_unstable();
            for (slot, &p) in id_of_ord.iter_mut().zip(&packed) {
                *slot = p as u32;
            }
        } else {
            id_of_ord.sort_unstable_by(|&a, &b| {
                interner.resolve(a).cmp_total(interner.resolve(b)).then(a.cmp(&b))
            });
        }
        let mut ord_of_id = vec![0u32; n_ids];
        let mut class_of_ord = vec![0u32; n_ids];
        let mut class_start: Vec<u32> = Vec::new();
        for (pos, &id) in id_of_ord.iter().enumerate() {
            ord_of_id[id as usize] = pos as u32;
            if pos == 0
                || interner.resolve(id_of_ord[pos - 1]).cmp_total(interner.resolve(id))
                    != std::cmp::Ordering::Equal
            {
                class_start.push(pos as u32);
            }
            class_of_ord[pos] = class_start.len() as u32 - 1;
        }
        class_start.push(n_ids as u32);
        let level_bounds =
            compile_bounds(q, &var_level, var_order.len(), &interner, &id_of_ord, &class_start);
        // One trie per distinct (table, level columns, equality filter)
        // shape; self-join atoms with the same variable pattern share.
        let mut tries: Vec<Trie> = Vec::new();
        let mut shapes: HashMap<TrieShape, usize> = HashMap::new();
        let mut atom_trie = Vec::with_capacity(natoms);
        let mut atoms_at_level: Vec<Vec<(usize, usize)>> = vec![Vec::new(); var_order.len()];
        for (ai, atom) in q.atoms.iter().enumerate() {
            // Distinct variables ordered by their global level; `level_cols`
            // is each variable's first column, `eq_pairs` pins repeats.
            let mut distinct: Vec<Var> = atom.vars.clone();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.sort_unstable_by_key(|&v| var_level[v as usize]);
            let mut level_cols = Vec::with_capacity(distinct.len());
            let mut eq_pairs = Vec::new();
            for &v in &distinct {
                let first = atom.vars.iter().position(|&u| u == v).expect("var occurs");
                level_cols.push(first);
                for (c, &u) in atom.vars.iter().enumerate().skip(first + 1) {
                    if u == v {
                        eq_pairs.push((first, c));
                    }
                }
            }
            eq_pairs.sort_unstable();
            let table_idx = atom_table[ai];
            let key = (table_idx, level_cols.clone(), eq_pairs.clone());
            let trie_idx = match shapes.get(&key) {
                Some(&i) => i,
                None => {
                    let i = tries.len();
                    tries.push(Trie::build(&tables[table_idx], &level_cols, &eq_pairs, &ord_of_id));
                    shapes.insert(key, i);
                    i
                }
            };
            atom_trie.push(trie_idx);
            for (depth, &v) in distinct.iter().enumerate() {
                atoms_at_level[var_level[v as usize]].push((ai, depth));
            }
        }
        let workers = opts
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
        r2t_obs::gauge_max("exec.interner.values", interner.len() as u64);
        Ok(Some(WcojPlan {
            q,
            nvars,
            natoms,
            interner,
            pipeline,
            var_order,
            tries,
            atom_trie,
            atoms_at_level,
            id_of_ord,
            class_of_ord,
            class_start,
            level_bounds,
            needed_vars: needed_value_vars(q),
            private_vars,
            workers: workers.max(1),
            threshold: opts.parallel_threshold,
        }))
    }

    fn trie(&self, atom: usize) -> &Trie {
        &self.tries[self.atom_trie[atom]]
    }

    /// The admissible ordered-key range `lo..hi` for `level`, given the
    /// already-bound prefix in `binding`. Var-var bounds resolve through the
    /// bound variable's `cmp_total` class, so e.g. a strict lower bound
    /// admits exactly the keys comparing greater under predicate semantics.
    fn bounds_at(&self, binding: &[u32], level: usize) -> (u32, u32) {
        let lb = &self.level_bounds[level];
        let mut lo = lb.const_lo;
        let mut hi = lb.const_hi;
        for &(u, strict) in &lb.lower_vars {
            let c = self.class_of_ord[binding[u as usize] as usize];
            lo = lo.max(self.class_start[(c + strict as u32) as usize]);
        }
        for &(u, strict) in &lb.upper_vars {
            let c = self.class_of_ord[binding[u as usize] as usize];
            hi = hi.min(self.class_start[(c + !strict as u32) as usize]);
        }
        (lo, hi)
    }

    /// Runs enumeration, sorts the emission records into the columnar
    /// executor's order, and streams them into profile shards.
    pub(crate) fn run(
        &self,
        group_vars: Option<&[crate::query::Var]>,
    ) -> Result<(EmitOut, ExecStats), EngineError> {
        let _span = r2t_obs::span("exec.wcoj.run");
        let shared = Shared::new(self);
        let harvest = self.enumerate_all(&shared);
        let stride = self.natoms + 1;
        let nrec = harvest.emits.len() / stride;
        // Sort records by row vector: this is exactly the columnar
        // executor's emission order (see the module docs), and row vectors
        // are unique, so the order is total and worker-count independent.
        let mut order: Vec<u32> = (0..nrec as u32).collect();
        let emits = &harvest.emits;
        let natoms = self.natoms;
        order.sort_unstable_by(|&a, &b| {
            let ra = &emits[a as usize * stride..a as usize * stride + natoms];
            let rb = &emits[b as usize * stride..b as usize * stride + natoms];
            ra.cmp(rb)
        });
        let (out, emitted) = self.emit_sorted(&order, &harvest, group_vars)?;
        let peak_resident_bytes = harvest.emits.len() * std::mem::size_of::<u32>()
            + order.len() * std::mem::size_of::<u32>()
            + harvest.bindings.len() * std::mem::size_of::<u32>()
            + harvest.weights.len() * std::mem::size_of::<f64>();
        r2t_obs::counter_add("exec.wcoj.runs", 1);
        r2t_obs::counter_add("exec.wcoj.intersections", harvest.intersections);
        r2t_obs::counter_add("exec.wcoj.seeks", harvest.seeks);
        r2t_obs::counter_add("exec.wcoj.emitted", emitted as u64);
        r2t_obs::counter_add("exec.rows.emitted", emitted as u64);
        r2t_obs::gauge_max("exec.wcoj.depth", harvest.max_depth);
        r2t_obs::gauge_max("exec.peak_bindings", nrec as u64);
        // Per-run seek-depth distribution (the gauge only keeps the max).
        r2t_obs::hist_record("exec.wcoj.seek.depth", harvest.max_depth);
        let stats = ExecStats {
            peak_bindings: nrec,
            interned_values: self.interner.len(),
            surviving_results: emitted,
            peak_resident_bytes,
        };
        Ok((out, stats))
    }

    /// Enumerates all bindings, fanning the first variable's domain out
    /// across scoped threads when it is large enough. The returned harvest
    /// is the concatenation of the workers' harvests in worker order —
    /// irrelevant for the profile (the sort erases it), deterministic for
    /// telemetry anyway.
    fn enumerate_all(&self, shared: &Shared<'_>) -> Harvest {
        if self.var_order.is_empty() {
            // No variables anywhere (all atoms are zero-column): the single
            // empty binding joins every row combination.
            let mut st = State::new(self);
            leaf(shared, &mut st);
            return st.into_harvest();
        }
        let v0: Vec<u32> = self.level0_values(shared);
        let workers = if v0.len() < self.threshold.max(1) { 1 } else { self.workers.min(v0.len()) };
        if workers <= 1 {
            let mut st = State::new(self);
            enumerate(shared, &mut st, 0);
            return st.into_harvest();
        }
        let members = &self.atoms_at_level[0];
        let harvests: Vec<Harvest> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let v0 = &v0;
                    scope.spawn(move || {
                        let t0 = worker_clock();
                        let mut st = State::new(self);
                        // Strided assignment spreads skewed value runs
                        // across workers; the global sort makes any
                        // assignment produce the same profile.
                        let mut assigned = 0usize;
                        for &x in v0.iter().skip(w).step_by(workers) {
                            assigned += 1;
                            // Every level-0 member is at trie depth 0 (an
                            // atom containing the globally first variable
                            // binds it first), so seek in directory space
                            // via the O(1) table and push the mapped
                            // row-space run.
                            for &(ai, _) in members {
                                let t = self.trie(ai);
                                let lo = t.dir_seek[x as usize];
                                let end = t.dir_seek[x as usize + 1];
                                st.seeks += 2;
                                st.ranges[ai].push((t.dir_lo[lo as usize], t.dir_lo[end as usize]));
                            }
                            st.binding[self.var_order[0] as usize] = x;
                            enumerate(shared, &mut st, 1);
                            for &(ai, _) in members {
                                st.ranges[ai].pop();
                            }
                        }
                        let h = st.into_harvest();
                        record_worker(t0, 0, w, assigned, h.weights.len());
                        if r2t_obs::enabled(r2t_obs::Level::Full) {
                            r2t_obs::event(
                                "exec.wcoj.worker",
                                &[
                                    ("worker", Attr::U64(w as u64)),
                                    ("values", Attr::U64(assigned as u64)),
                                    ("bindings", Attr::U64(h.weights.len() as u64)),
                                    ("intersections", Attr::U64(h.intersections)),
                                ],
                            );
                        }
                        h
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("wcoj worker panicked")).collect()
        });
        let mut merged = Harvest::default();
        let stride = self.natoms + 1;
        for h in harvests {
            let base = merged.weights.len() as u32;
            merged.emits.reserve(h.emits.len());
            for rec in h.emits.chunks_exact(stride) {
                merged.emits.extend_from_slice(&rec[..self.natoms]);
                merged.emits.push(rec[self.natoms] + base);
            }
            merged.bindings.extend_from_slice(&h.bindings);
            merged.weights.extend_from_slice(&h.weights);
            merged.intersections += h.intersections;
            merged.seeks += h.seeks;
            merged.max_depth = merged.max_depth.max(h.max_depth);
        }
        merged
    }

    /// Materializes the first variable's intersected domain (used only to
    /// size and partition the parallel fan-out).
    fn level0_values(&self, shared: &Shared<'_>) -> Vec<u32> {
        let members = &self.atoms_at_level[0];
        let mut sc = LevelScratch::default();
        sc.windows.clear();
        for &(ai, _) in members {
            // Level-0 members intersect in directory space (see above).
            sc.windows.push((0, self.trie(ai).dir_keys.len() as u32));
        }
        // Level 0 has no earlier variables, so only constant bounds apply.
        let lb = &self.level_bounds[0];
        let mut values = Vec::new();
        intersect_level(
            &shared.level_keys[0],
            &shared.level_luts[0],
            &mut sc,
            lb.const_lo,
            lb.const_hi,
            |x, _| values.push(x),
        );
        values
    }

    /// Streams the sorted records into profile shards — chunked across
    /// workers and merged positionally, exactly like the columnar executor's
    /// emit stage.
    fn emit_sorted(
        &self,
        order: &[u32],
        harvest: &Harvest,
        group_vars: Option<&[Var]>,
    ) -> Result<(EmitOut, usize), EngineError> {
        let workers =
            if order.len() < self.threshold.max(1) { 1 } else { self.workers.min(order.len()) };
        if workers <= 1 {
            return self.emit_records(order, harvest, group_vars);
        }
        let chunk = order.len().div_ceil(workers);
        let shards: Vec<Result<(EmitOut, usize), EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = order
                .chunks(chunk)
                .enumerate()
                .map(|(widx, idxs)| {
                    scope.spawn(move || {
                        let t0 = worker_clock();
                        let out = self.emit_records(idxs, harvest, group_vars);
                        let emitted = out.as_ref().map(|&(_, n)| n).unwrap_or(0);
                        record_worker(t0, self.var_order.len(), widx, idxs.len(), emitted);
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("emit worker panicked")).collect()
        });
        let mut shards = shards.into_iter();
        let (mut acc, mut emitted) = shards.next().expect("at least one worker")?;
        for shard in shards {
            let (shard, n) = shard?;
            emitted += n;
            match (&mut acc, shard) {
                (EmitOut::Flat(a), EmitOut::Flat(b)) => a.merge(b)?,
                (EmitOut::Grouped(a), EmitOut::Grouped(b)) => a.merge(b)?,
                _ => unreachable!("workers agree on grouping"),
            }
        }
        Ok((acc, emitted))
    }

    /// Emits one contiguous run of sorted records into a fresh shard. The
    /// per-record work mirrors the columnar `emit_range` exactly: predicate
    /// and weight were already applied at the leaf, so what is left is
    /// lineage packing, projection, and grouping.
    fn emit_records(
        &self,
        idxs: &[u32],
        harvest: &Harvest,
        group_vars: Option<&[Var]>,
    ) -> Result<(EmitOut, usize), EngineError> {
        let stride = self.natoms + 1;
        let mut out = EmitOut::empty(group_vars.is_some());
        let mut gkey: Vec<u32> = Vec::new();
        let mut pkey: Vec<u32> = Vec::new();
        // Bindings hold ordered keys; everything leaving the executor
        // (lineage, group keys, projection keys) speaks interner ids.
        let to_id = |k: u32| if k == UNBOUND { k } else { self.id_of_ord[k as usize] };
        for &i in idxs {
            let rec = &harvest.emits[i as usize * stride..(i as usize + 1) * stride];
            let bidx = rec[self.natoms] as usize;
            let b = &harvest.bindings[bidx * self.nvars..(bidx + 1) * self.nvars];
            let w = harvest.weights[bidx];
            let refs = self
                .private_vars
                .iter()
                .map(|&(pidx, var)| pack_private_key(pidx, to_id(b[var as usize])));
            let builder = match (&mut out, group_vars) {
                (EmitOut::Flat(bld), _) => bld,
                (EmitOut::Grouped(acc), Some(gv)) => {
                    gkey.clear();
                    gkey.extend(gv.iter().map(|&v| to_id(b[v as usize])));
                    acc.builder(&gkey)
                }
                _ => unreachable!("grouped output without group vars"),
            };
            match &self.q.projection {
                None => {
                    builder.add_result(w, refs);
                }
                Some(proj) => {
                    pkey.clear();
                    pkey.extend(proj.iter().map(|&v| to_id(b[v as usize])));
                    builder.add_projected_result(&pkey, w, w, refs)?;
                }
            }
        }
        Ok((out, idxs.len()))
    }
}

// ---------------------------------------------------------------------------
// Enumeration.
// ---------------------------------------------------------------------------

/// Immutable enumeration context shared across workers: the plan plus the
/// per-level key slices (resolved once so the hot loop never re-derives
/// them).
struct Shared<'p> {
    plan: &'p WcojPlan<'p>,
    /// `level_keys[l][m]` — the sorted key column member `m` of level `l`
    /// intersects over.
    level_keys: Vec<Vec<&'p [u32]>>,
    /// `level_luts[l][m]` — the member's O(1) seek table when it intersects
    /// over its trie's directory (depth 0), `None` otherwise. Directory
    /// keys are distinct, so a `Some` member's runs always have length 1.
    level_luts: Vec<Vec<Option<&'p [u32]>>>,
}

impl<'p> Shared<'p> {
    fn new(plan: &'p WcojPlan<'p>) -> Shared<'p> {
        let level_keys = plan
            .atoms_at_level
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|&(ai, depth)| {
                        let t = plan.trie(ai);
                        // A depth-0 member's window is always the full
                        // root, so it intersects over the distinct-key
                        // directory instead of the per-row key column.
                        if depth == 0 {
                            t.dir_keys.as_slice()
                        } else {
                            t.keys[depth].as_slice()
                        }
                    })
                    .collect()
            })
            .collect();
        let level_luts = plan
            .atoms_at_level
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|&(ai, depth)| (depth == 0).then(|| plan.trie(ai).dir_seek.as_slice()))
                    .collect()
            })
            .collect();
        Shared { plan, level_keys, level_luts }
    }
}

/// Per-worker mutable enumeration state. Everything the recursion touches is
/// pooled here so the hot path never allocates.
struct State {
    /// Per-atom stack of trie windows; the top is the atom's current node.
    ranges: Vec<Vec<(u32, u32)>>,
    /// Current value binding, indexed by variable id (`UNBOUND` for
    /// variables not yet — or never — bound).
    binding: Vec<u32>,
    /// Surviving value bindings, `nvars` ids each.
    bindings: Vec<u32>,
    /// Per-binding aggregate weight.
    weights: Vec<f64>,
    /// Emission records, `natoms + 1` u32s each: per-atom row ids in
    /// pipeline order, then the binding index.
    emits: Vec<u32>,
    /// Value scratch for predicate/weight evaluation.
    scratch: Vec<Value>,
    /// Per-level intersection scratch (taken/restored around recursion).
    pools: Vec<LevelScratch>,
    /// Leaf cross-product scratch: per pipeline slot, the row window and the
    /// odometer cursor.
    leaf_windows: Vec<(u32, u32)>,
    odo: Vec<u32>,
    intersections: u64,
    seeks: u64,
    max_depth: u64,
}

/// Totals carried out of one worker's enumeration.
#[derive(Default)]
struct Harvest {
    emits: Vec<u32>,
    bindings: Vec<u32>,
    weights: Vec<f64>,
    intersections: u64,
    seeks: u64,
    max_depth: u64,
}

impl State {
    fn new(plan: &WcojPlan<'_>) -> State {
        let ranges =
            (0..plan.natoms).map(|ai| vec![(0u32, plan.trie(ai).len())]).collect::<Vec<_>>();
        State {
            ranges,
            binding: vec![UNBOUND; plan.nvars],
            bindings: Vec::new(),
            weights: Vec::new(),
            emits: Vec::new(),
            scratch: vec![Value::Int(i64::MIN); plan.nvars],
            pools: (0..plan.var_order.len()).map(|_| LevelScratch::default()).collect(),
            leaf_windows: vec![(0, 0); plan.natoms],
            odo: vec![0; plan.natoms],
            intersections: 0,
            seeks: 0,
            max_depth: 0,
        }
    }

    fn into_harvest(self) -> Harvest {
        Harvest {
            emits: self.emits,
            bindings: self.bindings,
            weights: self.weights,
            intersections: self.intersections,
            seeks: self.seeks,
            max_depth: self.max_depth,
        }
    }
}

/// Reusable per-level intersection arrays; `intersections`/`seeks` tallies
/// accumulate here while the level owns the scratch and are drained back
/// into the [`State`] afterwards.
#[derive(Default)]
struct LevelScratch {
    windows: Vec<(u32, u32)>,
    subs: Vec<(u32, u32)>,
    ptrs: Vec<u32>,
    ends: Vec<u32>,
    intersections: u64,
    seeks: u64,
}

/// Seeks one member to the first position with key `>= target`: an O(1)
/// table lookup when the member intersects over its trie directory, a
/// gallop otherwise.
#[inline]
fn seek_ge(keys: &[u32], lut: Option<&[u32]>, lo: u32, hi: u32, target: u32) -> u32 {
    match lut {
        Some(l) => l[target as usize].max(lo),
        None => gallop_ge(keys, lo, hi, target),
    }
}

/// Run delimiting: directory keys are distinct, so a `lut` member's run is
/// always exactly one position.
#[inline]
fn seek_run_end(keys: &[u32], lut: Option<&[u32]>, p: u32, hi: u32) -> u32 {
    if lut.is_some() {
        p + 1
    } else {
        run_end(keys, p, hi)
    }
}

/// Visits every value in the intersection of the members' current key
/// windows, restricted to ordered keys in `key_lo..key_hi`, in ascending
/// order. `visit(x, subs)` receives the value and each member's sub-window
/// (the run of positions whose key equals `x`). Classic leapfrog: repeatedly
/// seek every member to the current maximum key until all agree.
fn intersect_level(
    keys: &[&[u32]],
    luts: &[Option<&[u32]>],
    sc: &mut LevelScratch,
    key_lo: u32,
    key_hi: u32,
    mut visit: impl FnMut(u32, &[(u32, u32)]),
) {
    if key_lo >= key_hi {
        return;
    }
    let k = keys.len();
    sc.ptrs.clear();
    sc.ends.clear();
    for (m, &(lo, hi)) in sc.windows.iter().enumerate() {
        let lo = if key_lo > 0 {
            sc.seeks += 1;
            seek_ge(keys[m], luts[m], lo, hi, key_lo)
        } else {
            lo
        };
        if lo >= hi {
            return;
        }
        sc.ptrs.push(lo);
        sc.ends.push(hi);
    }
    if k == 1 {
        // Single membership: every key run is an intersection value.
        let (keys, lut) = (keys[0], luts[0]);
        let (mut p, hi) = (sc.ptrs[0], sc.ends[0]);
        while p < hi {
            let x = keys[p as usize];
            if x >= key_hi {
                return;
            }
            let end = seek_run_end(keys, lut, p, hi);
            sc.intersections += 1;
            sc.seeks += 1;
            sc.subs.clear();
            sc.subs.push((p, end));
            visit(x, &sc.subs);
            p = end;
        }
        return;
    }
    if k == 2 {
        // Binary intersection — the dominant shape for graph patterns —
        // with the generic machinery peeled away.
        let (ka, kb) = (keys[0], keys[1]);
        let (la, lb) = (luts[0], luts[1]);
        let (mut pa, mut pb) = (sc.ptrs[0], sc.ptrs[1]);
        let (ea, eb) = (sc.ends[0], sc.ends[1]);
        loop {
            let xa = ka[pa as usize];
            let xb = kb[pb as usize];
            let x = xa.max(xb);
            // Any future match is >= x, so the range bound ends everything.
            if x >= key_hi {
                return;
            }
            if xa < x {
                sc.seeks += 1;
                pa = seek_ge(ka, la, pa, ea, x);
                if pa >= ea {
                    return;
                }
            } else if xb < x {
                sc.seeks += 1;
                pb = seek_ge(kb, lb, pb, eb, x);
                if pb >= eb {
                    return;
                }
            } else {
                let ra = seek_run_end(ka, la, pa, ea);
                let rb = seek_run_end(kb, lb, pb, eb);
                sc.intersections += 1;
                sc.seeks += 2;
                sc.subs.clear();
                sc.subs.push((pa, ra));
                sc.subs.push((pb, rb));
                visit(x, &sc.subs);
                pa = ra;
                pb = rb;
                if pa >= ea || pb >= eb {
                    return;
                }
            }
        }
    }
    'outer: loop {
        let mut x = 0u32;
        for m in 0..k {
            x = x.max(keys[m][sc.ptrs[m] as usize]);
        }
        if x >= key_hi {
            break 'outer;
        }
        // Seek everyone to >= x; whenever someone overshoots, raise x and
        // go again. Pointers only move forward, so this terminates.
        loop {
            let mut aligned = true;
            for m in 0..k {
                if keys[m][sc.ptrs[m] as usize] < x {
                    let np = seek_ge(keys[m], luts[m], sc.ptrs[m], sc.ends[m], x);
                    sc.seeks += 1;
                    if np >= sc.ends[m] {
                        break 'outer;
                    }
                    sc.ptrs[m] = np;
                    if keys[m][np as usize] > x {
                        aligned = false;
                    }
                }
            }
            if aligned {
                break;
            }
            for m in 0..k {
                x = x.max(keys[m][sc.ptrs[m] as usize]);
            }
        }
        // Alignment may have pushed x past the admissible range.
        if x >= key_hi {
            break 'outer;
        }
        // All members sit on a run of x: delimit the runs and visit.
        sc.intersections += 1;
        sc.subs.clear();
        for m in 0..k {
            let end = seek_run_end(keys[m], luts[m], sc.ptrs[m], sc.ends[m]);
            sc.seeks += 1;
            sc.subs.push((sc.ptrs[m], end));
        }
        visit(x, &sc.subs);
        for m in 0..k {
            sc.ptrs[m] = sc.subs[m].1;
            if sc.ptrs[m] == sc.ends[m] {
                break 'outer;
            }
        }
    }
}

/// Recursive variable-at-a-time enumeration from `level` downwards.
fn enumerate(sh: &Shared<'_>, st: &mut State, level: usize) {
    let plan = sh.plan;
    if level == plan.var_order.len() {
        leaf(sh, st);
        return;
    }
    st.max_depth = st.max_depth.max(level as u64 + 1);
    let members = &plan.atoms_at_level[level];
    let var = plan.var_order[level] as usize;
    let (key_lo, key_hi) = plan.bounds_at(&st.binding, level);
    let mut sc = std::mem::take(&mut st.pools[level]);
    sc.windows.clear();
    for &(ai, depth) in members {
        sc.windows.push(if depth == 0 {
            // Depth-0 windows are the full root, expressed in the trie's
            // distinct-key directory space (matching `Shared::level_keys`).
            (0, plan.trie(ai).dir_keys.len() as u32)
        } else {
            *st.ranges[ai].last().expect("window present")
        });
    }
    intersect_level(
        &sh.level_keys[level],
        &sh.level_luts[level],
        &mut sc,
        key_lo,
        key_hi,
        |x, subs| {
            for (m, &(ai, depth)) in members.iter().enumerate() {
                let sub = subs[m];
                // Translate directory sub-windows back to row space before
                // they become deeper levels' (or the leaf's) windows.
                st.ranges[ai].push(if depth == 0 {
                    let t = plan.trie(ai);
                    (t.dir_lo[sub.0 as usize], t.dir_lo[sub.1 as usize])
                } else {
                    sub
                });
            }
            st.binding[var] = x;
            enumerate(sh, st, level + 1);
            for &(ai, _) in members {
                st.ranges[ai].pop();
            }
        },
    );
    st.intersections += sc.intersections;
    st.seeks += sc.seeks;
    sc.intersections = 0;
    sc.seeks = 0;
    st.pools[level] = sc;
}

/// A complete value binding: apply predicate and weight once, then emit one
/// record per combination of matching rows (bag semantics — every duplicate
/// row joins separately, exactly as the columnar probe does).
fn leaf(sh: &Shared<'_>, st: &mut State) {
    let plan = sh.plan;
    for &v in &plan.needed_vars {
        let id = plan.id_of_ord[st.binding[v as usize] as usize];
        st.scratch[v as usize] = plan.interner.resolve(id).clone();
    }
    if !plan.q.predicate.eval(&st.scratch) {
        return;
    }
    let w = plan.q.aggregate.weight(&st.scratch);
    if w == 0.0 {
        return;
    }
    let bidx = st.weights.len() as u32;
    st.bindings.extend_from_slice(&st.binding);
    st.weights.push(w);
    let mut single = true;
    for (slot, &ai) in plan.pipeline.iter().enumerate() {
        let win = *st.ranges[ai].last().expect("window present");
        st.leaf_windows[slot] = win;
        single &= win.1 - win.0 == 1;
    }
    if single {
        // Overwhelmingly common: one matching row per atom.
        for (slot, &ai) in plan.pipeline.iter().enumerate() {
            st.emits.push(plan.trie(ai).rows[st.leaf_windows[slot].0 as usize]);
        }
        st.emits.push(bidx);
        return;
    }
    // Odometer over the row windows (duplicate rows / zero-column atoms).
    for (slot, win) in st.leaf_windows.iter().enumerate() {
        if win.0 >= win.1 {
            // A zero-column atom over an empty table: no combinations.
            st.bindings.truncate(st.bindings.len() - plan.nvars);
            st.weights.pop();
            return;
        }
        st.odo[slot] = win.0;
    }
    loop {
        for (slot, &ai) in plan.pipeline.iter().enumerate() {
            st.emits.push(plan.trie(ai).rows[st.odo[slot] as usize]);
        }
        st.emits.push(bidx);
        let mut slot = plan.natoms;
        loop {
            if slot == 0 {
                return;
            }
            slot -= 1;
            st.odo[slot] += 1;
            if st.odo[slot] < st.leaf_windows[slot].1 {
                break;
            }
            st.odo[slot] = st.leaf_windows[slot].0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{
        profile_grouped_with_stats, profile_reference, profile_with_stats, Strategy,
    };
    use crate::instance::Instance;
    use crate::query::{atom, CmpOp, Expr, Predicate};
    use crate::schema::graph_schema_node_dp;

    fn wcoj_opts() -> ExecOptions {
        ExecOptions { strategy: Strategy::Wcoj, ..ExecOptions::default() }
    }

    fn columnar_opts() -> ExecOptions {
        ExecOptions { strategy: Strategy::Columnar, ..ExecOptions::default() }
    }

    fn fixture() -> (Schema, Instance) {
        // Triangle 0-1-2, a square 3-4-5-6, and a pendant 0-6.
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..7).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (3, 6), (0, 6)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
            edges.push(vec![Value::Int(b), Value::Int(a)]);
        }
        inst.insert_all("Edge", edges);
        (s, inst)
    }

    fn shapes() -> Vec<Query> {
        vec![
            Query::count(vec![atom("Edge", &[0, 1])]),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])]),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])])
                .with_predicate(Predicate::And(vec![
                    Predicate::cmp_vars(0, CmpOp::Lt, 1),
                    Predicate::cmp_vars(1, CmpOp::Lt, 2),
                ])),
            Query::count(vec![
                atom("Edge", &[0, 1]),
                atom("Edge", &[1, 2]),
                atom("Edge", &[2, 3]),
                atom("Edge", &[3, 0]),
            ])
            .with_predicate(Predicate::And(vec![
                Predicate::cmp_vars(0, CmpOp::Lt, 1),
                Predicate::cmp_vars(0, CmpOp::Lt, 2),
                Predicate::cmp_vars(0, CmpOp::Lt, 3),
                Predicate::cmp_vars(1, CmpOp::Lt, 3),
                Predicate::cmp_vars(1, CmpOp::Ne, 2),
            ])),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])]).with_sum(Expr::Var(2)),
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])])
                .with_projection(vec![0]),
            Query::count(vec![atom("Edge", &[0, 0])]),
            Query::count(vec![atom("Node", &[0]), atom("Node", &[1])]),
        ]
    }

    #[test]
    fn wcoj_matches_reference_and_columnar() {
        let (s, inst) = fixture();
        for q in shapes() {
            let (wcoj, _) = profile_with_stats(&s, &inst, &q, &wcoj_opts()).unwrap();
            let (col, _) = profile_with_stats(&s, &inst, &q, &columnar_opts()).unwrap();
            let (slow, _) = profile_reference(&s, &inst, &q).unwrap();
            assert_eq!(wcoj, col, "{q:?}");
            assert_eq!(wcoj, slow, "{q:?}");
        }
    }

    #[test]
    fn forced_parallel_is_deterministic() {
        let (s, inst) = fixture();
        for q in shapes() {
            let seq = profile_with_stats(&s, &inst, &q, &wcoj_opts()).unwrap().0;
            for workers in [2, 3, 5] {
                let opts = ExecOptions {
                    workers: Some(workers),
                    parallel_threshold: 1,
                    strategy: Strategy::Wcoj,
                    ..ExecOptions::default()
                };
                let par = profile_with_stats(&s, &inst, &q, &opts).unwrap().0;
                assert_eq!(seq, par, "workers={workers} {q:?}");
            }
        }
    }

    #[test]
    fn grouped_wcoj_matches_columnar() {
        let (s, inst) = fixture();
        let q =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])]);
        let wcoj = profile_grouped_with_stats(&s, &inst, &q, &[0], &wcoj_opts()).unwrap().0;
        let col = profile_grouped_with_stats(&s, &inst, &q, &[0], &columnar_opts()).unwrap().0;
        assert_eq!(wcoj, col);
        assert!(!wcoj.is_empty());
    }

    #[test]
    fn auto_routes_cyclic_to_wcoj_and_acyclic_to_columnar() {
        use crate::query::join_is_acyclic;
        let tri =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])]);
        assert!(!join_is_acyclic(&tri.atoms));
        let path = Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])]);
        assert!(join_is_acyclic(&path.atoms));
        // Auto must agree with both pinned strategies on results.
        let (s, inst) = fixture();
        for q in [tri, path] {
            let auto = profile_with_stats(&s, &inst, &q, &ExecOptions::default()).unwrap().0;
            let wcoj = profile_with_stats(&s, &inst, &q, &wcoj_opts()).unwrap().0;
            let col = profile_with_stats(&s, &inst, &q, &columnar_opts()).unwrap().0;
            assert_eq!(auto, wcoj, "{q:?}");
            assert_eq!(auto, col, "{q:?}");
        }
    }

    #[test]
    fn peak_bindings_track_output_not_intermediates() {
        let (s, inst) = fixture();
        let tri =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])])
                .with_predicate(Predicate::And(vec![
                    Predicate::cmp_vars(0, CmpOp::Lt, 1),
                    Predicate::cmp_vars(1, CmpOp::Lt, 2),
                ]));
        let (p, wstats) = profile_with_stats(&s, &inst, &tri, &wcoj_opts()).unwrap();
        assert_eq!(wstats.peak_bindings, p.results.len());
        assert_eq!(wstats.surviving_results, p.results.len());
        assert!(wstats.peak_resident_bytes > 0);
        let (_, cstats) = profile_with_stats(&s, &inst, &tri, &columnar_opts()).unwrap();
        assert!(
            cstats.peak_bindings > wstats.peak_bindings,
            "columnar {} vs wcoj {}",
            cstats.peak_bindings,
            wstats.peak_bindings
        );
    }

    #[test]
    fn gallop_finds_lower_bounds() {
        let keys = [1u32, 3, 3, 3, 7, 9, 9, 12];
        assert_eq!(gallop_ge(&keys, 0, 8, 0), 0);
        assert_eq!(gallop_ge(&keys, 0, 8, 1), 0);
        assert_eq!(gallop_ge(&keys, 0, 8, 2), 1);
        assert_eq!(gallop_ge(&keys, 0, 8, 3), 1);
        assert_eq!(gallop_ge(&keys, 0, 8, 4), 4);
        assert_eq!(gallop_ge(&keys, 0, 8, 9), 5);
        assert_eq!(gallop_ge(&keys, 0, 8, 13), 8);
        assert_eq!(gallop_ge(&keys, 2, 5, 3), 2);
        assert_eq!(gallop_ge(&keys, 5, 5, 3), 5);
    }

    #[test]
    fn variable_order_prefers_frequency_then_connectivity() {
        // Triangle: every variable occurs twice; smallest id first.
        let tri =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[0, 2])]);
        assert_eq!(variable_order(&tri, tri.num_vars()), vec![0, 1, 2]);
        // Star with a hub: the hub (var 0, in all atoms) leads.
        let star =
            Query::count(vec![atom("Edge", &[1, 0]), atom("Edge", &[0, 2]), atom("Edge", &[0, 3])]);
        assert_eq!(variable_order(&star, star.num_vars())[0], 0);
    }
}
