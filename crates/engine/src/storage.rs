//! On-disk columnar archives: the out-of-core storage tier.
//!
//! [`write_archive`] serializes a validated [`Instance`] — interned once into
//! a single global [`Interner`] — into a page-aligned, checksummed file.
//! [`Archive::open`] memory-maps that file and exposes every relation as a
//! [`ColumnarTable`] whose columns are zero-copy `&[u32]` views straight into
//! the mapping ([`crate::interner::ColumnData::Mapped`]). Cold start is
//! therefore *mmap + validate* instead of re-interning every row, and the
//! columns never need to be resident all at once: the kernel pages them in
//! on demand as the executor streams over them.
//!
//! # Format (version 1)
//!
//! All integers little-endian; all section starts 4096-aligned (so every
//! column begins on a page boundary and `&[u32]` views are always aligned).
//!
//! ```text
//! page 0   header: magic "R2TARCH1" · endian mark 0x01020304 · version ·
//!          schema fingerprint (FNV-1a 64 of the canonical schema string) ·
//!          validated flag · relation count ·
//!          interner section (off, len, checksum) ·
//!          directory section (off, len, checksum) · header checksum
//! page 1+  interner: value count (u64), then tagged values
//!          (0 = Int i64 · 1 = Float f64 bits · 2 = Str u32 len + UTF-8)
//! ...      column sections: one per (relation, column), page-aligned,
//!          nrows × u32 interned ids in row order
//! tail     directory: per relation (schema order): name · nrows · ncols ·
//!          per-column (off, len, checksum)
//! ```
//!
//! Every section carries an FNV-1a 64 checksum (verified word-at-a-time on
//! open), so a truncated or bit-flipped archive fails with a clean
//! [`EngineError::Storage`] instead of UB. The schema fingerprint rejects
//! archives written under a different schema before any data is trusted.

use crate::instance::Instance;
use crate::interner::{ColumnData, ColumnarTable, Interner};
use crate::schema::Schema;
use crate::value::Value;
use crate::EngineError;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"R2TARCH1";
const ENDIAN_MARK: u32 = 0x0102_0304;
const VERSION: u32 = 1;
const PAGE: u64 = 4096;
/// Fixed header size in bytes (before the trailing header checksum).
const HEADER_BYTES: usize = 8 + 4 + 4 + 8 + 4 + 4 + 24 + 24 + 8;

fn serr(msg: impl Into<String>) -> EngineError {
    EngineError::Storage(msg.into())
}

/// FNV-1a 64, folded a word at a time so checksumming hundreds of megabytes
/// of column data stays a small fraction of the re-intern cost it replaces.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical schema digest: relation names, columns, PKs, FKs, and the
/// privacy policy. An archive only opens under a schema with the same digest.
fn schema_fingerprint(schema: &Schema) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::new();
    for rel in schema.relations() {
        s.push_str(&rel.name);
        s.push('(');
        for c in &rel.columns {
            s.push_str(c);
            s.push(',');
        }
        s.push(';');
        if let Some(pk) = rel.primary_key {
            let _ = write!(s, "pk={pk};");
        }
        for fk in &rel.foreign_keys {
            let _ = write!(s, "fk={}>{};", fk.column, fk.references);
        }
        s.push(')');
    }
    s.push('|');
    for p in schema.primary_private() {
        s.push_str(p);
        s.push(',');
    }
    fnv1a64(s.as_bytes())
}

// ---------------------------------------------------------------------------
// Memory mapping
// ---------------------------------------------------------------------------

/// A read-only view of an archive file's bytes: a `mmap(2)` mapping on
/// Linux/x86-64 (zero-copy, demand-paged) or a heap copy everywhere else.
/// Page-aligned by construction, so u32 views over page-aligned sections are
/// always correctly aligned.
pub struct Mapping {
    inner: MapInner,
}

enum MapInner {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mmap { ptr: *const u8, len: usize },
    /// Fallback: file bytes copied into u32-aligned heap storage.
    Heap { words: Vec<u32>, byte_len: usize },
}

// The mapping is read-only (PROT_READ, MAP_PRIVATE) for its whole lifetime.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
    if len == 0 {
        return None;
    }
    let ret: i64;
    // mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0) — raw syscall; the
    // workspace links no libc crate.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 9i64 => ret, // SYS_mmap
            in("rdi") 0i64,
            in("rsi") len,
            in("rdx") 1i64,               // PROT_READ
            in("r10") 2i64,               // MAP_PRIVATE
            in("r8") fd as i64,
            in("r9") 0i64,
            out("rcx") _, out("r11") _,
            options(nostack)
        );
    }
    if (-4095..0).contains(&ret) {
        None
    } else {
        Some(ret as usize as *const u8)
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_munmap(ptr: *const u8, len: usize) {
    let _ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 11i64 => _ret, // SYS_munmap
            in("rdi") ptr as usize,
            in("rsi") len,
            out("rcx") _, out("r11") _,
            options(nostack)
        );
    }
}

impl Mapping {
    /// Maps (or, on unsupported targets, reads) `path` read-only.
    pub fn open(path: &Path) -> Result<Mapping, EngineError> {
        let mut file =
            File::open(path).map_err(|e| serr(format!("open {}: {e}", path.display())))?;
        let len = file.metadata().map_err(|e| serr(format!("stat {}: {e}", path.display())))?.len()
            as usize;
        if len == 0 {
            return Err(serr(format!("{}: empty file", path.display())));
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::unix::io::AsRawFd;
            if let Some(ptr) = sys_mmap_readonly(file.as_raw_fd(), len) {
                return Ok(Mapping { inner: MapInner::Mmap { ptr, len } });
            }
        }
        // Fallback: copy the file into u32-aligned heap storage.
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes).map_err(|e| serr(format!("read {}: {e}", path.display())))?;
        let mut words = vec![0u32; bytes.len().div_ceil(4)];
        // Safe: words is zero-initialised and at least bytes.len() bytes long.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        Ok(Mapping { inner: MapInner::Heap { words, byte_len: bytes.len() } })
    }

    /// The mapped file bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            MapInner::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            MapInner::Heap { words, byte_len } => unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, *byte_len)
            },
        }
    }

    /// The mapping viewed as little-endian u32 words (the whole-file id
    /// space that [`ColumnData::Mapped`] offsets index into). Any trailing
    /// bytes short of a full word are excluded; column sections are
    /// page-aligned so they always fall inside the word view.
    pub fn as_u32s(&self) -> &[u32] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            MapInner::Mmap { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u32, *len / 4)
            },
            MapInner::Heap { words, byte_len } => &words[..byte_len / 4],
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            MapInner::Mmap { len, .. } => *len,
            MapInner::Heap { byte_len, .. } => *byte_len,
        }
    }

    /// Whether the mapping is empty (never true for an opened archive).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let MapInner::Mmap { ptr, len } = self.inner {
            sys_munmap(ptr, len);
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            MapInner::Mmap { .. } => "mmap",
            MapInner::Heap { .. } => "heap",
        };
        write!(f, "Mapping({kind}, {} bytes)", self.len())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct SectionWriter {
    file: File,
    off: u64,
}

impl SectionWriter {
    fn write(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.file.write_all(bytes).map_err(|e| serr(format!("write archive: {e}")))?;
        self.off += bytes.len() as u64;
        Ok(())
    }

    fn pad_to_page(&mut self) -> Result<(), EngineError> {
        let rem = self.off % PAGE;
        if rem != 0 {
            self.write(&vec![0u8; (PAGE - rem) as usize])?;
        }
        Ok(())
    }
}

fn put_section(buf: &mut Vec<u8>, (off, len, sum): (u64, u64, u64)) {
    buf.extend_from_slice(&off.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&sum.to_le_bytes());
}

/// Validates `instance` against `schema`, interns every relation (schema
/// order, row order) into one global interner, and writes the archive to
/// `path`. The write is atomic-ish: data lands in `path` only after all
/// sections and the header are flushed.
pub fn write_archive(schema: &Schema, instance: &Instance, path: &Path) -> Result<(), EngineError> {
    instance.validate(schema)?;

    // One global interner across all relations: ids are stable database-wide,
    // so any query can reuse them without re-interning.
    let mut interner = Interner::new();
    let tables: Vec<ColumnarTable> =
        schema.relations().iter().map(|rel| instance.columnar(&rel.name, &mut interner)).collect();

    let file = File::create(path).map_err(|e| serr(format!("create {}: {e}", path.display())))?;
    let mut w = SectionWriter { file, off: 0 };
    w.write(&vec![0u8; PAGE as usize])?; // header placeholder

    // Interner section.
    let mut ibuf = Vec::new();
    ibuf.extend_from_slice(&(interner.len() as u64).to_le_bytes());
    for v in interner.values() {
        match v {
            Value::Int(i) => {
                ibuf.push(0);
                ibuf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                ibuf.push(1);
                ibuf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                ibuf.push(2);
                ibuf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                ibuf.extend_from_slice(s.as_bytes());
            }
        }
    }
    let isec = (w.off, ibuf.len() as u64, fnv1a64(&ibuf));
    w.write(&ibuf)?;
    w.pad_to_page()?;

    // Column sections: each page-aligned so the mapped view is a plain
    // aligned `&[u32]`.
    let mut col_secs: Vec<Vec<(u64, u64, u64)>> = Vec::with_capacity(tables.len());
    for t in &tables {
        let mut secs = Vec::with_capacity(t.cols.len());
        for col in &t.cols {
            let mut cbuf = Vec::with_capacity(col.len() * 4);
            for &id in col.iter() {
                cbuf.extend_from_slice(&id.to_le_bytes());
            }
            secs.push((w.off, cbuf.len() as u64, fnv1a64(&cbuf)));
            w.write(&cbuf)?;
            w.pad_to_page()?;
        }
        col_secs.push(secs);
    }

    // Directory.
    let mut dbuf = Vec::new();
    for (rel, (t, secs)) in schema.relations().iter().zip(tables.iter().zip(&col_secs)) {
        dbuf.extend_from_slice(&(rel.name.len() as u32).to_le_bytes());
        dbuf.extend_from_slice(rel.name.as_bytes());
        dbuf.extend_from_slice(&(t.nrows as u64).to_le_bytes());
        dbuf.extend_from_slice(&(t.cols.len() as u32).to_le_bytes());
        for &sec in secs {
            put_section(&mut dbuf, sec);
        }
    }
    let dsec = (w.off, dbuf.len() as u64, fnv1a64(&dbuf));
    w.write(&dbuf)?;
    w.pad_to_page()?;

    // Header (page 0), written last so a crashed write never looks valid.
    let mut h = Vec::with_capacity(HEADER_BYTES + 8);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&schema_fingerprint(schema).to_le_bytes());
    h.extend_from_slice(&1u32.to_le_bytes()); // validated-at-write flag
    h.extend_from_slice(&(schema.relations().len() as u32).to_le_bytes());
    put_section(&mut h, isec);
    put_section(&mut h, dsec);
    h.extend_from_slice(&w.off.to_le_bytes()); // total file length
    debug_assert_eq!(h.len(), HEADER_BYTES);
    let hsum = fnv1a64(&h);
    h.extend_from_slice(&hsum.to_le_bytes());
    w.file
        .seek(SeekFrom::Start(0))
        .and_then(|_| w.file.write_all(&h))
        .and_then(|_| w.file.sync_all())
        .map_err(|e| serr(format!("finalize {}: {e}", path.display())))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over the mapped bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| serr("archive section truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn section(&mut self) -> Result<(u64, u64, u64), EngineError> {
        Ok((self.u64()?, self.u64()?, self.u64()?))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Slices a checksummed section out of the mapping, verifying bounds and
/// integrity before any byte is interpreted.
fn checked_section<'a>(
    bytes: &'a [u8],
    (off, len, sum): (u64, u64, u64),
    what: &str,
) -> Result<&'a [u8], EngineError> {
    let off = usize::try_from(off).map_err(|_| serr(format!("{what}: offset overflow")))?;
    let len = usize::try_from(len).map_err(|_| serr(format!("{what}: length overflow")))?;
    let end = off
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| serr(format!("{what}: section out of bounds (truncated archive?)")))?;
    let sec = &bytes[off..end];
    if fnv1a64(sec) != sum {
        return Err(serr(format!("{what}: checksum mismatch")));
    }
    Ok(sec)
}

/// An opened archive: the mapping, the rebuilt global interner, and one
/// zero-copy [`ColumnarTable`] per schema relation.
#[derive(Debug)]
pub struct Archive {
    map: Arc<Mapping>,
    interner: Interner,
    tables: Vec<ColumnarTable>,
    names: Vec<String>,
    by_name: HashMap<String, usize>,
    total_rows: usize,
}

impl Archive {
    /// Opens and fully validates an archive: magic, endianness, version,
    /// schema fingerprint, and every section checksum. Any corruption or
    /// truncation returns [`EngineError::Storage`]; no partially-validated
    /// archive is ever returned.
    pub fn open(schema: &Schema, path: &Path) -> Result<Archive, EngineError> {
        let map = Arc::new(Mapping::open(path)?);
        let bytes = map.as_bytes();
        if bytes.len() < HEADER_BYTES + 8 {
            return Err(serr("archive shorter than its header"));
        }
        let mut c = Cursor::new(&bytes[..HEADER_BYTES + 8]);
        if c.take(8)? != MAGIC {
            return Err(serr("bad magic (not an R2T archive)"));
        }
        if c.u32()? != ENDIAN_MARK {
            return Err(serr("endianness mismatch (archive written on a foreign byte order)"));
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(serr(format!("unsupported archive version {version}")));
        }
        let fingerprint = c.u64()?;
        let _validated = c.u32()?;
        let nrel = c.u32()? as usize;
        let isec = c.section()?;
        let dsec = c.section()?;
        let file_len = c.u64()?;
        let hsum = c.u64()?;
        if fnv1a64(&bytes[..HEADER_BYTES]) != hsum {
            return Err(serr("header checksum mismatch"));
        }
        if bytes.len() as u64 != file_len {
            return Err(serr(format!(
                "archive is {} bytes, header says {file_len} (truncated or grown)",
                bytes.len()
            )));
        }
        if fingerprint != schema_fingerprint(schema) {
            return Err(serr(
                "schema fingerprint mismatch (archive written under a different schema)",
            ));
        }
        if nrel != schema.relations().len() {
            return Err(serr(format!(
                "archive has {nrel} relations, schema has {}",
                schema.relations().len()
            )));
        }

        // Interner section.
        let ibytes = checked_section(bytes, isec, "interner section")?;
        let mut ic = Cursor::new(ibytes);
        let nvalues = ic.u64()? as usize;
        if nvalues >= u32::MAX as usize {
            return Err(serr("interner section claims more values than the id space"));
        }
        let mut values = Vec::with_capacity(nvalues.min(ibytes.len()));
        for _ in 0..nvalues {
            let v = match ic.u8()? {
                0 => Value::Int(i64::from_le_bytes(ic.take(8)?.try_into().expect("8 bytes"))),
                1 => Value::Float(f64::from_bits(ic.u64()?)),
                2 => {
                    let len = ic.u32()? as usize;
                    let s = std::str::from_utf8(ic.take(len)?)
                        .map_err(|_| serr("interner section: invalid UTF-8 string"))?;
                    Value::str(s)
                }
                t => return Err(serr(format!("interner section: unknown value tag {t}"))),
            };
            values.push(v);
        }
        if !ic.done() {
            return Err(serr("interner section: trailing bytes"));
        }
        let interner = Interner::from_values(values)
            .ok_or_else(|| serr("interner section contains duplicate values"))?;

        // Directory + column sections.
        let dbytes = checked_section(bytes, dsec, "directory section")?;
        let mut dc = Cursor::new(dbytes);
        let mut tables = Vec::with_capacity(nrel);
        let mut names = Vec::with_capacity(nrel);
        let mut by_name = HashMap::with_capacity(nrel);
        let mut total_rows = 0usize;
        let mut covered: Vec<(u64, u64)> =
            vec![(0, HEADER_BYTES as u64 + 8), (isec.0, isec.1), (dsec.0, dsec.1)];
        for rel in schema.relations() {
            let nlen = dc.u32()? as usize;
            let name = std::str::from_utf8(dc.take(nlen)?)
                .map_err(|_| serr("directory: invalid UTF-8 relation name"))?;
            if name != rel.name {
                return Err(serr(format!(
                    "directory lists relation {name:?} where schema has {:?}",
                    rel.name
                )));
            }
            let nrows = dc.u64()? as usize;
            let ncols = dc.u32()? as usize;
            if nrows > 0 && ncols != rel.arity() {
                return Err(serr(format!(
                    "relation {name}: archive has {ncols} columns, schema arity is {}",
                    rel.arity()
                )));
            }
            let mut cols = Vec::with_capacity(ncols);
            for ci in 0..ncols {
                let sec = dc.section()?;
                let cbytes = checked_section(bytes, sec, &format!("column {name}.{ci}"))?;
                if sec.0 % 4 != 0 {
                    return Err(serr(format!("column {name}.{ci}: unaligned section offset")));
                }
                if cbytes.len() != nrows * 4 {
                    return Err(serr(format!(
                        "column {name}.{ci}: {} bytes for {nrows} rows",
                        cbytes.len()
                    )));
                }
                for i in (0..cbytes.len()).step_by(4) {
                    let id = u32::from_le_bytes(cbytes[i..i + 4].try_into().expect("4 bytes"));
                    if id as usize >= interner.len() {
                        return Err(serr(format!(
                            "column {name}.{ci}: id {id} out of interner range"
                        )));
                    }
                }
                covered.push((sec.0, sec.1));
                cols.push(ColumnData::Mapped {
                    map: Arc::clone(&map),
                    off: sec.0 as usize / 4,
                    len: nrows,
                });
            }
            total_rows += nrows;
            by_name.insert(rel.name.clone(), tables.len());
            names.push(rel.name.clone());
            tables.push(ColumnarTable { cols, nrows });
        }
        if !dc.done() {
            return Err(serr("directory section: trailing bytes"));
        }
        // Section checksums cover their contents; everything between them is
        // page-alignment padding and must be zero. Checking it means a
        // single flipped bit *anywhere* in the file fails open — no byte is
        // outside the validation surface.
        covered.sort_unstable();
        let mut end = 0u64;
        for &(off, len) in &covered {
            if off > end && bytes[end as usize..off as usize].iter().any(|&b| b != 0) {
                return Err(serr("nonzero bytes in archive padding"));
            }
            end = end.max(off.saturating_add(len));
        }
        if (end as usize) < bytes.len() && bytes[end as usize..].iter().any(|&b| b != 0) {
            return Err(serr("nonzero bytes in archive padding"));
        }
        Ok(Archive { map, interner, tables, names, by_name, total_rows })
    }

    /// The database-wide interner rebuilt from the archive.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The mapped columnar image of `relation`, if the schema has it.
    pub fn table(&self, relation: &str) -> Option<&ColumnarTable> {
        self.by_name.get(relation).map(|&i| &self.tables[i])
    }

    /// Relation names in schema order.
    pub fn relation_names(&self) -> &[String] {
        &self.names
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.total_rows
    }

    /// Bytes in the underlying mapping (archive file size).
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    /// Decodes the archive back into a heap [`Instance`] (row-major
    /// `Value`s). This is the escape hatch for code paths that genuinely
    /// need rows — it costs full materialization, so query execution should
    /// prefer the mapped tables.
    pub fn materialize(&self) -> Instance {
        let mut inst = Instance::new();
        for (name, t) in self.names.iter().zip(&self.tables) {
            if t.nrows == 0 {
                continue;
            }
            let rows = (0..t.nrows).map(|r| {
                t.cols.iter().map(|c| self.interner.resolve(c[r]).clone()).collect::<Vec<_>>()
            });
            inst.insert_all(name, rows);
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::graph_schema_node_dp;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("r2t-storage-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("db.r2t")
    }

    fn sample() -> (Schema, Instance) {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..5).map(|i| vec![Value::Int(i)]));
        inst.insert_all(
            "Edge",
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 0)]
                .map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
        );
        (s, inst)
    }

    #[test]
    fn round_trip_preserves_rows_and_values() {
        let (s, inst) = sample();
        let path = tmp("roundtrip");
        write_archive(&s, &inst, &path).unwrap();
        let a = Archive::open(&s, &path).unwrap();
        assert_eq!(a.total_tuples(), inst.total_tuples());
        let back = a.materialize();
        for rel in s.relations() {
            assert_eq!(back.rows(&rel.name), inst.rows(&rel.name), "{}", rel.name);
        }
        // Mapped columns behave exactly like heap columns.
        let t = a.table("Edge").unwrap();
        assert_eq!(t.nrows, 6);
        assert_eq!(t.cols.len(), 2);
        let first_src = a.interner().resolve(t.cols[0][0]);
        assert_eq!(first_src, &Value::Int(0));
    }

    #[test]
    fn reopen_matches_writer_interner_ids() {
        let (s, inst) = sample();
        let path = tmp("ids");
        write_archive(&s, &inst, &path).unwrap();
        let a = Archive::open(&s, &path).unwrap();
        // Writer interns in schema order / row order; reopening must
        // reproduce exactly that id assignment.
        let mut interner = Interner::new();
        for rel in s.relations() {
            let t = inst.columnar(&rel.name, &mut interner);
            let at = a.table(&rel.name).unwrap();
            assert_eq!(at.nrows, t.nrows);
            for (hc, mc) in t.cols.iter().zip(&at.cols) {
                assert_eq!(&hc[..], &mc[..], "{}", rel.name);
            }
        }
        assert_eq!(interner.len(), a.interner().len());
    }

    #[test]
    fn unvalidated_instance_is_rejected() {
        let (s, mut inst) = sample();
        inst.insert("Edge", vec![Value::Int(0), Value::Int(99)]); // broken FK
        let path = tmp("invalid");
        assert!(matches!(
            write_archive(&s, &inst, &path),
            Err(EngineError::BrokenForeignKey { .. })
        ));
    }

    #[test]
    fn truncated_archive_fails_cleanly() {
        let (s, inst) = sample();
        let path = tmp("trunc");
        write_archive(&s, &inst, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for keep in [0usize, 7, 100, PAGE as usize, full.len() - 1] {
            std::fs::write(&path, &full[..keep.min(full.len())]).unwrap();
            match Archive::open(&s, &path) {
                Err(EngineError::Storage(_)) => {}
                other => panic!("truncated to {keep} bytes: {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_fail_checksums() {
        let (s, inst) = sample();
        let path = tmp("flip");
        write_archive(&s, &inst, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Flip one byte in every live region: header, interner, a column
        // page, and the directory (which occupies the last page).
        for pos in [9usize, PAGE as usize + 12, 2 * PAGE as usize + 2, full.len() - PAGE as usize] {
            let mut bad = full.clone();
            let p = pos.min(bad.len() - 1);
            bad[p] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            match Archive::open(&s, &path) {
                Err(EngineError::Storage(_)) => {}
                other => panic!("flip at {pos}: {other:?}"),
            }
        }
    }

    #[test]
    fn schema_drift_is_rejected() {
        let (s, inst) = sample();
        let path = tmp("drift");
        write_archive(&s, &inst, &path).unwrap();
        let other = crate::schema::graph_schema_edge_dp();
        match Archive::open(&other, &path) {
            Err(EngineError::Storage(msg)) => assert!(msg.contains("fingerprint"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_file_is_not_an_archive() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![0xABu8; 9000]).unwrap();
        let s = graph_schema_node_dp();
        match Archive::open(&s, &path) {
            Err(EngineError::Storage(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_relation_round_trips() {
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..3).map(|i| vec![Value::Int(i)]));
        // No edges at all.
        let path = tmp("empty-rel");
        write_archive(&s, &inst, &path).unwrap();
        let a = Archive::open(&s, &path).unwrap();
        assert_eq!(a.table("Edge").unwrap().nrows, 0);
        assert_eq!(a.materialize().rows("Edge"), inst.rows("Edge"));
    }
}
