//! # r2t-engine — relational substrate for DP query evaluation
//!
//! An in-memory relational engine providing exactly what the R2T system needs
//! from its RDBMS (the paper uses PostgreSQL):
//!
//! * [`schema`] — relations, primary keys, foreign keys (modelled as a DAG,
//!   Section 3.2 of the paper), and the DP policy designating one or more
//!   *primary private relations*.
//! * [`instance`] — physical relation instances with PK indexes, referential
//!   integrity checking, and *down-neighbour* construction (delete a private
//!   tuple plus everything that transitively references it) — the
//!   neighbourhood relation that defines DP with FK constraints.
//! * [`query`] — an SPJA query IR: multi-way joins with variable renaming
//!   (self-joins), arbitrary predicates, SUM/COUNT aggregation, and optional
//!   duplicate-removing projection.
//! * [`complete`] — query completion: any FK variable whose referenced PK
//!   relation is missing gets that relation joined in (Section 3.2).
//! * [`exec`] — a multi-way hash-join executor that tracks *lineage*: for
//!   every join result, the set of primary-private tuples it references.
//! * [`wcoj`] — a worst-case-optimal (generic join / leapfrog triejoin)
//!   executor for cyclic join patterns; [`exec::Strategy::Auto`] routes
//!   cyclic queries here and acyclic ones to the columnar pipeline.
//! * [`delta`] — the typed mutation surface ([`delta::WriteBatch`]) and
//!   incrementally maintained lineage views ([`delta::IncrementalView`]):
//!   writes propagate as per-relation deltas instead of instance rebuilds,
//!   with replayed profiles bit-identical to a from-scratch run.
//! * [`csv`] — CSV import for relation instances (as [`delta::WriteBatch`]es).
//! * [`storage`] — an on-disk columnar archive: interned tables serialized
//!   into a page-aligned, checksummed file that reopens as zero-copy
//!   memory-mapped `&[u32]` column views, so cold start is mmap + validate
//!   instead of re-interning every row.
//! * [`lineage`] — the [`lineage::QueryProfile`] artifact consumed by the DP
//!   mechanisms: per-result weights `ψ(q_k)`, the reference sets `C_j(I)`,
//!   and (for projection queries) the duplicate groups `D_l(I)`.

pub mod complete;
pub mod csv;
pub mod delta;
pub mod exec;
pub mod instance;
pub mod interner;
pub mod lineage;
pub mod query;
pub mod schema;
pub mod storage;
pub mod value;
pub mod wcoj;

pub use delta::{
    IncrementalView, IntegrityIndex, ProfileChanges, ResolvedDelta, ResolvedWrite, WriteBatch,
};
pub use exec::{ExecOptions, ExecStats, Source, Strategy};
pub use instance::Instance;
pub use interner::Interner;
pub use lineage::{ProfileSummary, QueryProfile, ResultLine};
pub use query::{Aggregate, Atom, CmpOp, Expr, Predicate, Query};
pub use schema::{Relation, Schema};
pub use storage::Archive;
pub use value::{Tuple, Value};

/// Errors raised by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A relation name was not found in the schema.
    UnknownRelation(String),
    /// A column name was not found in a relation.
    UnknownColumn { relation: String, column: String },
    /// A tuple had the wrong arity for its relation.
    ArityMismatch { relation: String, expected: usize, got: usize },
    /// A foreign key referenced a missing tuple.
    BrokenForeignKey { relation: String, column: String, value: String },
    /// A primary key value occurred twice.
    DuplicateKey { relation: String, value: String },
    /// A [`delta::WriteBatch`] delete did not match any live tuple.
    MissingDeleteTarget { relation: String, tuple: String },
    /// The query referenced a relation or variable inconsistently.
    MalformedQuery(String),
    /// The FK graph contained a cycle (it must be a DAG).
    CyclicForeignKeys,
    /// An on-disk archive could not be written, opened, or validated
    /// (I/O failure, bad magic, checksum mismatch, schema drift, …).
    Storage(String),
    /// Two members of one projected-result group reported different group
    /// weights: the projected weight must depend only on the projected
    /// attributes (Section 7's `ψ(p_l)`).
    InconsistentGroupWeight {
        /// Weight recorded when the group was first seen.
        expected: f64,
        /// Conflicting weight reported by a later member.
        got: f64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            EngineError::UnknownColumn { relation, column } => {
                write!(f, "unknown column {relation}.{column}")
            }
            EngineError::ArityMismatch { relation, expected, got } => {
                write!(f, "relation {relation} expects arity {expected}, got {got}")
            }
            EngineError::BrokenForeignKey { relation, column, value } => {
                write!(f, "foreign key {relation}.{column} = {value} references a missing tuple")
            }
            EngineError::DuplicateKey { relation, value } => {
                write!(f, "duplicate primary key {value} in {relation}")
            }
            EngineError::MissingDeleteTarget { relation, tuple } => {
                write!(f, "delete target not found in {relation}: {tuple}")
            }
            EngineError::MalformedQuery(msg) => write!(f, "malformed query: {msg}"),
            EngineError::CyclicForeignKeys => write!(f, "foreign-key graph contains a cycle"),
            EngineError::Storage(msg) => write!(f, "storage: {msg}"),
            EngineError::InconsistentGroupWeight { expected, got } => write!(
                f,
                "projected-group weight depends on non-projected attributes \
                 (group weight {expected}, member reported {got})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}
