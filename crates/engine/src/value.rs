//! Values and tuples.
//!
//! Join keys must be hashable, so [`Value`] implements `Eq`/`Hash` with
//! bitwise float semantics (NaN is rejected at construction sites that
//! matter — predicates and weights treat comparisons with the usual partial
//! order).

use std::fmt;
use std::sync::Arc;

/// A single attribute value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit integer (also used for dates, encoded as days).
    Int(i64),
    /// 64-bit float. Hash/Eq use the bit pattern.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Numeric view (integers promote to floats); `None` for strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Total comparison used by predicates: numerics compare numerically
    /// (Int/Float mixed fine), strings lexicographically. Cross-kind
    /// comparisons order numerics before strings (stable but arbitrary).
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => match (self, other) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => Ordering::Equal,
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            // Int/Float join keys are distinct kinds on purpose: schemas are
            // typed, so mixing them in a join is a bug we'd rather surface.
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(1);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Int(1));
        set.insert(Value::Float(1.0));
        set.insert(Value::str("1"));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp_total(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn string_comparison() {
        assert_eq!(Value::str("abc").cmp_total(&Value::str("abd")), Ordering::Less);
        assert_eq!(Value::Int(5).cmp_total(&Value::str("a")), Ordering::Less);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("x").to_string(), "x");
    }
}
