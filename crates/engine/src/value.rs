//! Values and tuples.
//!
//! Join keys must be hashable, so [`Value`] implements `Eq`/`Hash` with
//! bitwise float semantics (NaN is rejected at construction sites that
//! matter — predicates and weights treat comparisons with the usual partial
//! order).

use std::fmt;
use std::sync::Arc;

/// A single attribute value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit integer (also used for dates, encoded as days).
    Int(i64),
    /// 64-bit float. Hash/Eq use the bit pattern.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Numeric view (integers promote to floats); `None` for strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Canonical *total* order used for deterministic output ordering (e.g.
    /// sorting group-by keys): values order first by kind (`Int` < `Float` <
    /// `Str`), then within a kind by value, floats by IEEE total order. This
    /// is a strict total order consistent with `Eq` — unlike
    /// [`Value::cmp_total`], which treats `Int(3)` and `Float(3.0)` as equal.
    pub fn cmp_key(&self, other: &Value) -> std::cmp::Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Total comparison used by predicates: numerics compare numerically
    /// (Int/Float mixed fine), strings lexicographically. Cross-kind
    /// comparisons order numerics before strings (stable but arbitrary).
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => match (self, other) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => Ordering::Equal,
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            // Int/Float join keys are distinct kinds on purpose: schemas are
            // typed, so mixing them in a join is a bug we'd rather surface.
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(1);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

/// Lexicographic [`Value::cmp_key`] order on tuples (canonical group-key
/// ordering: deterministic and consistent with tuple equality).
pub fn cmp_tuples(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.cmp_key(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Int(1));
        set.insert(Value::Float(1.0));
        set.insert(Value::str("1"));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp_total(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn string_comparison() {
        assert_eq!(Value::str("abc").cmp_total(&Value::str("abd")), Ordering::Less);
        assert_eq!(Value::Int(5).cmp_total(&Value::str("a")), Ordering::Less);
    }

    #[test]
    fn cmp_key_is_a_total_order_consistent_with_eq() {
        // Distinct values never compare Equal under cmp_key.
        let vals = [
            Value::Int(3),
            Value::Int(10),
            Value::Float(3.0),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::str("a"),
            Value::str("ab"),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp_key(b) == Ordering::Equal, i == j, "{a:?} vs {b:?}");
                assert_eq!(a.cmp_key(b), b.cmp_key(a).reverse());
            }
        }
        // Numeric order within a kind, not string order: 3 < 10.
        assert_eq!(Value::Int(3).cmp_key(&Value::Int(10)), Ordering::Less);
        assert_eq!(cmp_tuples(&[Value::Int(1)], &[Value::Int(1), Value::Int(0)]), Ordering::Less);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("x").to_string(), "x");
    }
}
