//! Schemas: relations, primary/foreign keys, and the DP privacy policy.
//!
//! Following Section 3.2 of the paper, foreign keys form a DAG over the
//! relations. One or more relations are designated *primary private*; any
//! relation with a direct or transitive FK path to a primary private relation
//! is *secondary private*; the rest are public.

use crate::EngineError;
use std::collections::HashMap;

/// A foreign-key constraint: `column` of this relation references the primary
/// key of `references`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Column index in the owning relation.
    pub column: usize,
    /// Name of the referenced relation (whose PK the column stores).
    pub references: String,
}

/// A relation definition.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Relation name (case-sensitive).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Index of the primary-key column, if the relation has one.
    pub primary_key: Option<usize>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Relation {
    /// Looks up a column index by name.
    pub fn column(&self, name: &str) -> Result<usize, EngineError> {
        self.columns.iter().position(|c| c == name).ok_or_else(|| EngineError::UnknownColumn {
            relation: self.name.clone(),
            column: name.to_string(),
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A database schema plus the DP privacy policy.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: Vec<Relation>,
    by_name: HashMap<String, usize>,
    /// Names of the primary private relations (Section 3.2 / Section 8).
    primary_private: Vec<String>,
}

/// Builder-style construction.
impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a relation. `primary_key` and `foreign_keys` use column names.
    pub fn add_relation(
        &mut self,
        name: &str,
        columns: &[&str],
        primary_key: Option<&str>,
        foreign_keys: &[(&str, &str)],
    ) -> Result<(), EngineError> {
        let mut rel = Relation {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            primary_key: None,
            foreign_keys: Vec::new(),
        };
        if let Some(pk) = primary_key {
            rel.primary_key = Some(rel.column(pk)?);
        }
        for &(col, target) in foreign_keys {
            let column = rel.column(col)?;
            rel.foreign_keys.push(ForeignKey { column, references: target.to_string() });
        }
        self.by_name.insert(rel.name.clone(), self.relations.len());
        self.relations.push(rel);
        Ok(())
    }

    /// Designates the primary private relations.
    pub fn set_primary_private(&mut self, names: &[&str]) -> Result<(), EngineError> {
        for n in names {
            if !self.by_name.contains_key(*n) {
                return Err(EngineError::UnknownRelation(n.to_string()));
            }
        }
        self.primary_private = names.iter().map(|s| s.to_string()).collect();
        Ok(())
    }

    /// The primary private relation names, in designation order.
    pub fn primary_private(&self) -> &[String] {
        &self.primary_private
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation, EngineError> {
        self.by_name
            .get(name)
            .map(|&i| &self.relations[i])
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))
    }

    /// All relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Validates the FK graph: every referenced relation must exist and have
    /// a PK, and the graph must be acyclic.
    pub fn validate(&self) -> Result<(), EngineError> {
        for rel in &self.relations {
            for fk in &rel.foreign_keys {
                let target = self.relation(&fk.references)?;
                if target.primary_key.is_none() {
                    return Err(EngineError::MalformedQuery(format!(
                        "FK {}.{} references {} which has no primary key",
                        rel.name, rel.columns[fk.column], target.name
                    )));
                }
            }
        }
        // Cycle detection via DFS colours.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let n = self.relations.len();
        let mut colour = vec![Colour::White; n];
        fn dfs(schema: &Schema, i: usize, colour: &mut [Colour]) -> Result<(), EngineError> {
            colour[i] = Colour::Grey;
            for fk in &schema.relations[i].foreign_keys {
                let j = schema.by_name[&fk.references];
                match colour[j] {
                    Colour::Grey => return Err(EngineError::CyclicForeignKeys),
                    Colour::White => dfs(schema, j, colour)?,
                    Colour::Black => {}
                }
            }
            colour[i] = Colour::Black;
            Ok(())
        }
        for i in 0..n {
            if colour[i] == Colour::White {
                dfs(self, i, &mut colour)?;
            }
        }
        Ok(())
    }

    /// Whether `name` is a secondary private relation: it has a direct or
    /// transitive FK path to some primary private relation (primary private
    /// relations themselves are not "secondary").
    pub fn is_secondary_private(&self, name: &str) -> Result<bool, EngineError> {
        let rel = self.relation(name)?;
        if self.primary_private.iter().any(|p| p == name) {
            return Ok(false);
        }
        let mut stack: Vec<&Relation> = vec![rel];
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = stack.pop() {
            if !seen.insert(r.name.clone()) {
                continue;
            }
            for fk in &r.foreign_keys {
                if self.primary_private.contains(&fk.references) {
                    return Ok(true);
                }
                stack.push(self.relation(&fk.references)?);
            }
        }
        Ok(false)
    }
}

/// The graph schema from Example 3.1 under *node-DP*: `Node(id)` primary
/// private, `Edge(src, dst)` secondary private with FKs `src → Node`,
/// `dst → Node`.
pub fn graph_schema_node_dp() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Node", &["id"], Some("id"), &[]).expect("static schema");
    s.add_relation("Edge", &["src", "dst"], None, &[("src", "Node"), ("dst", "Node")])
        .expect("static schema");
    s.set_primary_private(&["Node"]).expect("static schema");
    s
}

/// The same graph schema under *edge-DP*: `Edge` is the primary private
/// relation and there are no FK constraints.
pub fn graph_schema_edge_dp() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Node", &["id"], Some("id"), &[]).expect("static schema");
    s.add_relation("Edge", &["src", "dst"], None, &[]).expect("static schema");
    s.set_primary_private(&["Edge"]).expect("static schema");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_schema_is_valid() {
        let s = graph_schema_node_dp();
        s.validate().unwrap();
        assert_eq!(s.primary_private(), &["Node".to_string()]);
        assert!(s.is_secondary_private("Edge").unwrap());
        assert!(!s.is_secondary_private("Node").unwrap());
    }

    #[test]
    fn cycle_detected() {
        let mut s = Schema::new();
        s.add_relation("A", &["id", "b"], Some("id"), &[("b", "B")]).unwrap();
        s.add_relation("B", &["id", "a"], Some("id"), &[("a", "A")]).unwrap();
        assert_eq!(s.validate(), Err(EngineError::CyclicForeignKeys));
    }

    #[test]
    fn fk_to_keyless_relation_rejected() {
        let mut s = Schema::new();
        s.add_relation("A", &["x"], None, &[]).unwrap();
        s.add_relation("B", &["a"], None, &[("a", "A")]).unwrap();
        assert!(s.validate().is_err());
    }

    #[test]
    fn transitive_secondary_private() {
        // customer <- orders <- lineitem: lineitem is secondary private.
        let mut s = Schema::new();
        s.add_relation("customer", &["ck"], Some("ck"), &[]).unwrap();
        s.add_relation("orders", &["ok", "ck"], Some("ok"), &[("ck", "customer")]).unwrap();
        s.add_relation("lineitem", &["ok", "qty"], None, &[("ok", "orders")]).unwrap();
        s.set_primary_private(&["customer"]).unwrap();
        s.validate().unwrap();
        assert!(s.is_secondary_private("lineitem").unwrap());
        assert!(s.is_secondary_private("orders").unwrap());
    }

    #[test]
    fn unknown_private_relation_rejected() {
        let mut s = Schema::new();
        s.add_relation("A", &["x"], None, &[]).unwrap();
        assert!(s.set_primary_private(&["Nope"]).is_err());
    }
}
