//! Typed mutations and incremental view maintenance.
//!
//! This module is the engine half of the live-update story. Instead of
//! rebuilding an [`Instance`] (and re-deriving every lineage profile) on each
//! base-table change, callers describe changes as a [`WriteBatch`] of
//! per-relation insert/delete tuple sets, resolve it against the current
//! instance into a [`ResolvedWrite`], check referential integrity in
//! O(batch) with an [`IntegrityIndex`], and propagate the delta through any
//! number of [`IncrementalView`]s — each of which re-derives *only the join
//! bindings that touch changed rows* and can then replay a [`QueryProfile`]
//! that is **bit-identical** to a from-scratch rebuild on the post-write
//! instance.
//!
//! ## Why the replay is bit-identical
//!
//! The columnar executor ([`crate::exec`]) emits surviving bindings in the
//! lexicographic order of per-stage row indices along its greedy pipeline
//! order, and builds the profile by feeding that stream through an
//! [`IdProfileBuilder`]. An [`IncrementalView`] stores one record per
//! surviving binding, keyed by its *trail* — the persistent row id at each
//! pipeline position. Persistent ids are assigned append-only and deletes
//! compact the live set in place, so live ids in ascending order correspond
//! exactly to the rebuilt instance's row order; sorting records by trail
//! therefore reconstructs the executor's emission order, and replaying them
//! through a fresh [`IdProfileBuilder`] (the very type the executor emits
//! into) reproduces its dense-id assignment — and hence the profile —
//! bit for bit. Interned value ids never appear in a profile, only their
//! equality pattern does, so the view's own append-only [`Interner`] is
//! interchangeable with the executor's.
//!
//! ## Memory model
//!
//! Views accrete: deleted rows are tombstoned (their column ids and interner
//! entries are retained) and the interner only grows. This is the standard
//! trade of incremental maintenance — bounded per-apply work in exchange for
//! storage proportional to the *history* of the relation, not its live size.
//! Rebuild the view (or the owning snapshot) to compact.

use crate::complete::complete_query;
use crate::exec::{greedy_order, needed_value_vars, private_key_vars, resolve_groups, GroupedAcc};
use crate::instance::Instance;
use crate::interner::Interner;
use crate::lineage::{pack_private_key, IdProfileBuilder, QueryProfile};
use crate::query::{join_is_acyclic, Query, Var};
use crate::schema::Schema;
use crate::value::{Tuple, Value};
use crate::EngineError;
use std::collections::{HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------------
// WriteBatch: the one typed mutation surface.
// ---------------------------------------------------------------------------

/// A typed set of mutations: per-relation inserts and deletes, or a full
/// instance replacement. This is the single write surface — CSV import
/// ([`crate::csv::csv_batch`]) and full reloads are expressed as batches too.
///
/// A batch is *unvalidated* until [`WriteBatch::resolve`] checks it against a
/// schema and matches deletes against concrete rows of an instance.
#[derive(Debug, Clone)]
pub struct WriteBatch {
    kind: BatchKind,
}

#[derive(Debug, Clone)]
enum BatchKind {
    Delta(Vec<RelationDelta>),
    Replace(Instance),
}

#[derive(Debug, Clone)]
struct RelationDelta {
    relation: String,
    inserts: Vec<Tuple>,
    deletes: Vec<Tuple>,
}

impl Default for WriteBatch {
    fn default() -> Self {
        WriteBatch::new()
    }
}

impl WriteBatch {
    /// An empty delta batch.
    pub fn new() -> Self {
        WriteBatch { kind: BatchKind::Delta(Vec::new()) }
    }

    /// A full-replacement batch: the entire instance is swapped for
    /// `instance` (the compatibility shape of the old `reload`).
    pub fn replace(instance: Instance) -> Self {
        WriteBatch { kind: BatchKind::Replace(instance) }
    }

    fn delta_mut(&mut self, relation: &str) -> &mut RelationDelta {
        let BatchKind::Delta(deltas) = &mut self.kind else {
            panic!("cannot add per-relation deltas to a replace batch");
        };
        match deltas.iter().position(|d| d.relation == relation) {
            Some(i) => &mut deltas[i],
            None => {
                deltas.push(RelationDelta {
                    relation: relation.to_string(),
                    inserts: Vec::new(),
                    deletes: Vec::new(),
                });
                deltas.last_mut().expect("just pushed")
            }
        }
    }

    /// Stages one tuple for insertion into `relation`.
    ///
    /// # Panics
    /// On a [`WriteBatch::replace`] batch, which carries no per-relation
    /// deltas.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.delta_mut(relation).inserts.push(tuple);
        self
    }

    /// Stages tuples for insertion into `relation`.
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(
        &mut self,
        relation: &str,
        tuples: I,
    ) -> &mut Self {
        self.delta_mut(relation).inserts.extend(tuples);
        self
    }

    /// Stages one tuple for deletion from `relation`. Each staged delete
    /// consumes one matching pre-batch row; deleting the same tuple twice
    /// requires two matching rows.
    pub fn delete(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.delta_mut(relation).deletes.push(tuple);
        self
    }

    /// Stages tuples for deletion from `relation`.
    pub fn delete_all<I: IntoIterator<Item = Tuple>>(
        &mut self,
        relation: &str,
        tuples: I,
    ) -> &mut Self {
        self.delta_mut(relation).deletes.extend(tuples);
        self
    }

    /// Whether this is a full-replacement batch.
    pub fn is_replace(&self) -> bool {
        matches!(self.kind, BatchKind::Replace(_))
    }

    /// Whether the batch stages no mutations at all (a replace batch is
    /// never empty — it replaces, even with an empty instance).
    pub fn is_empty(&self) -> bool {
        match &self.kind {
            BatchKind::Delta(ds) => ds.iter().all(|d| d.inserts.is_empty() && d.deletes.is_empty()),
            BatchKind::Replace(_) => false,
        }
    }

    /// Whether any deletes are staged. Resolving an insert-only batch never
    /// consults the instance's rows, so callers with deferred materialization
    /// can pass an empty instance to [`WriteBatch::resolve`] when this is
    /// `false`.
    pub fn has_deletes(&self) -> bool {
        match &self.kind {
            BatchKind::Delta(ds) => ds.iter().any(|d| !d.deletes.is_empty()),
            BatchKind::Replace(_) => false,
        }
    }

    /// Validates the batch against `schema` and matches staged deletes
    /// against concrete rows of `instance`, producing a [`ResolvedWrite`].
    ///
    /// Checks performed here: relation names exist, tuple arities match, and
    /// every staged delete finds a distinct pre-batch row (equal tuples are
    /// claimed lowest-index first; a miss is
    /// [`EngineError::MissingDeleteTarget`]). Referential integrity is a
    /// separate, instance-wide concern — see [`IntegrityIndex::check`].
    ///
    /// `instance` is consulted *only* for delete matching (see
    /// [`WriteBatch::has_deletes`]); a replace batch ignores it entirely.
    pub fn resolve(
        self,
        schema: &Schema,
        instance: &Instance,
    ) -> Result<ResolvedWrite, EngineError> {
        match self.kind {
            BatchKind::Replace(inst) => Ok(ResolvedWrite { kind: ResolvedKind::Replace(inst) }),
            BatchKind::Delta(deltas) => {
                let mut out = Vec::with_capacity(deltas.len());
                for d in deltas {
                    let rel = schema.relation(&d.relation)?;
                    for t in d.inserts.iter().chain(d.deletes.iter()) {
                        if t.len() != rel.arity() {
                            return Err(EngineError::ArityMismatch {
                                relation: d.relation.clone(),
                                expected: rel.arity(),
                                got: t.len(),
                            });
                        }
                    }
                    let mut delete_ranks = Vec::with_capacity(d.deletes.len());
                    if !d.deletes.is_empty() {
                        let rows = instance.rows(&d.relation);
                        let mut by_tuple: HashMap<&Tuple, VecDeque<usize>> = HashMap::new();
                        for (i, row) in rows.iter().enumerate() {
                            by_tuple.entry(row).or_default().push_back(i);
                        }
                        for t in &d.deletes {
                            match by_tuple.get_mut(t).and_then(|q| q.pop_front()) {
                                Some(i) => delete_ranks.push(i),
                                None => {
                                    return Err(EngineError::MissingDeleteTarget {
                                        relation: d.relation.clone(),
                                        tuple: format_tuple(t),
                                    })
                                }
                            }
                        }
                        delete_ranks.sort_unstable();
                    }
                    let rows = instance.rows(&d.relation);
                    let deleted_rows = delete_ranks.iter().map(|&i| rows[i].clone()).collect();
                    out.push(ResolvedDelta {
                        relation: d.relation,
                        delete_ranks,
                        deleted_rows,
                        inserts: d.inserts,
                    });
                }
                Ok(ResolvedWrite { kind: ResolvedKind::Delta(out) })
            }
        }
    }
}

fn format_tuple(t: &[Value]) -> String {
    let fields: Vec<String> = t.iter().map(|v| v.to_string()).collect();
    format!("({})", fields.join(", "))
}

// ---------------------------------------------------------------------------
// ResolvedWrite: a batch pinned to concrete rows.
// ---------------------------------------------------------------------------

/// One relation's resolved delta: deletes as sorted pre-batch row ranks
/// (with the matched rows retained for integrity checking), inserts in
/// staging order.
#[derive(Debug, Clone)]
pub struct ResolvedDelta {
    relation: String,
    delete_ranks: Vec<usize>,
    deleted_rows: Vec<Tuple>,
    inserts: Vec<Tuple>,
}

impl ResolvedDelta {
    /// The relation this delta mutates.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Sorted pre-batch row indices to delete.
    pub fn delete_ranks(&self) -> &[usize] {
        &self.delete_ranks
    }

    /// The deleted rows, aligned with [`ResolvedDelta::delete_ranks`].
    pub fn deleted_rows(&self) -> &[Tuple] {
        &self.deleted_rows
    }

    /// Rows to append, in staging order.
    pub fn inserts(&self) -> &[Tuple] {
        &self.inserts
    }

    /// Whether this delta stages no mutations.
    pub fn is_empty(&self) -> bool {
        self.delete_ranks.is_empty() && self.inserts.is_empty()
    }
}

/// A [`WriteBatch`] resolved against a concrete instance state: deletes are
/// pinned to row indices, so application is deterministic — survivors keep
/// their relative order and inserts append.
#[derive(Debug, Clone)]
pub struct ResolvedWrite {
    kind: ResolvedKind,
}

#[derive(Debug, Clone)]
enum ResolvedKind {
    Delta(Vec<ResolvedDelta>),
    Replace(Instance),
}

impl ResolvedWrite {
    /// Whether this is a full replacement.
    pub fn is_replace(&self) -> bool {
        matches!(self.kind, ResolvedKind::Replace(_))
    }

    /// The replacement instance, if this is a replace write.
    pub fn replace_instance(&self) -> Option<&Instance> {
        match &self.kind {
            ResolvedKind::Replace(inst) => Some(inst),
            ResolvedKind::Delta(_) => None,
        }
    }

    /// Consumes a replace write into its instance.
    pub fn into_replace(self) -> Option<Instance> {
        match self.kind {
            ResolvedKind::Replace(inst) => Some(inst),
            ResolvedKind::Delta(_) => None,
        }
    }

    /// The per-relation deltas (empty for a replace write).
    pub fn deltas(&self) -> &[ResolvedDelta] {
        match &self.kind {
            ResolvedKind::Delta(ds) => ds,
            ResolvedKind::Replace(_) => &[],
        }
    }

    /// Names of relations with a non-empty delta (empty for replace — a
    /// replace invalidates everything regardless).
    pub fn touched(&self) -> Vec<&str> {
        self.deltas().iter().filter(|d| !d.is_empty()).map(|d| d.relation()).collect()
    }

    /// Applies the write in place: per relation, survivors keep their
    /// relative order, then inserts append in staging order.
    pub fn apply_mut(&self, instance: &mut Instance) {
        match &self.kind {
            ResolvedKind::Replace(inst) => *instance = inst.clone(),
            ResolvedKind::Delta(deltas) => {
                for d in deltas {
                    let rows = instance.table_mut(&d.relation);
                    if !d.delete_ranks.is_empty() {
                        let mut keep = 0usize;
                        let mut di = 0usize;
                        for i in 0..rows.len() {
                            if di < d.delete_ranks.len() && d.delete_ranks[di] == i {
                                di += 1;
                                continue;
                            }
                            if keep != i {
                                rows.swap(keep, i);
                            }
                            keep += 1;
                        }
                        rows.truncate(keep);
                    }
                    rows.extend(d.inserts.iter().cloned());
                }
            }
        }
    }

    /// [`ResolvedWrite::apply_mut`] on a clone.
    pub fn apply_to(&self, instance: &Instance) -> Instance {
        let mut out = instance.clone();
        self.apply_mut(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// IntegrityIndex: O(batch) referential-integrity checking.
// ---------------------------------------------------------------------------

/// Per-relation primary-key values `(deleted, added)` by a batch.
type PkChurn<'a> = HashMap<&'a str, (HashSet<&'a Value>, HashSet<&'a Value>)>;

/// Incremental referential-integrity state: per-relation primary-key sets
/// plus, per FK edge, how many rows reference each key. Built once from a
/// *validated* instance, then [`IntegrityIndex::check`] prices an entire
/// delta batch in O(batch) — the full `Instance::validate` rescan is only
/// needed for replace writes.
#[derive(Debug, Clone)]
pub struct IntegrityIndex {
    /// Relation -> set of live primary-key values (PK relations only).
    pks: HashMap<String, HashSet<Value>>,
    /// FK edge (referencing relation, column index) -> referenced value ->
    /// count of live referencing rows.
    refs: HashMap<(String, usize), HashMap<Value, u64>>,
}

impl IntegrityIndex {
    /// Builds the index from a validated instance (PK uniqueness and FK
    /// integrity are assumed to already hold).
    pub fn build(schema: &Schema, instance: &Instance) -> Self {
        let mut pks: HashMap<String, HashSet<Value>> = HashMap::new();
        let mut refs: HashMap<(String, usize), HashMap<Value, u64>> = HashMap::new();
        for rel in schema.relations() {
            let rows = instance.rows(&rel.name);
            if let Some(pk) = rel.primary_key {
                pks.insert(rel.name.clone(), rows.iter().map(|t| t[pk].clone()).collect());
            }
            for fk in &rel.foreign_keys {
                let counts = refs.entry((rel.name.clone(), fk.column)).or_default();
                for t in rows {
                    *counts.entry(t[fk.column].clone()).or_insert(0) += 1;
                }
            }
        }
        IntegrityIndex { pks, refs }
    }

    /// Per-relation PK values `(deleted, added)` of the batch. Uniqueness
    /// checks consult raw `deleted` (a delete frees the key for re-insert);
    /// FK liveness consults the *effective* removal `deleted − added` (a
    /// re-inserted key never stops existing).
    fn pk_churn<'a>(
        schema: &Schema,
        deltas: &'a [ResolvedDelta],
    ) -> Result<PkChurn<'a>, EngineError> {
        let mut churn: HashMap<&str, (HashSet<&Value>, HashSet<&Value>)> = HashMap::new();
        for d in deltas {
            let rel = schema.relation(&d.relation)?;
            if let Some(pk) = rel.primary_key {
                let entry = churn.entry(d.relation.as_str()).or_default();
                entry.0.extend(d.deleted_rows.iter().map(|t| &t[pk]));
                entry.1.extend(d.inserts.iter().map(|t| &t[pk]));
            }
        }
        Ok(churn)
    }

    /// Validates a delta batch against the post-write state in O(batch):
    /// inserted PKs must be unique against surviving keys and within the
    /// batch, inserted FK values must reference a post-write key, and every
    /// deleted PK must end the batch with zero referencing rows.
    pub fn check(&self, schema: &Schema, deltas: &[ResolvedDelta]) -> Result<(), EngineError> {
        let churn = Self::pk_churn(schema, deltas)?;

        // Inserted-PK uniqueness against post-write survivors and the batch.
        for d in deltas {
            let rel = schema.relation(&d.relation)?;
            let Some(pk) = rel.primary_key else { continue };
            let live = self.pks.get(&d.relation);
            let (deleted, _) = churn.get(d.relation.as_str()).expect("PK relation has churn");
            let mut batch_added: HashSet<&Value> = HashSet::new();
            for t in &d.inserts {
                let v = &t[pk];
                let survives = live.is_some_and(|s| s.contains(v)) && !deleted.contains(v);
                if survives || !batch_added.insert(v) {
                    return Err(EngineError::DuplicateKey {
                        relation: d.relation.clone(),
                        value: v.to_string(),
                    });
                }
            }
        }

        // Inserted FK values must reference a key live after the batch.
        for d in deltas {
            let rel = schema.relation(&d.relation)?;
            for fk in &rel.foreign_keys {
                let live = self.pks.get(&fk.references);
                let (t_deleted, t_added) = match churn.get(fk.references.as_str()) {
                    Some((del, a)) => (Some(del), Some(a)),
                    None => (None, None),
                };
                for t in &d.inserts {
                    let v = &t[fk.column];
                    // Live post-batch: added by the batch, or pre-existing
                    // and not (effectively) deleted — a re-inserted key
                    // never stops existing.
                    let added_now = t_added.is_some_and(|a| a.contains(v));
                    let deleted_now = t_deleted.is_some_and(|del| del.contains(v));
                    let live_now =
                        added_now || (live.is_some_and(|s| s.contains(v)) && !deleted_now);
                    if !live_now {
                        return Err(EngineError::BrokenForeignKey {
                            relation: d.relation.clone(),
                            column: rel.columns[fk.column].clone(),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }

        // Deleted PKs must not be referenced after the batch. Reference
        // counts are adjusted by the batch's own deletes/inserts per edge.
        for rel in schema.relations() {
            for fk in &rel.foreign_keys {
                let Some((t_deleted, t_added)) = churn.get(fk.references.as_str()) else {
                    continue;
                };
                let t_removed: Vec<&Value> =
                    t_deleted.iter().filter(|v| !t_added.contains(*v)).copied().collect();
                if t_removed.is_empty() {
                    continue;
                }
                let counts = self.refs.get(&(rel.name.clone(), fk.column));
                let mut net: HashMap<&Value, i64> = HashMap::new();
                if let Some(d) = deltas.iter().find(|d| d.relation == rel.name) {
                    for t in &d.deleted_rows {
                        *net.entry(&t[fk.column]).or_insert(0) -= 1;
                    }
                    for t in &d.inserts {
                        *net.entry(&t[fk.column]).or_insert(0) += 1;
                    }
                }
                for &v in t_removed.iter() {
                    let before = counts.and_then(|c| c.get(v)).copied().unwrap_or(0) as i64;
                    if before + net.get(v).copied().unwrap_or(0) != 0 {
                        return Err(EngineError::BrokenForeignKey {
                            relation: rel.name.clone(),
                            column: rel.columns[fk.column].clone(),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a *checked* batch to the index. Call only after
    /// [`IntegrityIndex::check`] succeeded on the same deltas.
    pub fn commit(&mut self, schema: &Schema, deltas: &[ResolvedDelta]) {
        for d in deltas {
            let Ok(rel) = schema.relation(&d.relation) else { continue };
            if let Some(pk) = rel.primary_key {
                let set = self.pks.entry(d.relation.clone()).or_default();
                for t in &d.deleted_rows {
                    set.remove(&t[pk]);
                }
                for t in &d.inserts {
                    set.insert(t[pk].clone());
                }
            }
            for fk in &rel.foreign_keys {
                let counts = self.refs.entry((d.relation.clone(), fk.column)).or_default();
                for t in &d.deleted_rows {
                    if let Some(c) = counts.get_mut(&t[fk.column]) {
                        *c -= 1;
                        if *c == 0 {
                            counts.remove(&t[fk.column]);
                        }
                    }
                }
                for t in &d.inserts {
                    *counts.entry(t[fk.column].clone()).or_insert(0) += 1;
                }
            }
        }
    }
}

/// Sorted, deduplicated relation names of the query's *completion* — the
/// relations whose mutations can change the query's profile. This is the
/// revalidation scope a cache keys on: a write touching none of these leaves
/// the prepared entry valid as-is.
pub fn query_relations(schema: &Schema, query: &Query) -> Result<Vec<String>, EngineError> {
    let q = complete_query(schema, query)?;
    let mut rels: Vec<String> = q.atoms.iter().map(|a| a.relation.clone()).collect();
    rels.sort_unstable();
    rels.dedup();
    Ok(rels)
}

// ---------------------------------------------------------------------------
// IncrementalView: delta-join maintenance of one query's lineage.
// ---------------------------------------------------------------------------

/// Line-level report of one maintenance step: the join results that
/// disappeared and appeared, each as a `(weight, raw private keys)` pair
/// under the view's stable packed key space (see [`IncrementalView::raw_lines`]).
///
/// When `rebuilt` is set the surviving set was re-derived wholesale (the
/// greedy join order shifted, or a joined relation emptied) and the
/// `removed`/`added` lists are intentionally left empty — they are not
/// meaningful deltas. Consumers holding per-line state must fall back to a
/// full replay in that case.
#[derive(Debug, Default)]
pub struct ProfileChanges {
    /// Lines dropped this step (a deleted row appeared in their trail).
    pub removed: Vec<(f64, Box<[u64]>)>,
    /// Lines newly derived this step.
    pub added: Vec<(f64, Box<[u64]>)>,
    /// The record set was rebuilt from scratch; the lists above are empty.
    pub rebuilt: bool,
}

impl ProfileChanges {
    /// No line changed: the surviving set — and hence any profile replay —
    /// is exactly what it was before the step.
    pub fn is_noop(&self) -> bool {
        !self.rebuilt && self.removed.is_empty() && self.added.is_empty()
    }
}

/// One surviving join binding, keyed by its trail (persistent row id per
/// pipeline position). Everything the profile replay needs is precomputed at
/// emission: weight, packed private-reference keys, and the projection /
/// group key ids under the view's own interner.
#[derive(Debug, Clone)]
struct EmitRecord {
    trail: Box<[u32]>,
    weight: f64,
    /// Packed `(private relation idx, value id)` keys in `private_vars`
    /// order — raw, exactly as the executor feeds its builder.
    refs: Box<[u64]>,
    pkey: Option<Box<[u32]>>,
    gkey: Option<Box<[u32]>>,
}

/// One relation's columnar image under persistent row ids: ids are assigned
/// append-only; deletes tombstone. `live_ids` (ascending) maps the live set
/// onto the corresponding instance's row order.
#[derive(Debug)]
struct DeltaTable {
    arity: usize,
    /// `cols[c][id]` — interned value id of column `c` of persistent row
    /// `id`. Dead rows retain their slots.
    cols: Vec<Vec<u32>>,
    live: Vec<bool>,
    /// Live persistent ids, ascending.
    live_ids: Vec<u32>,
}

impl DeltaTable {
    fn new(arity: usize) -> Self {
        DeltaTable { arity, cols: vec![Vec::new(); arity], live: Vec::new(), live_ids: Vec::new() }
    }

    /// Total ids ever assigned (== next id).
    fn next_id(&self) -> u32 {
        self.live.len() as u32
    }

    /// Live rows whose id is below `threshold` (the pre-delta live count
    /// for a per-apply threshold).
    fn old_count(&self, threshold: u32) -> usize {
        self.live_ids.partition_point(|&id| id < threshold)
    }
}

/// A per-(table, key columns) hash index over *live* persistent row ids,
/// maintained incrementally: inserts append (ids grow, so buckets stay
/// ascending) and deletes remove by binary search.
#[derive(Debug)]
enum DeltaIndex {
    /// 1–2 key columns packed into a `u64`.
    Packed(HashMap<u64, Vec<u32>>),
    /// 3+ key columns.
    Wide(HashMap<Box<[u32]>, Vec<u32>>),
}

impl DeltaIndex {
    fn build(table: &DeltaTable, cols: &[usize]) -> DeltaIndex {
        let mut idx = if cols.len() <= 2 {
            DeltaIndex::Packed(HashMap::new())
        } else {
            DeltaIndex::Wide(HashMap::new())
        };
        for &id in &table.live_ids {
            idx.insert(table, cols, id);
        }
        idx
    }

    fn packed_key(table: &DeltaTable, cols: &[usize], id: u32) -> u64 {
        let mut k = table.cols[cols[0]][id as usize] as u64;
        if cols.len() == 2 {
            k = (k << 32) | table.cols[cols[1]][id as usize] as u64;
        }
        k
    }

    fn insert(&mut self, table: &DeltaTable, cols: &[usize], id: u32) {
        match self {
            DeltaIndex::Packed(map) => {
                map.entry(Self::packed_key(table, cols, id)).or_default().push(id)
            }
            DeltaIndex::Wide(map) => {
                let key: Box<[u32]> = cols.iter().map(|&c| table.cols[c][id as usize]).collect();
                map.entry(key).or_default().push(id)
            }
        }
    }

    fn remove(&mut self, table: &DeltaTable, cols: &[usize], id: u32) {
        let bucket = match self {
            DeltaIndex::Packed(map) => map.get_mut(&Self::packed_key(table, cols, id)),
            DeltaIndex::Wide(map) => {
                let key: Vec<u32> = cols.iter().map(|&c| table.cols[c][id as usize]).collect();
                map.get_mut(key.as_slice())
            }
        };
        if let Some(bucket) = bucket {
            if let Ok(pos) = bucket.binary_search(&id) {
                bucket.remove(pos);
            }
        }
    }

    /// The ascending live ids matching the partial binding's key values.
    fn candidates<'a>(
        &'a self,
        cols_vars: &[Var],
        nb: &[u32],
        keybuf: &mut Vec<u32>,
    ) -> Option<&'a [u32]> {
        match self {
            DeltaIndex::Packed(map) => {
                let mut k = nb[cols_vars[0] as usize] as u64;
                if cols_vars.len() == 2 {
                    k = (k << 32) | nb[cols_vars[1] as usize] as u64;
                }
                map.get(&k).map(Vec::as_slice)
            }
            DeltaIndex::Wide(map) => {
                keybuf.clear();
                keybuf.extend(cols_vars.iter().map(|&v| nb[v as usize]));
                map.get(keybuf.as_slice()).map(Vec::as_slice)
            }
        }
    }
}

/// How one enumeration stage binds its atom's columns against the running
/// partial binding.
#[derive(Debug, Clone)]
struct StageDesc {
    /// Pipeline position (index into the greedy order).
    pos: usize,
    /// Table index.
    table: usize,
    /// `(column, variable, sets)` per atom column: `sets` columns write a
    /// fresh variable; the rest must agree with the bound id.
    binds: Vec<(usize, Var, bool)>,
    /// Canonical (sorted) key columns for the probe index; empty for a
    /// Cartesian probe or the seed stage.
    key_cols: Vec<usize>,
    /// Variable to read from the partial per key column, aligned with
    /// `key_cols`.
    key_vars: Vec<Var>,
    /// Restrict candidates to pre-delta rows (pipeline positions after the
    /// delta stage).
    old_only: bool,
}

/// Incrementally maintained lineage view of one (optionally grouped) query
/// over an instance.
///
/// Construct with [`IncrementalView::new`] (returns `None` for plans the
/// delta pass does not cover: zero-variable queries and cyclic joins, which
/// the caller re-runs through [`crate::exec`]). Feed every applied write
/// through [`IncrementalView::apply`] — the deltas must have been resolved
/// against exactly the instance state the view currently reflects — then
/// replay [`IncrementalView::profile`] / [`IncrementalView::profile_grouped`]
/// at will.
#[derive(Debug)]
pub struct IncrementalView {
    /// The completed query.
    q: Query,
    nvars: usize,
    interner: Interner,
    tables: Vec<DeltaTable>,
    /// Relation name per table (first-appearance order, self-joins share).
    names: Vec<String>,
    /// Atom index -> table index.
    atom_table: Vec<usize>,
    /// Greedy pipeline order over atom indices (recomputed per apply; an
    /// order change triggers a full re-enumeration).
    order: Vec<usize>,
    private_vars: Vec<(u32, Var)>,
    needed_vars: Vec<Var>,
    group_vars: Option<Vec<Var>>,
    /// Surviving bindings sorted by trail (the executor's emission order).
    records: Vec<EmitRecord>,
    /// Probe indexes keyed by (table, canonical key columns).
    indexes: HashMap<(usize, Box<[usize]>), DeltaIndex>,
}

impl IncrementalView {
    /// Builds the view over `instance`, running the initial join through the
    /// same delta machinery later applies use (the whole instance is one
    /// big insert delta). `group_vars: None` is the flat profile shape;
    /// `Some(vars)` the grouped one.
    ///
    /// Returns `Ok(None)` when the query has no incremental plan — no
    /// variables (reference-executor territory) or a cyclic join (WCOJ
    /// territory) — in which case the caller falls back to a full re-run.
    pub fn new(
        schema: &Schema,
        instance: &Instance,
        query: &Query,
        group_vars: Option<&[Var]>,
    ) -> Result<Option<Self>, EngineError> {
        let q = complete_query(schema, query)?;
        let nvars = q.num_vars();
        if let Some(gv) = group_vars {
            for &v in gv {
                if (v as usize) >= nvars {
                    return Err(EngineError::MalformedQuery(format!(
                        "group-by variable {v} not bound by the join"
                    )));
                }
            }
        }
        if nvars == 0 || !join_is_acyclic(&q.atoms) {
            return Ok(None);
        }
        let private_vars = private_key_vars(schema, &q)?;
        let needed_vars = needed_value_vars(&q);

        let mut names: Vec<String> = Vec::new();
        let mut tables: Vec<DeltaTable> = Vec::new();
        let mut atom_table = Vec::with_capacity(q.atoms.len());
        for atom in &q.atoms {
            let rel = schema.relation(&atom.relation)?;
            let idx = match names.iter().position(|n| n == &atom.relation) {
                Some(i) => i,
                None => {
                    names.push(atom.relation.clone());
                    tables.push(DeltaTable::new(rel.arity()));
                    names.len() - 1
                }
            };
            atom_table.push(idx);
        }

        let mut view = IncrementalView {
            order: (0..q.atoms.len()).collect(),
            q,
            nvars,
            interner: Interner::new(),
            tables,
            names,
            atom_table,
            private_vars,
            needed_vars,
            group_vars: group_vars.map(|gv| gv.to_vec()),
            records: Vec::new(),
            indexes: HashMap::new(),
        };
        // The initial build is the first delta: every row of every relation
        // is an insert over empty tables, so construction exercises exactly
        // the code path later applies do.
        let inserts: Vec<(usize, Vec<Tuple>)> = view
            .names
            .iter()
            .enumerate()
            .map(|(t, name)| (t, instance.rows(name).to_vec()))
            .collect();
        view.step(Vec::new(), inserts)?;
        Ok(Some(view))
    }

    /// Relations whose mutations this view must see (sorted).
    pub fn relations(&self) -> Vec<String> {
        let mut names = self.names.clone();
        names.sort_unstable();
        names
    }

    /// Number of surviving join bindings currently held.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// `(weight, raw private keys)` of every surviving join binding, in the
    /// current stored order. Keys are the view's stable packed
    /// `(private relation idx, value id)` identifiers — unlike the dense ids
    /// a [`Self::profile`] replay assigns, they never renumber across
    /// applies, which is what lets a caller maintain per-private-tuple
    /// aggregates against [`ProfileChanges`] without replaying.
    pub fn raw_lines(&self) -> impl Iterator<Item = (f64, &[u64])> + '_ {
        self.records.iter().map(|r| (r.weight, &*r.refs))
    }

    /// Applies one resolved write's deltas. Deltas for relations the view
    /// does not join over are ignored; `delete_ranks` are interpreted
    /// against the instance state the view currently reflects, so the caller
    /// must apply every write exactly once and in order.
    pub fn apply(&mut self, deltas: &[ResolvedDelta]) -> Result<(), EngineError> {
        self.apply_reporting(deltas).map(|_| ())
    }

    /// [`Self::apply`], additionally reporting exactly which result lines
    /// the step removed and added (or that it rebuilt wholesale). The report
    /// is what the serving layer feeds its closed-form branch patcher, so a
    /// small write revalidates a prepared query in `O(delta)` instead of
    /// `O(results)`.
    pub fn apply_reporting(
        &mut self,
        deltas: &[ResolvedDelta],
    ) -> Result<ProfileChanges, EngineError> {
        let mut dels: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut ins: Vec<(usize, Vec<Tuple>)> = Vec::new();
        for d in deltas {
            let Some(t) = self.names.iter().position(|n| n == d.relation()) else { continue };
            for row in d.inserts() {
                if row.len() != self.tables[t].arity {
                    return Err(EngineError::ArityMismatch {
                        relation: d.relation().to_string(),
                        expected: self.tables[t].arity,
                        got: row.len(),
                    });
                }
            }
            let live = &self.tables[t].live_ids;
            let mut ids = Vec::with_capacity(d.delete_ranks().len());
            for &rank in d.delete_ranks() {
                let Some(&id) = live.get(rank) else {
                    return Err(EngineError::MalformedQuery(format!(
                        "delete rank {rank} out of range for {} ({} live rows): the write \
                         was resolved against a different instance state",
                        d.relation(),
                        live.len()
                    )));
                };
                ids.push(id);
            }
            if !ids.is_empty() {
                dels.push((t, ids));
            }
            if !d.inserts().is_empty() {
                ins.push((t, d.inserts().to_vec()));
            }
        }
        self.step(dels, ins)
    }

    /// One maintenance step: tombstone deletes, drop records touching them,
    /// ingest inserts, then re-derive exactly the bindings that use a new
    /// row (or everything, when the greedy order shifted).
    fn step(
        &mut self,
        dels: Vec<(usize, Vec<u32>)>,
        ins: Vec<(usize, Vec<Tuple>)>,
    ) -> Result<ProfileChanges, EngineError> {
        let mut changes = ProfileChanges::default();
        // Drop every record whose trail touches a deleted row.
        if !dels.is_empty() {
            let mut del_sets: Vec<Option<HashSet<u32>>> = vec![None; self.tables.len()];
            for (t, ids) in &dels {
                del_sets[*t] = Some(ids.iter().copied().collect());
            }
            let trail_tables: Vec<usize> =
                self.order.iter().map(|&ai| self.atom_table[ai]).collect();
            self.records.retain(|r| {
                let dead = r
                    .trail
                    .iter()
                    .zip(&trail_tables)
                    .any(|(&id, &t)| del_sets[t].as_ref().is_some_and(|s| s.contains(&id)));
                if dead {
                    changes.removed.push((r.weight, r.refs.clone()));
                }
                !dead
            });
            // Tombstone and unindex the deleted rows.
            for (t, ids) in &dels {
                for ((it, cols), idx) in self.indexes.iter_mut() {
                    if it == t {
                        for &id in ids {
                            idx.remove(&self.tables[*t], cols, id);
                        }
                    }
                }
                let table = &mut self.tables[*t];
                let del: HashSet<u32> = ids.iter().copied().collect();
                for &id in ids {
                    table.live[id as usize] = false;
                }
                table.live_ids.retain(|id| !del.contains(id));
            }
        }

        // Ingest inserts append-only; per-table thresholds split old from new.
        let thresholds: Vec<u32> = self.tables.iter().map(DeltaTable::next_id).collect();
        let mut delta_ids: Vec<Vec<u32>> = vec![Vec::new(); self.tables.len()];
        for (t, rows) in &ins {
            for row in rows {
                let table = &mut self.tables[*t];
                let id = table.next_id();
                for (c, v) in row.iter().enumerate() {
                    let vid = self.interner.intern(v);
                    table.cols[c].push(vid);
                }
                table.live.push(true);
                table.live_ids.push(id);
                delta_ids[*t].push(id);
            }
            for ((it, cols), idx) in self.indexes.iter_mut() {
                if it == t {
                    for &id in &delta_ids[*t] {
                        idx.insert(&self.tables[*t], cols, id);
                    }
                }
            }
        }

        // Re-plan: a shifted greedy order invalidates stored trails, so the
        // view re-enumerates from scratch (all live rows as one delta over
        // empty base). Size drifts large enough to flip the order are rare
        // under small deltas, and a rebuild is never wrong — only slower.
        let sizes: Vec<usize> =
            self.atom_table.iter().map(|&t| self.tables[t].live_ids.len()).collect();
        if self.tables.iter().any(|t| t.live_ids.is_empty()) {
            // Some joined relation is empty: no bindings survive at all, and
            // greedy_order over a zero size is still fine to keep current.
            // Report a rebuild unless nothing was stored anyway — listing
            // every dropped line would cost O(records) for no consumer.
            if !self.records.is_empty() || !changes.removed.is_empty() {
                changes = ProfileChanges { rebuilt: true, ..Default::default() };
            }
            self.records.clear();
            return Ok(changes);
        }
        let new_order = greedy_order(&self.q, &sizes, self.nvars);
        if new_order != self.order {
            self.order = new_order;
            self.records.clear();
            let all: Vec<Vec<u32>> = self.tables.iter().map(|t| t.live_ids.clone()).collect();
            let rebuilt = self.enumerate(&all, &vec![0; self.tables.len()])?;
            self.records = rebuilt;
            changes = ProfileChanges { rebuilt: true, ..Default::default() };
        } else {
            let fresh = self.enumerate(&delta_ids, &thresholds)?;
            changes.added.extend(fresh.iter().map(|r| (r.weight, r.refs.clone())));
            self.records.extend(fresh);
        }
        // Trails are unique per binding, so this total order is exactly the
        // executor's emission order on the rebuilt instance.
        self.records.sort_by(|a, b| a.trail.cmp(&b.trail));
        r2t_obs::counter_add("delta.steps", 1);
        r2t_obs::gauge_max("delta.records", self.records.len() as u64);
        Ok(changes)
    }

    /// Runs one delta pass per pipeline position `i` with a non-empty delta:
    /// the pass enumerates every binding whose *highest* pipeline position
    /// using a new row is `i` (position `i` seeds from the delta, earlier
    /// positions probe old∪new, later positions old only). The union over
    /// passes is disjoint and covers exactly the new bindings.
    fn enumerate(
        &mut self,
        delta_ids: &[Vec<u32>],
        thresholds: &[u32],
    ) -> Result<Vec<EmitRecord>, EngineError> {
        let k = self.order.len();
        let mut out: Vec<EmitRecord> = Vec::new();
        for i in 0..k {
            let seed_table = self.atom_table[self.order[i]];
            if delta_ids[seed_table].is_empty() {
                continue;
            }
            // A pass is empty if any later stage has no old rows (initial
            // builds and rebuilds hit this for every i but the last).
            let dead = (i + 1..k).any(|j| {
                let t = self.atom_table[self.order[j]];
                self.tables[t].old_count(thresholds[t]) == 0
            });
            if dead {
                continue;
            }
            let stages = self.pass_stages(i);
            for s in stages.iter().skip(1) {
                if !s.key_cols.is_empty() {
                    let key = (s.table, s.key_cols.clone().into_boxed_slice());
                    self.indexes
                        .entry(key)
                        .or_insert_with(|| DeltaIndex::build(&self.tables[s.table], &s.key_cols));
                }
            }
            self.run_pass(&stages, &delta_ids[seed_table], thresholds, &mut out)?;
        }
        Ok(out)
    }

    /// Enumeration order for the pass seeded at pipeline position `i`:
    /// start at the delta stage, then greedily take the stage sharing the
    /// most bound variables (ties towards smaller tables, then later
    /// pipeline positions) so probes stay connected wherever the join is.
    fn pass_stages(&self, i: usize) -> Vec<StageDesc> {
        let k = self.order.len();
        let mut bound = vec![false; self.nvars];
        let mut picked = vec![false; k];
        let mut seq: Vec<usize> = Vec::with_capacity(k);
        picked[i] = true;
        seq.push(i);
        for &v in &self.q.atoms[self.order[i]].vars {
            bound[v as usize] = true;
        }
        while seq.len() < k {
            let next = (0..k)
                .filter(|&s| !picked[s])
                .max_by_key(|&s| {
                    let atom = &self.q.atoms[self.order[s]];
                    let shared = atom.vars.iter().filter(|&&v| bound[v as usize]).count();
                    let size = self.tables[self.atom_table[self.order[s]]].live_ids.len();
                    (shared, std::cmp::Reverse(size), s)
                })
                .expect("unpicked stage exists");
            picked[next] = true;
            for &v in &self.q.atoms[self.order[next]].vars {
                bound[v as usize] = true;
            }
            seq.push(next);
        }

        // Bind/check roles and probe keys follow the enumeration prefix.
        let mut bound = vec![false; self.nvars];
        let mut stages = Vec::with_capacity(k);
        for (d, &s) in seq.iter().enumerate() {
            let atom = &self.q.atoms[self.order[s]];
            let mut binds = Vec::with_capacity(atom.vars.len());
            let mut key_pairs: Vec<(usize, Var)> = Vec::new();
            let mut seen_here: Vec<Var> = Vec::new();
            for (col, &v) in atom.vars.iter().enumerate() {
                let already = bound[v as usize] || seen_here.contains(&v);
                binds.push((col, v, !already));
                if d > 0 && bound[v as usize] && !seen_here.contains(&v) {
                    key_pairs.push((col, v));
                }
                seen_here.push(v);
            }
            key_pairs.sort_unstable_by_key(|&(c, _)| c);
            for &v in &atom.vars {
                bound[v as usize] = true;
            }
            stages.push(StageDesc {
                pos: s,
                table: self.atom_table[self.order[s]],
                binds,
                key_cols: key_pairs.iter().map(|&(c, _)| c).collect(),
                key_vars: key_pairs.iter().map(|&(_, v)| v).collect(),
                old_only: s > i,
            });
        }
        stages
    }

    /// Depth-first enumeration of one pass over the prepared stages.
    fn run_pass(
        &self,
        stages: &[StageDesc],
        seed: &[u32],
        thresholds: &[u32],
        out: &mut Vec<EmitRecord>,
    ) -> Result<(), EngineError> {
        let mut nb: Vec<u32> = vec![crate::interner::UNBOUND; self.nvars];
        let mut trail: Vec<u32> = vec![0; stages.len()];
        let mut scratch: Vec<Value> = vec![Value::Int(i64::MIN); self.nvars];
        let mut keybuf: Vec<u32> = Vec::new();
        self.dfs(stages, 0, seed, thresholds, &mut nb, &mut trail, &mut scratch, &mut keybuf, out)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        stages: &[StageDesc],
        depth: usize,
        seed: &[u32],
        thresholds: &[u32],
        nb: &mut Vec<u32>,
        trail: &mut Vec<u32>,
        scratch: &mut Vec<Value>,
        keybuf: &mut Vec<u32>,
        out: &mut Vec<EmitRecord>,
    ) -> Result<(), EngineError> {
        if depth == stages.len() {
            self.emit(nb, trail, scratch, out)?;
            return Ok(());
        }
        let stage = &stages[depth];
        let table = &self.tables[stage.table];
        let candidates: &[u32] = if depth == 0 {
            seed
        } else if stage.key_cols.is_empty() {
            &table.live_ids
        } else {
            let idx = self
                .indexes
                .get(&(stage.table, stage.key_cols.clone().into_boxed_slice()))
                .expect("pass indexes are pre-built");
            idx.candidates(&stage.key_vars, nb, keybuf).unwrap_or(&[])
        };
        let candidates = if stage.old_only {
            &candidates[..candidates.partition_point(|&id| id < thresholds[stage.table])]
        } else {
            candidates
        };
        'rows: for &id in candidates {
            for &(col, v, sets) in &stage.binds {
                let vid = table.cols[col][id as usize];
                if sets {
                    nb[v as usize] = vid;
                } else if nb[v as usize] != vid {
                    // Unwind the vars this row already set before moving on.
                    for &(c2, v2, s2) in stage.binds.iter() {
                        if s2 && c2 < col {
                            nb[v2 as usize] = crate::interner::UNBOUND;
                        }
                    }
                    continue 'rows;
                }
            }
            trail[stage.pos] = id;
            self.dfs(stages, depth + 1, seed, thresholds, nb, trail, scratch, keybuf, out)?;
            for &(_, v, sets) in &stage.binds {
                if sets {
                    nb[v as usize] = crate::interner::UNBOUND;
                }
            }
        }
        Ok(())
    }

    /// Emits one complete binding, mirroring the executor's final-stage
    /// emission exactly: resolve needed values, predicate, weight, packed
    /// private refs, projection and group keys.
    fn emit(
        &self,
        nb: &[u32],
        trail: &[u32],
        scratch: &mut [Value],
        out: &mut Vec<EmitRecord>,
    ) -> Result<(), EngineError> {
        for &v in &self.needed_vars {
            scratch[v as usize] = self.interner.resolve(nb[v as usize]).clone();
        }
        if !self.q.predicate.eval(scratch) {
            return Ok(());
        }
        let w = self.q.aggregate.weight(scratch);
        if w == 0.0 {
            return Ok(());
        }
        let refs: Box<[u64]> = self
            .private_vars
            .iter()
            .map(|&(pidx, var)| pack_private_key(pidx, nb[var as usize]))
            .collect();
        let pkey =
            self.q.projection.as_ref().map(|proj| proj.iter().map(|&v| nb[v as usize]).collect());
        let gkey = self.group_vars.as_ref().map(|gv| gv.iter().map(|&v| nb[v as usize]).collect());
        out.push(EmitRecord { trail: trail.into(), weight: w, refs, pkey, gkey });
        Ok(())
    }

    /// Replays the flat profile: records in trail order through a fresh
    /// [`IdProfileBuilder`] — the executor's own emission target — so the
    /// result is bit-identical to `exec::profile` on the rebuilt instance.
    pub fn profile(&self) -> Result<QueryProfile, EngineError> {
        debug_assert!(self.group_vars.is_none(), "grouped view replayed flat");
        let mut b = IdProfileBuilder::new();
        for r in &self.records {
            match &r.pkey {
                None => {
                    b.add_result(r.weight, r.refs.iter().copied());
                }
                Some(pkey) => {
                    b.add_projected_result(pkey, r.weight, r.weight, r.refs.iter().copied())?;
                }
            }
        }
        Ok(b.build())
    }

    /// Replays the grouped profiles, mirroring `exec::profile_grouped`:
    /// groups form in first-seen emission order, then resolve to value
    /// tuples and sort canonically.
    pub fn profile_grouped(&self) -> Result<Vec<(Tuple, QueryProfile)>, EngineError> {
        debug_assert!(self.group_vars.is_some(), "flat view replayed grouped");
        let mut acc = GroupedAcc::default();
        for r in &self.records {
            let gkey = r.gkey.as_deref().unwrap_or(&[]);
            let b = acc.builder(gkey);
            match &r.pkey {
                None => {
                    b.add_result(r.weight, r.refs.iter().copied());
                }
                Some(pkey) => {
                    b.add_projected_result(pkey, r.weight, r.weight, r.refs.iter().copied())?;
                }
            }
        }
        Ok(resolve_groups(acc, &self.interner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::query::atom;
    use crate::schema::graph_schema_node_dp;

    fn node(i: i64) -> Tuple {
        vec![Value::Int(i)]
    }
    fn edge(a: i64, b: i64) -> Tuple {
        vec![Value::Int(a), Value::Int(b)]
    }

    fn graph_instance() -> Instance {
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..4).map(node));
        inst.insert_all("Edge", [(0, 1), (1, 2), (2, 3), (0, 2)].map(|(a, b)| edge(a, b)));
        inst
    }

    fn path2_query() -> Query {
        Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
    }

    /// Applies a batch three ways and checks the view replay against a
    /// from-scratch executor run on the rebuilt instance, bit for bit.
    fn check_apply(schema: &Schema, inst: &Instance, q: &Query, batch: WriteBatch) -> Instance {
        let mut view =
            IncrementalView::new(schema, inst, q, None).expect("view").expect("incremental plan");
        let resolved = batch.resolve(schema, inst).expect("resolves");
        let next = resolved.apply_to(inst);
        view.apply(resolved.deltas()).expect("applies");
        let patched = view.profile().expect("replay");
        let rebuilt = exec::profile(schema, &next, q).expect("rebuild");
        assert_eq!(patched, rebuilt, "patched profile must equal from-scratch rebuild");
        next
    }

    #[test]
    fn batch_builder_merges_relations() {
        let mut b = WriteBatch::new();
        b.insert("Edge", edge(7, 8)).delete("Edge", edge(0, 1)).insert("Edge", edge(8, 9));
        assert!(!b.is_empty());
        assert!(b.has_deletes());
        assert!(!b.is_replace());
        let s = graph_schema_node_dp();
        let resolved = b.resolve(&s, &graph_instance()).expect("resolves");
        assert_eq!(resolved.deltas().len(), 1);
        assert_eq!(resolved.deltas()[0].inserts().len(), 2);
        assert_eq!(resolved.deltas()[0].delete_ranks(), &[0]);
        assert_eq!(resolved.touched(), vec!["Edge"]);
    }

    #[test]
    fn resolve_rejects_unknown_relation_and_arity() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let mut b = WriteBatch::new();
        b.insert("Nope", node(1));
        assert!(matches!(
            b.resolve(&s, &inst),
            Err(EngineError::UnknownRelation(r)) if r == "Nope"
        ));
        let mut b = WriteBatch::new();
        b.insert("Edge", node(1));
        assert!(matches!(b.resolve(&s, &inst), Err(EngineError::ArityMismatch { .. })));
    }

    #[test]
    fn resolve_rejects_missing_delete_target() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let mut b = WriteBatch::new();
        b.delete("Edge", edge(9, 9));
        assert!(matches!(
            b.resolve(&s, &inst),
            Err(EngineError::MissingDeleteTarget { relation, .. }) if relation == "Edge"
        ));
        // Duplicate deletes need duplicate rows.
        let mut b = WriteBatch::new();
        b.delete("Edge", edge(0, 1)).delete("Edge", edge(0, 1));
        assert!(matches!(b.resolve(&s, &inst), Err(EngineError::MissingDeleteTarget { .. })));
    }

    #[test]
    fn apply_preserves_survivor_order_and_appends() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let mut b = WriteBatch::new();
        b.delete("Edge", edge(1, 2)).insert("Edge", edge(3, 0));
        let next = b.resolve(&s, &inst).expect("resolves").apply_to(&inst);
        assert_eq!(next.rows("Edge"), &[edge(0, 1), edge(2, 3), edge(0, 2), edge(3, 0)]);
        // Source instance untouched.
        assert_eq!(inst.rows("Edge").len(), 4);
    }

    #[test]
    fn integrity_index_matches_full_validation() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let idx = IntegrityIndex::build(&s, &inst);

        // Insert referencing an existing node: fine.
        let mut ok = WriteBatch::new();
        ok.insert("Edge", edge(3, 1));
        let ok = ok.resolve(&s, &inst).unwrap();
        idx.check(&s, ok.deltas()).expect("valid insert");

        // Insert referencing a missing node: broken FK.
        let mut bad = WriteBatch::new();
        bad.insert("Edge", edge(0, 99));
        let bad = bad.resolve(&s, &inst).unwrap();
        assert!(matches!(idx.check(&s, bad.deltas()), Err(EngineError::BrokenForeignKey { .. })));

        // Duplicate PK insert.
        let mut dup = WriteBatch::new();
        dup.insert("Node", node(0));
        let dup = dup.resolve(&s, &inst).unwrap();
        assert!(matches!(idx.check(&s, dup.deltas()), Err(EngineError::DuplicateKey { .. })));

        // Deleting a still-referenced node: broken FK on delete.
        let mut orphan = WriteBatch::new();
        orphan.delete("Node", node(0));
        let orphan = orphan.resolve(&s, &inst).unwrap();
        assert!(matches!(
            idx.check(&s, orphan.deltas()),
            Err(EngineError::BrokenForeignKey { .. })
        ));

        // Deleting a node together with all its edges: fine.
        let mut cascade = WriteBatch::new();
        cascade.delete("Node", node(3)).delete("Edge", edge(2, 3));
        let cascade = cascade.resolve(&s, &inst).unwrap();
        idx.check(&s, cascade.deltas()).expect("delete with cascading edge deletes");

        // Delete + reinsert of the same key in one batch keeps referencing
        // rows valid.
        let mut swap = WriteBatch::new();
        swap.delete("Node", node(0)).insert("Node", node(0));
        let swap = swap.resolve(&s, &inst).unwrap();
        idx.check(&s, swap.deltas()).expect("reinserted key is not orphaned");
    }

    #[test]
    fn integrity_commit_tracks_state() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let mut idx = IntegrityIndex::build(&s, &inst);
        // Remove edge (2,3), then node 3 becomes deletable.
        let mut b1 = WriteBatch::new();
        b1.delete("Edge", edge(2, 3));
        let b1 = b1.resolve(&s, &inst).unwrap();
        idx.check(&s, b1.deltas()).unwrap();
        idx.commit(&s, b1.deltas());
        let inst2 = b1.apply_to(&inst);

        let mut b2 = WriteBatch::new();
        b2.delete("Node", node(3));
        let b2 = b2.resolve(&s, &inst2).unwrap();
        idx.check(&s, b2.deltas()).expect("no referencing rows remain after commit");
    }

    #[test]
    fn query_relations_include_completion() {
        let s = graph_schema_node_dp();
        let rels = query_relations(&s, &Query::count(vec![atom("Edge", &[0, 1])])).unwrap();
        assert_eq!(rels, vec!["Edge".to_string(), "Node".to_string()]);
    }

    #[test]
    fn initial_build_matches_executor() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let q = path2_query();
        let view = IncrementalView::new(&s, &inst, &q, None).unwrap().expect("plan");
        let p = view.profile().unwrap();
        let direct = exec::profile(&s, &inst, &q).unwrap();
        assert_eq!(p, direct);
        assert_eq!(p.query_result(), 3.0); // paths: 0-1-2, 1-2-3, 0-2-3
    }

    #[test]
    fn insert_delta_matches_rebuild() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let q = path2_query();
        let mut b = WriteBatch::new();
        b.insert("Node", node(4)).insert("Edge", edge(3, 4)).insert("Edge", edge(1, 3));
        check_apply(&s, &inst, &q, b);
    }

    #[test]
    fn delete_delta_matches_rebuild() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let q = path2_query();
        let mut b = WriteBatch::new();
        b.delete("Edge", edge(1, 2));
        check_apply(&s, &inst, &q, b);
    }

    #[test]
    fn mixed_chain_of_applies_matches_rebuild() {
        let s = graph_schema_node_dp();
        let mut inst = graph_instance();
        let q = path2_query();
        let mut b1 = WriteBatch::new();
        b1.insert("Node", node(4)).insert("Edge", edge(2, 4));
        inst = check_apply(&s, &inst, &q, b1);
        let mut b2 = WriteBatch::new();
        b2.delete("Edge", edge(0, 2)).insert("Edge", edge(4, 0));
        inst = check_apply(&s, &inst, &q, b2);
        let mut b3 = WriteBatch::new();
        b3.delete("Node", node(3)).delete("Edge", edge(2, 3)).delete("Edge", edge(2, 4));
        b3.delete("Edge", edge(4, 0));
        check_apply(&s, &inst, &q, b3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let q = path2_query();
        check_apply(&s, &inst, &q, WriteBatch::new());
    }

    #[test]
    fn projection_and_sum_replay_identically() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        // SUM(dst) over Edge, projected on src: exercises pkey + weights.
        let q = Query::count(vec![atom("Edge", &[0, 1])])
            .with_sum(crate::query::Expr::Var(1))
            .with_projection(vec![0]);
        let mut b = WriteBatch::new();
        b.insert("Edge", edge(3, 1)).delete("Edge", edge(0, 2));
        check_apply(&s, &inst, &q, b);
    }

    #[test]
    fn grouped_replay_matches_rebuild() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let mut view = IncrementalView::new(&s, &inst, &q, Some(&[0])).unwrap().expect("plan");
        let mut b = WriteBatch::new();
        b.insert("Edge", edge(2, 0)).delete("Edge", edge(0, 1));
        let resolved = b.resolve(&s, &inst).unwrap();
        let next = resolved.apply_to(&inst);
        view.apply(resolved.deltas()).unwrap();
        let patched = view.profile_grouped().unwrap();
        let rebuilt = exec::profile_grouped(&s, &next, &q, &[0]).unwrap();
        assert_eq!(patched, rebuilt);
    }

    #[test]
    fn cyclic_query_has_no_incremental_plan() {
        let s = graph_schema_node_dp();
        let inst = graph_instance();
        // Triangle: cyclic join graph routes to WCOJ, no incremental plan.
        let q =
            Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[2, 0])]);
        assert!(IncrementalView::new(&s, &inst, &q, None).unwrap().is_none());
    }

    #[test]
    fn greedy_order_flip_triggers_rebuild() {
        // Start with Edge smaller than Node, then grow Edge past Node so the
        // greedy order flips; replay must still match a rebuild.
        let s = graph_schema_node_dp();
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..6).map(node));
        inst.insert_all("Edge", [(0, 1), (1, 2)].map(|(a, b)| edge(a, b)));
        let q = path2_query();
        let mut b = WriteBatch::new();
        b.insert_all("Edge", (0..5).flat_map(|a| (0..5).map(move |b| edge(a, b))));
        inst = check_apply(&s, &inst, &q, b);
        assert!(inst.rows("Edge").len() > inst.rows("Node").len());
    }

    #[test]
    fn view_ignores_foreign_relations() {
        let mut s = Schema::new();
        s.add_relation("customer", &["ck"], Some("ck"), &[]).unwrap();
        s.add_relation("orders", &["ok", "ck"], Some("ok"), &[("ck", "customer")]).unwrap();
        s.add_relation("lineitem", &["ok"], None, &[("ok", "orders")]).unwrap();
        s.set_primary_private(&["customer"]).unwrap();
        let mut inst = Instance::new();
        inst.insert_all("customer", (1..=2).map(node));
        inst.insert("orders", vec![Value::Int(10), Value::Int(1)]);
        inst.insert("lineitem", vec![Value::Int(10)]);
        let q = Query::count(vec![atom("orders", &[0, 1])]);
        let mut view = IncrementalView::new(&s, &inst, &q, None).unwrap().expect("plan");
        assert_eq!(view.relations(), vec!["customer".to_string(), "orders".to_string()]);
        // A lineitem-only write leaves the view untouched.
        let mut b = WriteBatch::new();
        b.insert("lineitem", vec![Value::Int(10)]);
        let resolved = b.resolve(&s, &inst).unwrap();
        let before = view.num_records();
        view.apply(resolved.deltas()).unwrap();
        assert_eq!(view.num_records(), before);
    }
}
