//! Database instances: physical relation contents, PK indexes, referential
//! integrity, and down-neighbour construction.

use crate::schema::Schema;
use crate::value::{Tuple, Value};
use crate::EngineError;
use std::collections::{HashMap, HashSet};

/// A database instance over some [`Schema`].
#[derive(Debug, Clone, Default)]
pub struct Instance {
    tables: HashMap<String, Vec<Tuple>>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Inserts a tuple into `relation` with no validation at all — the
    /// relation is created on the fly if absent. [`Instance::validate`]
    /// rejects tables a schema does not know, so stray names surface there
    /// (and immediately in any schema-checked write path); for an insert
    /// that errors eagerly use [`Instance::try_insert`] or stage a
    /// [`crate::delta::WriteBatch`].
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        self.tables.entry(relation.to_string()).or_default().push(tuple);
    }

    /// Bulk-inserts tuples (unvalidated, like [`Instance::insert`]).
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(&mut self, relation: &str, tuples: I) {
        self.tables.entry(relation.to_string()).or_default().extend(tuples);
    }

    /// Inserts a tuple after checking `relation` exists in `schema` and the
    /// tuple has the right arity, instead of silently creating an unknown
    /// table the way [`Instance::insert`] does.
    pub fn try_insert(
        &mut self,
        schema: &Schema,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(), EngineError> {
        let rel = schema.relation(relation)?;
        if tuple.len() != rel.arity() {
            return Err(EngineError::ArityMismatch {
                relation: relation.to_string(),
                expected: rel.arity(),
                got: tuple.len(),
            });
        }
        self.insert(relation, tuple);
        Ok(())
    }

    /// Mutable access to a relation's row vector (created if absent), for
    /// the delta-application machinery.
    pub(crate) fn table_mut(&mut self, relation: &str) -> &mut Vec<Tuple> {
        self.tables.entry(relation.to_string()).or_default()
    }

    /// The rows of `relation` (empty slice if absent).
    pub fn rows(&self, relation: &str) -> &[Tuple] {
        self.tables.get(relation).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|v| v.len()).sum()
    }

    /// Interns `relation`'s rows into a column-major id table (the columnar
    /// executor's working representation; see [`crate::interner`]). Sharing
    /// one interner across the relations of a query keeps ids comparable
    /// across join columns.
    pub fn columnar(
        &self,
        relation: &str,
        interner: &mut crate::interner::Interner,
    ) -> crate::interner::ColumnarTable {
        crate::interner::ColumnarTable::from_rows(self.rows(relation), interner)
    }

    /// Validates against a schema: every table is a schema relation, plus
    /// arities, PK uniqueness, and FK integrity.
    pub fn validate(&self, schema: &Schema) -> Result<(), EngineError> {
        schema.validate()?;
        // Tables the schema does not know: typically the silent fallout of
        // an unchecked `insert` with a misspelt relation name.
        for name in self.tables.keys() {
            schema.relation(name)?;
        }
        // PK indexes for FK checking.
        let mut pk_index: HashMap<&str, HashSet<&Value>> = HashMap::new();
        for rel in schema.relations() {
            let rows = self.rows(&rel.name);
            for t in rows {
                if t.len() != rel.arity() {
                    return Err(EngineError::ArityMismatch {
                        relation: rel.name.clone(),
                        expected: rel.arity(),
                        got: t.len(),
                    });
                }
            }
            if let Some(pk) = rel.primary_key {
                let set = pk_index.entry(rel.name.as_str()).or_default();
                for t in rows {
                    if !set.insert(&t[pk]) {
                        return Err(EngineError::DuplicateKey {
                            relation: rel.name.clone(),
                            value: t[pk].to_string(),
                        });
                    }
                }
            }
        }
        for rel in schema.relations() {
            for fk in &rel.foreign_keys {
                let target_keys = pk_index.get(fk.references.as_str());
                for t in self.rows(&rel.name) {
                    let v = &t[fk.column];
                    if !target_keys.is_some_and(|s| s.contains(v)) {
                        return Err(EngineError::BrokenForeignKey {
                            relation: rel.name.clone(),
                            column: rel.columns[fk.column].clone(),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the *down-neighbour* obtained by deleting the tuple of
    /// `private_rel` whose primary key equals `key`, together with every
    /// tuple that directly or transitively references it (Section 3.2).
    ///
    /// Deletion cascades along reversed FK edges: a tuple references `t_P`
    /// if one of its FKs points at a referencing tuple (or at `t_P` itself).
    pub fn down_neighbor(
        &self,
        schema: &Schema,
        private_rel: &str,
        key: &Value,
    ) -> Result<Instance, EngineError> {
        let rel = schema.relation(private_rel)?;
        let pk = rel.primary_key.ok_or_else(|| {
            EngineError::MalformedQuery(format!("{private_rel} has no primary key"))
        })?;
        // deleted[rel_name] = set of PK values deleted from that relation.
        let mut deleted: HashMap<String, HashSet<Value>> = HashMap::new();
        deleted.entry(private_rel.to_string()).or_default().insert(key.clone());
        let _ = pk;

        // Propagate deletions until a fixpoint: a tuple is deleted if any of
        // its FKs points to a deleted key of the referenced relation.
        // Keyless relations can still have their tuples deleted; they simply
        // cannot be referenced further (no PK), so we track their deleted
        // *row indices* separately when filtering below. To keep propagation
        // simple we iterate relation passes until nothing changes.
        let mut removed_rows: HashMap<String, HashSet<usize>> = HashMap::new();
        loop {
            let mut changed = false;
            for rel in schema.relations() {
                let rows = self.rows(&rel.name);
                for (idx, t) in rows.iter().enumerate() {
                    if removed_rows.get(rel.name.as_str()).is_some_and(|s| s.contains(&idx)) {
                        continue;
                    }
                    let mut hit = false;
                    for fk in &rel.foreign_keys {
                        if deleted
                            .get(fk.references.as_str())
                            .is_some_and(|s| s.contains(&t[fk.column]))
                        {
                            hit = true;
                            break;
                        }
                    }
                    if hit {
                        removed_rows.entry(rel.name.clone()).or_default().insert(idx);
                        if let Some(pk) = rel.primary_key {
                            deleted.entry(rel.name.clone()).or_default().insert(t[pk].clone());
                        }
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut out = Instance::new();
        for rel in schema.relations() {
            let removed = removed_rows.get(rel.name.as_str());
            let del_keys = deleted.get(rel.name.as_str());
            let rows: Vec<Tuple> = self
                .rows(&rel.name)
                .iter()
                .enumerate()
                .filter(|(idx, t)| {
                    if removed.is_some_and(|s| s.contains(idx)) {
                        return false;
                    }
                    if let (Some(pk), Some(dk)) = (rel.primary_key, del_keys) {
                        if dk.contains(&t[pk]) {
                            return false;
                        }
                    }
                    true
                })
                .map(|(_, t)| t.clone())
                .collect();
            if !rows.is_empty() {
                out.insert_all(&rel.name, rows);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::graph_schema_node_dp;

    fn node(i: i64) -> Tuple {
        vec![Value::Int(i)]
    }
    fn edge(a: i64, b: i64) -> Tuple {
        vec![Value::Int(a), Value::Int(b)]
    }

    fn triangle_instance() -> Instance {
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..3).map(node));
        inst.insert_all(
            "Edge",
            [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)].map(|(a, b)| edge(a, b)),
        );
        inst
    }

    #[test]
    fn valid_instance_passes() {
        let s = graph_schema_node_dp();
        triangle_instance().validate(&s).unwrap();
    }

    #[test]
    fn broken_fk_detected() {
        let s = graph_schema_node_dp();
        let mut inst = triangle_instance();
        inst.insert("Edge", edge(0, 99));
        assert!(matches!(inst.validate(&s), Err(EngineError::BrokenForeignKey { .. })));
    }

    #[test]
    fn duplicate_pk_detected() {
        let s = graph_schema_node_dp();
        let mut inst = triangle_instance();
        inst.insert("Node", node(0));
        assert!(matches!(inst.validate(&s), Err(EngineError::DuplicateKey { .. })));
    }

    #[test]
    fn unknown_table_detected() {
        let s = graph_schema_node_dp();
        let mut inst = triangle_instance();
        inst.insert("Nodes", node(9)); // typo: silently created...
        assert!(matches!(
            inst.validate(&s), // ...but caught here.
            Err(EngineError::UnknownRelation(r)) if r == "Nodes"
        ));
    }

    #[test]
    fn try_insert_checks_schema() {
        let s = graph_schema_node_dp();
        let mut inst = triangle_instance();
        assert!(matches!(
            inst.try_insert(&s, "Nodes", node(9)),
            Err(EngineError::UnknownRelation(r)) if r == "Nodes"
        ));
        assert!(matches!(
            inst.try_insert(&s, "Node", edge(1, 2)),
            Err(EngineError::ArityMismatch { .. })
        ));
        inst.try_insert(&s, "Node", node(9)).unwrap();
        assert_eq!(inst.rows("Node").len(), 4);
    }

    #[test]
    fn arity_mismatch_detected() {
        let s = graph_schema_node_dp();
        let mut inst = triangle_instance();
        inst.insert("Node", edge(7, 8));
        assert!(matches!(inst.validate(&s), Err(EngineError::ArityMismatch { .. })));
    }

    #[test]
    fn down_neighbor_removes_node_and_edges() {
        let s = graph_schema_node_dp();
        let inst = triangle_instance();
        let nb = inst.down_neighbor(&s, "Node", &Value::Int(0)).unwrap();
        assert_eq!(nb.rows("Node").len(), 2);
        // Edges incident to node 0 are gone: (0,1),(1,0),(0,2),(2,0).
        assert_eq!(nb.rows("Edge").len(), 2);
        nb.validate(&s).unwrap();
    }

    #[test]
    fn down_neighbor_cascades_transitively() {
        // customer -> orders -> lineitem chain.
        let mut s = Schema::new();
        s.add_relation("customer", &["ck"], Some("ck"), &[]).unwrap();
        s.add_relation("orders", &["ok", "ck"], Some("ok"), &[("ck", "customer")]).unwrap();
        s.add_relation("lineitem", &["ok"], None, &[("ok", "orders")]).unwrap();
        s.set_primary_private(&["customer"]).unwrap();
        let mut inst = Instance::new();
        inst.insert("customer", vec![Value::Int(1)]);
        inst.insert("customer", vec![Value::Int(2)]);
        inst.insert("orders", vec![Value::Int(10), Value::Int(1)]);
        inst.insert("orders", vec![Value::Int(20), Value::Int(2)]);
        inst.insert("lineitem", vec![Value::Int(10)]);
        inst.insert("lineitem", vec![Value::Int(10)]);
        inst.insert("lineitem", vec![Value::Int(20)]);
        inst.validate(&s).unwrap();
        let nb = inst.down_neighbor(&s, "customer", &Value::Int(1)).unwrap();
        assert_eq!(nb.rows("customer").len(), 1);
        assert_eq!(nb.rows("orders").len(), 1);
        assert_eq!(nb.rows("lineitem").len(), 1);
        nb.validate(&s).unwrap();
    }

    use crate::schema::Schema;
}
