//! Query completion (Section 3.2).
//!
//! A query is *incomplete* if some atom has a foreign-key column whose
//! referenced relation does not appear in the query joined on that variable.
//! Completion iteratively adds the referenced relation with the FK variable
//! in its primary-key position and fresh variables elsewhere, until every FK
//! variable is "grounded". E.g. the length-3-path query over
//! `Edge(A,B) ⋈ Edge(B,C) ⋈ Edge(C,D)` gains `Node(A), Node(B), Node(C),
//! Node(D)` under node-DP.

use crate::query::{Atom, Query, Var};
use crate::schema::Schema;
use crate::EngineError;

/// Completes `query` against `schema`, returning a query whose every FK
/// variable is joined with the referenced relation's primary key.
pub fn complete_query(schema: &Schema, query: &Query) -> Result<Query, EngineError> {
    let mut q = query.clone();
    let mut next_var = q.num_vars() as Var;
    loop {
        let mut to_add: Vec<Atom> = Vec::new();
        for atom in &q.atoms {
            let rel = schema.relation(&atom.relation)?;
            if atom.vars.len() != rel.arity() {
                return Err(EngineError::ArityMismatch {
                    relation: rel.name.clone(),
                    expected: rel.arity(),
                    got: atom.vars.len(),
                });
            }
            for fk in &rel.foreign_keys {
                let fk_var = atom.vars[fk.column];
                let target = schema.relation(&fk.references)?;
                let pk = target.primary_key.expect("validated: FK target has a PK");
                let grounded = q
                    .atoms
                    .iter()
                    .chain(to_add.iter())
                    .any(|a| a.relation == fk.references && a.vars[pk] == fk_var);
                if !grounded {
                    let mut vars = Vec::with_capacity(target.arity());
                    for col in 0..target.arity() {
                        if col == pk {
                            vars.push(fk_var);
                        } else {
                            vars.push(next_var);
                            next_var += 1;
                        }
                    }
                    to_add.push(Atom { relation: fk.references.clone(), vars });
                }
            }
        }
        if to_add.is_empty() {
            return Ok(q);
        }
        q.atoms.extend(to_add);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::atom;
    use crate::schema::graph_schema_node_dp;
    use crate::schema::Schema;

    #[test]
    fn edge_query_gains_node_atoms() {
        let s = graph_schema_node_dp();
        let q = Query::count(vec![atom("Edge", &[0, 1])]);
        let c = complete_query(&s, &q).unwrap();
        assert_eq!(c.atoms.len(), 3);
        assert!(c.atoms.iter().any(|a| a.relation == "Node" && a.vars == vec![0]));
        assert!(c.atoms.iter().any(|a| a.relation == "Node" && a.vars == vec![1]));
    }

    #[test]
    fn already_complete_query_unchanged() {
        let s = graph_schema_node_dp();
        let q = Query::count(vec![atom("Node", &[0]), atom("Node", &[1]), atom("Edge", &[0, 1])]);
        let c = complete_query(&s, &q).unwrap();
        assert_eq!(c.atoms.len(), 3);
    }

    #[test]
    fn shared_variables_grounded_once() {
        let s = graph_schema_node_dp();
        // Length-2 path: B appears in two atoms but Node(B) is added once.
        let q = Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])]);
        let c = complete_query(&s, &q).unwrap();
        let nodes: Vec<_> = c.atoms.iter().filter(|a| a.relation == "Node").collect();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn transitive_completion() {
        // lineitem -> orders -> customer: completing a lineitem-only query
        // pulls in both ancestors.
        let mut s = Schema::new();
        s.add_relation("customer", &["ck"], Some("ck"), &[]).unwrap();
        s.add_relation("orders", &["ok", "ck"], Some("ok"), &[("ck", "customer")]).unwrap();
        s.add_relation("lineitem", &["ok", "qty"], None, &[("ok", "orders")]).unwrap();
        s.set_primary_private(&["customer"]).unwrap();
        let q = Query::count(vec![atom("lineitem", &[0, 1])]);
        let c = complete_query(&s, &q).unwrap();
        assert_eq!(c.atoms.len(), 3);
        let orders = c.atoms.iter().find(|a| a.relation == "orders").unwrap();
        assert_eq!(orders.vars[0], 0); // joined on OK
        let customer = c.atoms.iter().find(|a| a.relation == "customer").unwrap();
        assert_eq!(customer.vars[0], orders.vars[1]); // joined on the fresh CK
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = graph_schema_node_dp();
        let q = Query::count(vec![atom("Edge", &[0])]);
        assert!(matches!(complete_query(&s, &q), Err(EngineError::ArityMismatch { .. })));
    }
}
