//! Differential property tests for incremental view maintenance.
//!
//! Over random workloads (graph node-DP/edge-DP and FK-chain schemas, with
//! predicates, SUM weights, projections, and group-by) and random chains of
//! insert/delete batches, an [`IncrementalView`] that absorbed every batch
//! must replay a profile **bit-identical** to a from-scratch executor run on
//! the batch-applied instance. Batches include empty ones, deletes of rows
//! that never matched the join, and deletes of duplicated tuples.

use proptest::prelude::*;
use r2t_engine::delta::IncrementalView;
use r2t_engine::exec;
use r2t_engine::{Instance, Schema, Tuple, Value, WriteBatch};
use std::collections::HashMap;

#[allow(dead_code)] // shared with the other differential suites
mod prop_common;
use prop_common::arb_workload;

/// Builds a schema-valid (arity-wise) batch from raw proptest entropy:
/// `dels` pick existing rows to delete (skipping over-claimed duplicates so
/// resolution always succeeds), `ins` chunks become small-domain tuples.
fn make_batch(schema: &Schema, inst: &Instance, dels: &[u16], ins: &[i64]) -> WriteBatch {
    let rels = schema.relations();
    let mut batch = WriteBatch::new();
    let mut remaining: Vec<HashMap<&Tuple, usize>> = rels
        .iter()
        .map(|r| {
            let mut m: HashMap<&Tuple, usize> = HashMap::new();
            for t in inst.rows(&r.name) {
                *m.entry(t).or_insert(0) += 1;
            }
            m
        })
        .collect();
    for (i, &d) in dels.iter().enumerate() {
        let ri = (i + d as usize) % rels.len();
        let rows = inst.rows(&rels[ri].name);
        if rows.is_empty() {
            continue;
        }
        let t = &rows[d as usize % rows.len()];
        let left = remaining[ri].get_mut(t).expect("row counted");
        if *left == 0 {
            continue;
        }
        *left -= 1;
        batch.delete(&rels[ri].name, t.clone());
    }
    for (i, chunk) in ins.chunks(3).enumerate() {
        let rel = &rels[i % rels.len()];
        if chunk.len() < rel.arity() {
            continue;
        }
        let t: Tuple = (0..rel.arity()).map(|c| Value::Int(chunk[c].rem_euclid(8))).collect();
        batch.insert(&rel.name, t);
    }
    batch
}

type Step = (Vec<u16>, Vec<i64>);

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (prop::collection::vec(any::<u16>(), 0..6), prop::collection::vec(0..64i64, 0..12)),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat profiles: after every batch in a random mutation chain, the
    /// patched view replays bit-identically to a from-scratch rebuild.
    #[test]
    fn patched_profile_equals_rebuild((w, steps) in (arb_workload(), arb_steps())) {
        let mut inst = w.inst.clone();
        let mut view = IncrementalView::new(&w.schema, &inst, &w.query, None)
            .expect("acyclic workloads build")
            .expect("acyclic workloads have an incremental plan");
        for (dels, ins) in steps {
            let batch = make_batch(&w.schema, &inst, &dels, &ins);
            let resolved = batch.resolve(&w.schema, &inst).expect("in-range deletes resolve");
            let next = resolved.apply_to(&inst);
            view.apply(resolved.deltas()).expect("delta applies");
            let patched = view.profile().expect("replay");
            let rebuilt = exec::profile(&w.schema, &next, &w.query).expect("rebuild");
            prop_assert_eq!(&patched, &rebuilt);
            inst = next;
        }
    }

    /// Grouped profiles: same bit-identity bar, per group key.
    #[test]
    fn patched_grouped_profile_equals_rebuild((w, steps) in (arb_workload(), arb_steps())) {
        prop_assume!(!w.group_vars.is_empty());
        let mut inst = w.inst.clone();
        let mut view = IncrementalView::new(&w.schema, &inst, &w.query, Some(&w.group_vars))
            .expect("acyclic workloads build")
            .expect("acyclic workloads have an incremental plan");
        for (dels, ins) in steps {
            let batch = make_batch(&w.schema, &inst, &dels, &ins);
            let resolved = batch.resolve(&w.schema, &inst).expect("in-range deletes resolve");
            let next = resolved.apply_to(&inst);
            view.apply(resolved.deltas()).expect("delta applies");
            let patched = view.profile_grouped().expect("replay");
            let rebuilt =
                exec::profile_grouped(&w.schema, &next, &w.query, &w.group_vars).expect("rebuild");
            prop_assert_eq!(&patched, &rebuilt);
            inst = next;
        }
    }

    /// An empty batch leaves both the instance and the replayed profile
    /// untouched — and still round-trips through resolve/apply.
    #[test]
    fn empty_batch_is_identity(w in arb_workload()) {
        let mut view = IncrementalView::new(&w.schema, &w.inst, &w.query, None)
            .expect("builds")
            .expect("plans");
        let before = view.profile().expect("replay");
        let resolved = WriteBatch::new().resolve(&w.schema, &w.inst).expect("resolves");
        prop_assert!(resolved.touched().is_empty());
        let next = resolved.apply_to(&w.inst);
        view.apply(resolved.deltas()).expect("applies");
        prop_assert_eq!(&view.profile().expect("replay"), &before);
        prop_assert_eq!(next.total_tuples(), w.inst.total_tuples());
    }
}
