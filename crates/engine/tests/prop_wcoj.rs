//! Differential property tests for the worst-case-optimal executor:
//! `wcoj == columnar == reference`, bit-for-bit, on random workloads.
//!
//! Coverage deliberately includes shapes the auto-dispatcher would never
//! send to the WCOJ path (acyclic chains, single atoms, Cartesian products)
//! by *forcing* `Strategy::Wcoj`, plus a cyclic family (triangles,
//! rectangles, 4-cliques — with self-joins, projections, GROUP BY, and
//! empty-result instances) that is its actual production diet. Forced
//! parallelism must reproduce the sequential profile exactly. The obs
//! feature states are covered by CI running this suite with and without
//! `--features obs`; telemetry must never perturb any of these equalities.

use proptest::prelude::*;
use r2t_engine::exec::{
    evaluate_bruteforce, profile_grouped_reference, profile_grouped_with_stats, profile_reference,
    profile_with_stats, ExecOptions, Strategy as ExecStrategy,
};
use r2t_engine::query::{atom, join_is_acyclic, CmpOp, Predicate, Query};
use r2t_engine::schema::graph_schema_node_dp;

mod prop_common;
use prop_common::{arb_workload, edge_dp_schema, forced_parallel, graph_instance, Workload};

/// `forced_parallel` with the executor pinned.
fn pinned(workers: usize, strategy: ExecStrategy) -> ExecOptions {
    ExecOptions { strategy, ..forced_parallel(workers) }
}

/// Cyclic graph workloads: triangle, rectangle, or 4-clique atoms over a
/// random node-DP or edge-DP graph, with optional comparison predicate,
/// projection, and group-by. Small node counts make empty results common.
fn arb_cyclic_workload() -> impl proptest::prelude::Strategy<Value = Workload> {
    (
        2..12usize,
        prop::collection::vec((0..64i64, 0..64i64), 0..28),
        any::<bool>(), // edge-DP?
        0..3u8,        // pattern: triangle / rectangle / 4-clique
        0..3u8,        // predicate kind
        0..3u8,        // projection kind
        0..3u8,        // group-by kind
    )
        .prop_map(|(n, pairs, edge_dp, pat, pred, proj, grp)| {
            let schema = if edge_dp { edge_dp_schema() } else { graph_schema_node_dp() };
            let inst = graph_instance(n, pairs, edge_dp);
            let cycles: &[[u32; 2]] = match pat {
                0 => &[[0, 1], [1, 2], [0, 2]],
                1 => &[[0, 1], [1, 2], [2, 3], [3, 0]],
                _ => &[[0, 1], [1, 2], [2, 3], [3, 0], [0, 2], [1, 3]],
            };
            let nnode_vars = if pat == 0 { 3u32 } else { 4u32 };
            let atoms = cycles
                .iter()
                .enumerate()
                .map(|(i, &[s, d])| {
                    if edge_dp {
                        atom("Edge", &[nnode_vars + i as u32, s, d])
                    } else {
                        atom("Edge", &[s, d])
                    }
                })
                .collect();
            let max_var = nnode_vars - 1;
            let mut q = Query::count(atoms);
            q = match pred {
                0 => q.with_predicate(Predicate::cmp_vars(0, CmpOp::Lt, max_var)),
                1 => q.with_predicate(Predicate::cmp_vars(0, CmpOp::Ne, 1)),
                _ => q,
            };
            q = match proj {
                0 => q.with_projection(vec![0]),
                1 => q.with_projection(vec![0, max_var]),
                _ => q,
            };
            let group_vars = match grp {
                0 => vec![0],
                1 => vec![1],
                _ => vec![],
            };
            Workload { schema, inst, query: q, group_vars }
        })
}

/// Cyclic and generic (acyclic, self-join, Cartesian) workloads mixed.
fn arb_any_workload() -> impl proptest::prelude::Strategy<Value = Workload> {
    (any::<bool>(), arb_cyclic_workload(), arb_workload())
        .prop_map(|(pick, cyc, gen)| if pick { cyc } else { gen })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forced WCOJ reproduces the reference profile bit-for-bit on *every*
    /// query shape, sequentially and under forced parallelism.
    #[test]
    fn wcoj_profile_matches_reference(w in arb_any_workload()) {
        let (reference, _) = profile_reference(&w.schema, &w.inst, &w.query).expect("reference");
        let (seq, _) = profile_with_stats(
            &w.schema, &w.inst, &w.query, &pinned(1, ExecStrategy::Wcoj),
        ).expect("wcoj sequential");
        prop_assert_eq!(&seq, &reference);
        let (par, _) = profile_with_stats(
            &w.schema, &w.inst, &w.query, &pinned(3, ExecStrategy::Wcoj),
        ).expect("wcoj parallel");
        prop_assert_eq!(&par, &reference);
    }

    /// All three strategies agree: Auto == pinned-Columnar == pinned-Wcoj.
    #[test]
    fn strategies_agree(w in arb_any_workload()) {
        let auto = profile_with_stats(&w.schema, &w.inst, &w.query, &forced_parallel(2))
            .expect("auto").0;
        let col = profile_with_stats(
            &w.schema, &w.inst, &w.query, &pinned(2, ExecStrategy::Columnar),
        ).expect("columnar").0;
        let wcoj = profile_with_stats(
            &w.schema, &w.inst, &w.query, &pinned(2, ExecStrategy::Wcoj),
        ).expect("wcoj").0;
        prop_assert_eq!(&auto, &col);
        prop_assert_eq!(&auto, &wcoj);
    }

    /// The WCOJ total agrees with the nested-loop oracle on cyclic shapes.
    #[test]
    fn wcoj_result_matches_bruteforce(w in arb_cyclic_workload()) {
        let (p, stats) = profile_with_stats(
            &w.schema, &w.inst, &w.query, &ExecOptions { strategy: ExecStrategy::Wcoj, ..ExecOptions::default() },
        ).expect("profile");
        let brute = evaluate_bruteforce(&w.schema, &w.inst, &w.query).expect("brute");
        prop_assert!((p.query_result() - brute).abs() < 1e-9);
        // Output-proportional buffering: every peak binding is a surviving
        // result record, never an intermediate.
        prop_assert_eq!(stats.peak_bindings, stats.surviving_results);
    }

    /// Grouped WCOJ matches the grouped reference executor, at any worker
    /// count.
    #[test]
    fn grouped_wcoj_matches_reference(w in arb_any_workload()) {
        prop_assume!(!w.group_vars.is_empty());
        let reference = profile_grouped_reference(&w.schema, &w.inst, &w.query, &w.group_vars)
            .expect("reference");
        for workers in [1usize, 3] {
            let (fast, _) = profile_grouped_with_stats(
                &w.schema, &w.inst, &w.query, &w.group_vars,
                &pinned(workers, ExecStrategy::Wcoj),
            ).expect("grouped wcoj");
            prop_assert_eq!(&fast, &reference);
        }
    }

    /// The cyclic family really is cyclic (the dispatcher must route it to
    /// the WCOJ path), and the generic path family classifies consistently
    /// with GYO on the raw atoms.
    #[test]
    fn cyclic_family_classified_cyclic(w in arb_cyclic_workload()) {
        prop_assert!(!join_is_acyclic(&w.query.atoms));
    }
}
