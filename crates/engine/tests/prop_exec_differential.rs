//! Differential property tests for the columnar executor.
//!
//! On random schemas, instances, and queries, the columnar parallel executor
//! must produce *exactly* the same [`QueryProfile`] as (a) the reference
//! row-at-a-time executor and (b) itself under any worker count — including
//! projection and group-by queries — and its query result must agree with
//! the brute-force nested-loop oracle.

use proptest::prelude::*;
use r2t_engine::exec::{
    evaluate_bruteforce, profile_grouped_reference, profile_grouped_with_stats, profile_reference,
    profile_with_stats, ExecOptions,
};

mod prop_common;
use prop_common::{arb_workload, forced_parallel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The columnar executor reproduces the reference profile bit-for-bit,
    /// sequentially and under forced parallelism.
    #[test]
    fn columnar_profile_matches_reference(w in arb_workload()) {
        let (reference, _) = profile_reference(&w.schema, &w.inst, &w.query).expect("reference");
        let (seq, _) = profile_with_stats(&w.schema, &w.inst, &w.query, &forced_parallel(1))
            .expect("sequential");
        prop_assert_eq!(&seq, &reference);
        let (par, _) = profile_with_stats(&w.schema, &w.inst, &w.query, &forced_parallel(3))
            .expect("parallel");
        prop_assert_eq!(&par, &reference);
    }

    /// The profile's total agrees with the nested-loop oracle.
    #[test]
    fn columnar_result_matches_bruteforce(w in arb_workload()) {
        let (p, _) = profile_with_stats(&w.schema, &w.inst, &w.query, &ExecOptions::default())
            .expect("profile");
        let brute = evaluate_bruteforce(&w.schema, &w.inst, &w.query).expect("brute");
        prop_assert!((p.query_result() - brute).abs() < 1e-9);
    }

    /// Group-by evaluation: columnar == reference (keys and profiles), and
    /// forced parallelism changes nothing.
    #[test]
    fn grouped_columnar_matches_reference(w in arb_workload()) {
        prop_assume!(!w.group_vars.is_empty());
        let reference = profile_grouped_reference(&w.schema, &w.inst, &w.query, &w.group_vars)
            .expect("reference");
        for workers in [1usize, 3] {
            let (fast, _) = profile_grouped_with_stats(
                &w.schema, &w.inst, &w.query, &w.group_vars, &forced_parallel(workers),
            ).expect("grouped");
            prop_assert_eq!(&fast, &reference);
        }
    }
}
