//! Differential property tests for the on-disk columnar archive.
//!
//! On random workloads (graph node-DP/edge-DP and FK-chain schemas, with
//! predicates, SUM weights, projections, and group-by), executing over a
//! **memory-mapped archive** of the instance must produce profiles
//! bit-identical to the heap-backed run — flat, grouped, and on the WCOJ
//! path, under worker counts 1 and 3, with partition streaming forced down
//! to tiny blocks, and at both runtime obs levels (`Off` and `Full`;
//! telemetry must never perturb an equality — the compiled-out obs state is
//! covered by CI running this suite without `--features obs`).
//!
//! Corruption coverage: truncating an archive at any point, flipping any
//! byte, or handing `open` a non-archive file must return a clean
//! [`r2t_engine::EngineError`] — never UB, never a panic.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use r2t_engine::exec::{
    profile_grouped_with_stats, profile_grouped_with_stats_src, profile_with_stats,
    profile_with_stats_src, ExecOptions, Source, Strategy as ExecStrategy,
};
use r2t_engine::storage::write_archive;
use r2t_engine::{Archive, Instance, Schema};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

mod prop_common;
use prop_common::{arb_workload, forced_parallel};

/// A unique temp path per case (cases run concurrently in one process).
fn temp_archive() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("r2t_prop_{}_{n}.r2t", std::process::id()))
}

/// Writes `inst` to a fresh archive and reopens it, handing the mapped
/// archive to `f`; the file is removed afterwards even if `f` fails.
fn with_archive<T>(
    schema: &Schema,
    inst: &Instance,
    f: impl FnOnce(&Archive) -> T,
) -> Result<T, TestCaseError> {
    let path = temp_archive();
    write_archive(schema, inst, &path).expect("write archive");
    let archive = Archive::open(schema, &path);
    let out = archive.map(|a| f(&a));
    std::fs::remove_file(&path).expect("remove archive");
    match out {
        Ok(t) => Ok(t),
        Err(e) => Err(TestCaseError::Fail(format!("open archive: {e}"))),
    }
}

/// The option matrix one mmap/heap comparison sweeps: workers 1 and 3, and
/// streaming forced to 2-row partitions (any nontrivial seed splits).
fn option_matrix(strategy: ExecStrategy) -> Vec<ExecOptions> {
    let mut m = Vec::new();
    for workers in [1usize, 3] {
        for stream_block in [None, Some(2)] {
            m.push(ExecOptions { strategy, stream_block, ..forced_parallel(workers) });
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat profiles: mmap-backed == heap-backed for every worker count and
    /// stream block, at runtime obs levels Off and Full.
    #[test]
    fn mmap_flat_matches_heap(w in arb_workload()) {
        for level in [r2t_obs::Level::Off, r2t_obs::Level::Full] {
            r2t_obs::set_level(level);
            for opts in option_matrix(ExecStrategy::Auto) {
                let (heap, _) = profile_with_stats(&w.schema, &w.inst, &w.query, &opts)
                    .expect("heap profile");
                let mapped = with_archive(&w.schema, &w.inst, |a| {
                    profile_with_stats_src(&w.schema, Source::Archive(a), &w.query, &opts)
                        .expect("mapped profile").0
                })?;
                prop_assert_eq!(&mapped, &heap);
            }
        }
    }

    /// Grouped profiles: mmap-backed == heap-backed (keys and per-group
    /// profiles), same matrix.
    #[test]
    fn mmap_grouped_matches_heap(w in arb_workload()) {
        prop_assume!(!w.group_vars.is_empty());
        for opts in option_matrix(ExecStrategy::Auto) {
            let (heap, _) = profile_grouped_with_stats(
                &w.schema, &w.inst, &w.query, &w.group_vars, &opts,
            ).expect("heap grouped");
            let mapped = with_archive(&w.schema, &w.inst, |a| {
                profile_grouped_with_stats_src(
                    &w.schema, Source::Archive(a), &w.query, &w.group_vars, &opts,
                ).expect("mapped grouped").0
            })?;
            prop_assert_eq!(&mapped, &heap);
        }
    }

    /// The WCOJ executor over mapped columns == over heap columns, even on
    /// shapes the auto-dispatcher would route to the columnar pipeline.
    #[test]
    fn mmap_wcoj_matches_heap(w in arb_workload()) {
        for opts in option_matrix(ExecStrategy::Wcoj) {
            let (heap, _) = profile_with_stats(&w.schema, &w.inst, &w.query, &opts)
                .expect("heap wcoj");
            let mapped = with_archive(&w.schema, &w.inst, |a| {
                profile_with_stats_src(&w.schema, Source::Archive(a), &w.query, &opts)
                    .expect("mapped wcoj").0
            })?;
            prop_assert_eq!(&mapped, &heap);
        }
    }

    /// Truncating the file anywhere, or flipping any single byte, makes
    /// `Archive::open` return `Err` — cleanly, whatever the position.
    #[test]
    fn corrupt_archives_fail_cleanly(w in arb_workload(), pos in 0usize..1_000_000, flip in any::<bool>()) {
        let path = temp_archive();
        write_archive(&w.schema, &w.inst, &path).expect("write archive");
        let good = std::fs::read(&path).expect("read archive");
        let bad = if flip {
            let mut b = good.clone();
            let p = pos % b.len();
            b[p] ^= 1 << (pos % 8);
            b
        } else {
            good[..pos % good.len()].to_vec()
        };
        std::fs::write(&path, &bad).expect("rewrite archive");
        let res = Archive::open(&w.schema, &path);
        std::fs::remove_file(&path).expect("remove archive");
        prop_assert!(res.is_err(), "corrupted archive (flip={flip}, pos={pos}) opened cleanly");
    }
}
