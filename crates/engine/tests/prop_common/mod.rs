//! Workload generators shared by the executor differential proptests
//! (`prop_exec_differential.rs`, `prop_wcoj.rs`).

use proptest::prelude::*;
use r2t_engine::exec::ExecOptions;
use r2t_engine::query::{atom, CmpOp, Expr, Predicate, Query, Var};
use r2t_engine::schema::graph_schema_node_dp;
use r2t_engine::{Instance, Schema, Value};

/// A randomly selected workload: schema, instance, and a query valid for it.
#[derive(Debug, Clone)]
pub struct Workload {
    pub schema: Schema,
    pub inst: Instance,
    pub query: Query,
    /// Group-by variables valid for the completed query (may be empty).
    pub group_vars: Vec<Var>,
}

/// Edge-DP graph schema where `Edge(eid, src, dst)` is the primary private
/// relation keyed by an explicit edge id (the paper's edge-DP needs a PK on
/// the private relation for lineage).
pub fn edge_dp_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Node", &["id"], Some("id"), &[]).unwrap();
    s.add_relation("Edge", &["eid", "src", "dst"], Some("eid"), &[]).unwrap();
    s.set_primary_private(&["Edge"]).unwrap();
    s
}

fn chain_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("customer", &["ck", "nation"], Some("ck"), &[]).unwrap();
    s.add_relation("orders", &["ok", "ck"], Some("ok"), &[("ck", "customer")]).unwrap();
    s.add_relation("lineitem", &["ok", "qty"], None, &[("ok", "orders")]).unwrap();
    s.set_primary_private(&["customer"]).unwrap();
    s
}

/// Random graph instance over `n` nodes with undirected edges. With
/// `with_eid` each directed edge row carries a unique edge id (edge-DP).
pub fn graph_instance(n: usize, pairs: Vec<(i64, i64)>, with_eid: bool) -> Instance {
    let mut inst = Instance::new();
    inst.insert_all("Node", (0..n as i64).map(|i| vec![Value::Int(i)]));
    let mut seen = std::collections::HashSet::new();
    let mut eid = 0i64;
    for (a, b) in pairs {
        let (a, b) = (a % n as i64, b % n as i64);
        if a != b && seen.insert((a.min(b), a.max(b))) {
            for (s, d) in [(a, b), (b, a)] {
                let mut row = vec![Value::Int(s), Value::Int(d)];
                if with_eid {
                    row.insert(0, Value::Int(eid));
                    eid += 1;
                }
                inst.insert("Edge", row);
            }
        }
    }
    inst
}

/// Graph workload: node-DP or edge-DP schema, 1–3-atom Edge query with a
/// predicate, optionally a projection, and a valid group-by set. Under
/// edge-DP each atom binds its edge id to a fresh variable.
pub fn arb_graph_workload() -> impl Strategy<Value = Workload> {
    (
        2..10usize,
        prop::collection::vec((0..64i64, 0..64i64), 0..24),
        any::<bool>(), // edge-DP?
        1..=3usize,    // atoms
        0..4u32,       // predicate var a
        0..4u32,       // predicate var b
        0..3u8,        // predicate kind
        0..3u8,        // projection kind
        0..3u8,        // group-by kind
    )
        .prop_map(|(n, pairs, edge_dp, natoms, a, b, pred, proj, grp)| {
            let schema = if edge_dp { edge_dp_schema() } else { graph_schema_node_dp() };
            let inst = graph_instance(n, pairs, edge_dp);
            let path: [[u32; 2]; 3] = [[0, 1], [1, 2], [2, 3]];
            let atoms = (0..natoms)
                .map(|i| {
                    let [s, d] = path[i];
                    if edge_dp {
                        // Fresh eid variable per atom, after the node vars.
                        atom("Edge", &[natoms as u32 + 1 + i as u32, s, d])
                    } else {
                        atom("Edge", &[s, d])
                    }
                })
                .collect();
            let max_var = natoms as u32;
            let (a, b) = (a.min(max_var), b.min(max_var));
            let mut q = Query::count(atoms);
            q = match pred {
                0 => q.with_predicate(Predicate::cmp_vars(a, CmpOp::Lt, b)),
                1 => q.with_predicate(Predicate::cmp_vars(a, CmpOp::Ne, b)),
                _ => q,
            };
            q = match proj {
                0 => q.with_projection(vec![0]),
                1 => q.with_projection(vec![0, max_var]),
                _ => q,
            };
            let group_vars = match grp {
                0 => vec![0],
                1 => vec![max_var, 0],
                _ => vec![],
            };
            Workload { schema, inst, query: q, group_vars }
        })
}

/// FK-chain workload (customer -> orders -> lineitem): SUM or COUNT over the
/// 3-way join, with optional selection on the customer's nation.
pub fn arb_chain_workload() -> impl Strategy<Value = Workload> {
    (
        1..6usize,                                         // customers
        prop::collection::vec(0..6i64, 0..10),             // orders (customer picks)
        prop::collection::vec((0..12i64, 1..5i64), 0..20), // lineitems (order pick, qty)
        any::<bool>(),                                     // sum qty?
        any::<bool>(),                                     // nation filter?
        any::<bool>(),                                     // group by nation?
    )
        .prop_map(|(nc, ords, lis, sum, filter, grp)| {
            let schema = chain_schema();
            let mut inst = Instance::new();
            for c in 0..nc as i64 {
                inst.insert("customer", vec![Value::Int(c), Value::Int(c % 2)]);
            }
            let nords = ords.len();
            for (ok, ck) in ords.into_iter().enumerate() {
                inst.insert("orders", vec![Value::Int(ok as i64), Value::Int(ck % nc as i64)]);
            }
            if nords > 0 {
                for (ok, qty) in lis {
                    inst.insert("lineitem", vec![Value::Int(ok % nords as i64), Value::Int(qty)]);
                }
            }
            // customer(CK, Nation), orders(OK, CK), lineitem(OK, Qty)
            // vars: 0=CK 1=Nation 2=OK 3=Qty
            let mut q = Query::count(vec![
                atom("customer", &[0, 1]),
                atom("orders", &[2, 0]),
                atom("lineitem", &[2, 3]),
            ]);
            if sum {
                q = q.with_sum(Expr::Var(3));
            }
            if filter {
                q = q.with_predicate(Predicate::cmp_const(1, CmpOp::Eq, Value::Int(0)));
            }
            let group_vars = if grp { vec![1] } else { vec![] };
            Workload { schema, inst, query: q, group_vars }
        })
}

/// Either workload family, chosen by an integer selector (the vendored
/// proptest shim has no `prop_oneof!`).
pub fn arb_workload() -> impl Strategy<Value = Workload> {
    (any::<bool>(), arb_graph_workload(), arb_chain_workload())
        .prop_map(|(pick, g, c)| if pick { g } else { c })
}

pub fn forced_parallel(workers: usize) -> ExecOptions {
    ExecOptions { workers: Some(workers), parallel_threshold: 1, ..ExecOptions::default() }
}
