//! Property tests for the engine: the hash-join executor must agree with
//! the brute-force nested-loop oracle on random instances and queries, and
//! query completion must be idempotent.

use proptest::prelude::*;
use r2t_engine::complete::complete_query;
use r2t_engine::exec::{evaluate, evaluate_bruteforce, profile};
use r2t_engine::query::{atom, CmpOp, Predicate, Query};
use r2t_engine::schema::graph_schema_node_dp;
use r2t_engine::{Instance, Value};

/// A random small graph instance (edges stored in both directions).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (2..10usize).prop_flat_map(|n| {
        prop::collection::vec((0..n as i64, 0..n as i64), 0..20).prop_map(move |pairs| {
            let mut inst = Instance::new();
            inst.insert_all("Node", (0..n as i64).map(|i| vec![Value::Int(i)]));
            let mut seen = std::collections::HashSet::new();
            for (a, b) in pairs {
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    inst.insert("Edge", vec![Value::Int(a), Value::Int(b)]);
                    inst.insert("Edge", vec![Value::Int(b), Value::Int(a)]);
                }
            }
            inst
        })
    })
}

/// Random 1–3-atom Edge queries with simple predicates.
fn arb_query() -> impl Strategy<Value = Query> {
    (1..=3usize, 0..3u32, 0..3u32, any::<bool>()).prop_map(|(natoms, a, b, lt)| {
        let atoms = match natoms {
            1 => vec![atom("Edge", &[0, 1])],
            2 => vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])],
            _ => vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2]), atom("Edge", &[2, 3])],
        };
        let max_var = natoms as u32;
        let (a, b) = (a.min(max_var), b.min(max_var));
        let pred = if lt {
            Predicate::cmp_vars(a, CmpOp::Lt, b)
        } else {
            Predicate::cmp_vars(a, CmpOp::Ne, b)
        };
        Query::count(atoms).with_predicate(pred)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_matches_bruteforce(inst in arb_instance(), q in arb_query()) {
        let schema = graph_schema_node_dp();
        let fast = evaluate(&schema, &inst, &q).expect("fast");
        let slow = evaluate_bruteforce(&schema, &inst, &q).expect("slow");
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn completion_is_idempotent(q in arb_query()) {
        let schema = graph_schema_node_dp();
        let once = complete_query(&schema, &q).expect("complete");
        let twice = complete_query(&schema, &once).expect("complete again");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn profile_total_matches_evaluate(inst in arb_instance(), q in arb_query()) {
        let schema = graph_schema_node_dp();
        let p = profile(&schema, &inst, &q).expect("profile");
        let direct = evaluate(&schema, &inst, &q).expect("evaluate");
        prop_assert_eq!(p.query_result(), direct);
        // Lineage sanity: every reference id is within range.
        for r in &p.results {
            for &j in &r.refs {
                prop_assert!((j as usize) < p.num_private);
            }
        }
    }

    #[test]
    fn down_neighbor_only_shrinks(inst in arb_instance(), q in arb_query(), v in 0..10i64) {
        let schema = graph_schema_node_dp();
        prop_assume!(!inst.rows("Node").is_empty());
        let v = v % inst.rows("Node").len() as i64;
        let before = evaluate(&schema, &inst, &q).expect("before");
        let nb = inst.down_neighbor(&schema, "Node", &Value::Int(v)).expect("neighbor");
        nb.validate(&schema).expect("neighbor is consistent");
        let after = evaluate(&schema, &nb, &q).expect("after");
        prop_assert!(after <= before, "removing a node cannot add join results");
    }
}
