//! # r2t-service — the serving layer
//!
//! The end-to-end system of Figure 3 in the paper as a queryable service:
//! a [`PrivateDatabase`] (validated instance + privacy policy) on which an
//! analyst opens a [`Session`] with a total ε budget. Inside the session,
//! [`Session::prepare`] parses, plans, and executes a statement's lineage
//! *once* — the deterministic [`r2t_engine::QueryProfile`] and the τ-grid of
//! LP values it induces are cached under the statement's normalized text —
//! and every subsequent [`PreparedQuery::answer`] is a fresh, separately
//! budgeted ε-DP release that only draws noise.
//!
//! ```
//! use r2t_service::{PrivateDatabase, SessionOptions, WriteBatch};
//! use r2t_core::R2TConfig;
//!
//! # fn main() -> Result<(), r2t_service::Error> {
//! let schema = r2t_tpch::tpch_schema(&["customer"]);
//! let db = PrivateDatabase::new(schema, r2t_tpch::generate(0.05, 0.3, 1))?;
//! let session = db.session(
//!     SessionOptions::new()
//!         .total_epsilon(1.0)
//!         .base(R2TConfig::builder(1.0, 0.1, 4096.0).build())
//!         .seed(7),
//! )?;
//! let q = session.prepare(
//!     "SELECT COUNT(*) FROM orders, lineitem WHERE lineitem.l_ok = orders.ok",
//! )?;
//! let a = q.answer(0.4)?;
//! assert!(a.noisy.is_finite());
//! assert!((a.receipt.remaining - 0.6).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! Writes go through the same typed surface as everything else: stage a
//! [`WriteBatch`] of per-relation inserts/deletes and
//! [`PrivateDatabase::apply`] it. The batch is schema-validated and
//! integrity-checked in O(batch); the new snapshot version patches the
//! prepared-statement cache incrementally instead of rebuilding it, and
//! sessions pinned to older versions keep answering bit-identically.
//!
//! Budget enforcement is structural: the session's [`r2t_core::Accountant`]
//! is charged *before* any noise is drawn, a refused charge draws nothing,
//! and [`Session::answer_all`] charges its whole batch atomically (all
//! queries answered or none). Determinism is structural too: each successful
//! charge is assigned a substream index, and the answer's noise comes from
//! [`substream_rng`]`(session seed, index)` — so batch answers are
//! bit-identical regardless of how many worker threads served them.

mod db;
mod pool;
mod session;
mod snapshot;
mod tier;

pub use db::PrivateDatabase;
pub use r2t_engine::WriteBatch;
pub use session::{
    substream_rng, Answer, GroupedAnswer, PreparedQuery, QuerySpec, RaceStats, Receipt, Session,
    SessionOptions,
};
pub use snapshot::Snapshot;
pub use tier::{ServiceTier, TenantInfo};

use r2t_core::BudgetExceeded;
use r2t_engine::EngineError;
use r2t_sql::SqlError;

/// Unified error for the serving layer (and the `r2t` facade): everything
/// that can go wrong between SQL text and an ε-DP answer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// SQL parsing / lowering failed.
    Sql(SqlError),
    /// Query evaluation (or instance validation) failed.
    Engine(EngineError),
    /// A typed write batch was rejected: unknown relation, arity mismatch,
    /// a delete whose target row does not exist, or an integrity violation
    /// the batch would have introduced (duplicate primary key, broken
    /// foreign key). Nothing was applied.
    Mutation(EngineError),
    /// The session's privacy budget cannot cover the requested charge.
    Budget(BudgetExceeded),
    /// The statement is valid but not supported by the entry point used
    /// (e.g. a GROUP BY statement passed to [`PreparedQuery::answer`]).
    Unsupported(String),
    /// The serving tier refused the request at the door: unknown tenant,
    /// exhausted quota, or an invalid registration. Like a refused charge,
    /// a refused admission consumes no budget and draws no randomness.
    Admission(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Sql(e) => write!(f, "{e}"),
            Error::Engine(e) => write!(f, "{e}"),
            Error::Mutation(e) => write!(f, "mutation rejected: {e}"),
            Error::Budget(e) => write!(f, "{e}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Admission(m) => write!(f, "admission denied: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sql(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Mutation(e) => Some(e),
            Error::Budget(e) => Some(e),
            Error::Unsupported(_) | Error::Admission(_) => None,
        }
    }
}

impl From<SqlError> for Error {
    fn from(e: SqlError) -> Self {
        Error::Sql(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<BudgetExceeded> for Error {
    fn from(e: BudgetExceeded) -> Self {
        Error::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_sources_chain() {
        use std::error::Error as _;
        let e = Error::from(SqlError::Parse("boom".into()));
        assert!(e.source().unwrap().to_string().contains("boom"));
        let e = Error::from(BudgetExceeded { requested: 1.0, remaining: 0.25 });
        assert!(e.to_string().contains("budget"));
        assert!(e.source().is_some());
        let e = Error::Mutation(EngineError::UnknownRelation("Nope".into()));
        assert!(e.to_string().starts_with("mutation rejected: "));
        assert!(e.source().unwrap().to_string().contains("Nope"));
        assert!(Error::Unsupported("x".into()).source().is_none());
    }
}
