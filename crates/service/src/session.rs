//! Sessions: budget-enforced, cache-backed, deterministic serving.
//!
//! A [`Session`] pins three things for its lifetime: a data [`Snapshot`] of
//! the database it answers over, an ε budget (a lock-free
//! [`BudgetCell`], possibly shared with other sessions of the same tenant),
//! and a noise seed. Preparation ([`Session::prepare`]) computes the
//! *pre-noise* half of an R2T run — the lineage profile and the τ-grid of
//! truncation LP values — and caches it in the snapshot's shared prepared
//! cache under the statement's normalized text. Answering replays the cached
//! grid through [`R2T::run_cached`], which draws exactly the noise stream a
//! full run would, so a prepared answer is bit-identical to a cold run of
//! the raw pipeline in the sequential no-early-stop execution mode (and
//! equal to solver tolerance in every other mode).
//!
//! **Concurrency layout.** The session serializes on *nothing* in the answer
//! hot path: the budget is a CAS cell, the substream counter is a
//! `fetch_add`, the prepared cache is behind an `RwLock` whose read path
//! never blocks on (or takes) the budget state, and only the receipt ledger
//! appends under a short mutex, after the charge has already committed.
//! Cache lookups and concurrent answers therefore never contend.
//!
//! **DP-safety of the cache.** Cached profiles, LP structures, and branch
//! values are deterministic functions of the raw instance: pre-noise state,
//! equivalent to the data itself. The cache lives inside the snapshot, keyed
//! by query text and grid shape only — it must never be consulted to answer
//! without a fresh noise draw, and every draw happens *after* the budget
//! cell has committed the charge.
//!
//! **Determinism.** The `i`-th successful charge of the session (substream
//! index `i`) draws its noise from [`substream_rng`]`(seed, i)`. A refused
//! charge provably draws no noise — not as a discipline, but structurally:
//! the substream counter only advances *after* the budget CAS commits, and
//! there is no RNG to draw from until an index exists. Batch answering
//! reserves its whole ε in one CAS and assigns the batch's index range
//! before any fan-out, which makes [`Session::answer_all`] bit-identical for
//! any worker count.

use crate::pool::WorkerPool;
use crate::snapshot::{Prepared, PreparedKind, Snapshot};
use crate::{Error, PrivateDatabase};
use r2t_core::{BudgetCell, R2TConfig, R2TReport, R2T};
use r2t_engine::{ProfileSummary, Tuple};
use r2t_sql::normalize;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

pub use r2t_core::noise::substream_rng;

/// How to open a [`Session`]: one builder for both entry points.
///
/// - [`PrivateDatabase::session`] wants [`Self::total_epsilon`] (the
///   session's private budget) and [`Self::base`] (mechanism parameters),
///   and refuses [`Self::tenant`].
/// - [`crate::ServiceTier::session`] wants [`Self::tenant`] (the budget is
///   the tenant's shared quota, the base config defaults to the tier's),
///   and refuses [`Self::total_epsilon`].
///
/// [`Self::seed`] (default 0) roots the session's deterministic noise
/// substreams in both cases; the caller owns seed hygiene — two sessions
/// must not share a seed, or they would replay each other's noise.
///
/// ```
/// use r2t_service::SessionOptions;
/// # use r2t_core::R2TConfig;
/// let opts = SessionOptions::new()
///     .total_epsilon(1.0)
///     .base(R2TConfig::builder(1.0, 0.1, 4096.0).build())
///     .seed(7);
/// # let _ = opts;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    pub(crate) seed: u64,
    pub(crate) tenant: Option<String>,
    pub(crate) total_epsilon: Option<f64>,
    pub(crate) base: Option<R2TConfig>,
}

impl SessionOptions {
    /// Starts an empty option set (seed 0, no tenant, no budget, no base).
    pub fn new() -> Self {
        Self::default()
    }

    /// Roots the session's noise substreams (the `i`-th successful charge
    /// draws from [`substream_rng`]`(seed, i)`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Opens the session against a registered tenant's shared quota
    /// (tier sessions only).
    pub fn tenant(mut self, name: impl Into<String>) -> Self {
        self.tenant = Some(name.into());
        self
    }

    /// Total ε budget for a private (database) session.
    pub fn total_epsilon(mut self, epsilon: f64) -> Self {
        self.total_epsilon = Some(epsilon);
        self
    }

    /// Mechanism parameters (β, `GS_Q`, execution strategy) for every
    /// answer; each charge still picks its own ε. Required for database
    /// sessions; overrides the tier default for tier sessions.
    pub fn base(mut self, base: R2TConfig) -> Self {
        self.base = Some(base);
        self
    }
}

/// One query in a [`Session::answer_all`] batch.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Statement text (normalized internally).
    pub sql: String,
    /// ε to charge for this answer.
    pub epsilon: f64,
}

impl QuerySpec {
    /// Creates a batch entry.
    pub fn new(sql: impl Into<String>, epsilon: f64) -> Self {
        QuerySpec { sql: sql.into(), epsilon }
    }
}

/// τ-race diagnostics carried on a receipt. All fields are post-noise,
/// budget-covered quantities (the winning τ is a function of the released
/// noisy estimates).
#[derive(Debug, Clone)]
pub struct RaceStats {
    /// Number of race branches (`log₂ GS_Q`), summed over groups for a
    /// grouped answer.
    pub branches: usize,
    /// τ of the winning branch; `None` when the no-noise floor `Q(I, 0)` won
    /// (or for grouped answers, which race per group).
    pub winner_tau: Option<f64>,
    /// Wall-clock seconds spent answering (noise + max, not solving).
    pub seconds: f64,
}

/// Accounting receipt returned with every answer.
#[derive(Debug, Clone)]
pub struct Receipt {
    /// Normalized statement text (the cache key).
    pub query: String,
    /// ε charged for this answer.
    pub epsilon: f64,
    /// The charge's substream index within its session.
    pub substream: u64,
    /// Budget ε spent after this charge (the session's cell — tenant-wide
    /// when the session was opened through a service tier).
    pub spent: f64,
    /// Budget ε remaining after this charge.
    pub remaining: f64,
    /// τ-race diagnostics.
    pub race: RaceStats,
}

/// An ε-DP answer plus its accounting receipt.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The privatized aggregate.
    pub noisy: f64,
    /// What it cost and how it was produced.
    pub receipt: Receipt,
}

/// An ε-DP answer to a GROUP BY statement: one privatized aggregate per
/// group key, under a single total charge split evenly across groups.
#[derive(Debug, Clone)]
pub struct GroupedAnswer {
    /// (group key, privatized aggregate), in deterministic group order.
    pub groups: Vec<(Tuple, f64)>,
    /// What it cost and how it was produced.
    pub receipt: Receipt,
}

/// A serving session over a [`PrivateDatabase`]: an ε budget cell, a pinned
/// data snapshot with its prepared-statement cache, and a deterministic
/// noise-substream layout. Created by [`PrivateDatabase::session`]
/// (private budget) or [`crate::ServiceTier::session`] (budget shared
/// tenant-wide), both driven by one [`SessionOptions`] builder. All methods
/// take `&self`; the session is safe to share
/// across threads and none of its hot paths serialize on a common lock.
pub struct Session<'db> {
    db: &'db PrivateDatabase,
    snapshot: Arc<Snapshot>,
    base: R2TConfig,
    seed: u64,
    budget: Arc<BudgetCell>,
    /// The next substream index == number of successful charges so far.
    /// Advanced only after a budget commit; a refused charge never touches
    /// it, which is what makes "refusals draw no randomness" structural.
    next_substream: AtomicU64,
    /// (normalized query, ε) per successful charge. Appended *after* the
    /// commit; under concurrent answering the append order may differ from
    /// substream order (the ledger is a receipt log, not the commit point).
    ledger: Mutex<Vec<(String, f64)>>,
    /// Statements this session has prepared: a session-local view into the
    /// snapshot's shared cache. Reads take only the read lock.
    prepared: RwLock<HashMap<String, Arc<Prepared>>>,
}

impl<'db> Session<'db> {
    pub(crate) fn new(
        db: &'db PrivateDatabase,
        budget: Arc<BudgetCell>,
        base: R2TConfig,
        seed: u64,
    ) -> Self {
        r2t_obs::counter_add("service.sessions.opened", 1);
        Session {
            db,
            snapshot: db.snapshot(),
            base,
            seed,
            budget,
            next_substream: AtomicU64::new(0),
            ledger: Mutex::new(Vec::new()),
            prepared: RwLock::new(HashMap::new()),
        }
    }

    /// The database this session answers over.
    pub fn database(&self) -> &'db PrivateDatabase {
        self.db
    }

    /// The data snapshot this session pinned at open time. Writes applied
    /// to the database never change it.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// The session's base mechanism configuration (per-answer ε overrides
    /// [`R2TConfig::epsilon`]; everything else applies as-is).
    pub fn base_config(&self) -> &R2TConfig {
        &self.base
    }

    /// The session's noise seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total budget of the session's cell.
    pub fn total(&self) -> f64 {
        self.budget.total()
    }

    /// ε spent so far from the session's cell (tenant-wide for tier
    /// sessions).
    pub fn spent(&self) -> f64 {
        self.budget.spent()
    }

    /// ε still available in the session's cell.
    pub fn remaining(&self) -> f64 {
        self.budget.remaining()
    }

    /// Number of successful charges of *this session* (= the next substream
    /// index).
    pub fn num_charges(&self) -> usize {
        self.next_substream.load(Ordering::Acquire) as usize
    }

    /// The charge ledger: (normalized query, ε) per answer of this session.
    pub fn ledger(&self) -> Vec<(String, f64)> {
        self.ledger.lock().expect("ledger poisoned").clone()
    }

    /// Number of distinct prepared statements this session has seen.
    pub fn cached_queries(&self) -> usize {
        self.prepared.read().expect("prepared view poisoned").len()
    }

    /// Prepares a statement: normalizes the text, and — unless an entry for
    /// the same normalized text is already cached in the snapshot — parses,
    /// plans, executes the lineage join, and evaluates the τ-grid of
    /// truncation LP values. Spends no budget and draws no noise; the
    /// expensive work happens at most once per distinct statement *per
    /// snapshot*, shared across every session (and tenant) on it. The lookup
    /// takes no budget lock, so preparation never blocks concurrent answers.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery<'_, 'db>, Error> {
        let text = normalize(sql)?;
        if let Some(p) = self.prepared.read().expect("prepared view poisoned").get(&text) {
            return Ok(PreparedQuery { session: self, inner: Arc::clone(p) });
        }
        let built = self.snapshot.get_or_prepare(self.db.schema(), &text, &self.base)?;
        let mut view = self.prepared.write().expect("prepared view poisoned");
        let entry = view.entry(text).or_insert(built);
        Ok(PreparedQuery { session: self, inner: Arc::clone(entry) })
    }

    /// Prepares and answers in one call.
    pub fn answer(&self, sql: &str, epsilon: f64) -> Result<Answer, Error> {
        self.prepare(sql)?.answer(epsilon)
    }

    /// Answers a batch of statements under one *atomic* charge: either the
    /// budget covers the whole batch (every query answered, each with its own
    /// substream) or nothing is spent and nothing is drawn. Queries are
    /// answered concurrently on up to [`std::thread::available_parallelism`]
    /// workers from the persistent serving pool; results are positionally
    /// matched to `specs` and bit-identical for any worker count.
    pub fn answer_all(&self, specs: &[QuerySpec]) -> Result<Vec<Answer>, Error> {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        self.answer_all_with(specs, workers)
    }

    /// [`Self::answer_all`] with an explicit worker count (≥ 1): the calling
    /// thread plus up to `workers − 1` pool workers.
    pub fn answer_all_with(
        &self,
        specs: &[QuerySpec],
        workers: usize,
    ) -> Result<Vec<Answer>, Error> {
        let _batch_ns = r2t_obs::hist_time("service.batch.ns");
        let _batch_span = r2t_obs::span("service.batch");
        // Prepare everything (and surface errors) before any budget moves.
        let mut jobs: Vec<(Arc<Prepared>, f64)> = Vec::with_capacity(specs.len());
        for spec in specs {
            check_epsilon(spec.epsilon)?;
            let prepared = self.prepare(&spec.sql)?;
            if prepared.is_grouped() {
                return Err(Error::Unsupported(
                    "answer_all serves scalar statements; answer GROUP BY via answer_grouped"
                        .to_string(),
                ));
            }
            jobs.push((prepared.inner, spec.epsilon));
        }
        let n = jobs.len();

        // One atomic batch reservation (a single CAS), then the substream
        // index range — fixed here, before any fan-out, which is what makes
        // the results worker-count independent.
        let batch_eps: f64 = jobs.iter().map(|(_, e)| *e).sum();
        let charge = match self.budget.try_charge_sum(batch_eps, n as u64) {
            Ok(c) => c,
            Err(e) => {
                r2t_obs::counter_add("service.refusals.budget", 1);
                return Err(Error::Budget(e));
            }
        };
        // Full-tier: on success `charges` always equals `answers` (and the
        // answer-latency histogram's count), so the Counters tier keeps only
        // the latter — the serving fast path has a ~100 ns telemetry budget.
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::counter_add("service.charges", n as u64);
        }
        if charge.retries > 0 {
            r2t_obs::counter_add("service.charge.contention", charge.retries);
        }
        let batch_start = self.next_substream.fetch_add(n as u64, Ordering::AcqRel);
        {
            let mut ledger = self.ledger.lock().expect("ledger poisoned");
            ledger.extend(jobs.iter().map(|(p, e)| (p.text.clone(), *e)));
        }

        // Receipt totals reflect the ledger prefix up to each charge —
        // deterministic, unlike a racing read of the live cell.
        let total = self.budget.total();
        let mut spent_prefix = Vec::with_capacity(n);
        let mut acc = charge.spent_before;
        for (_, e) in &jobs {
            acc += e;
            spent_prefix.push(acc);
        }

        // Owned job set: the pool's worker threads are 'static, so the
        // runner captures everything by value (Arcs and scalars only).
        let results: Arc<Vec<OnceLock<Answer>>> =
            Arc::new((0..n).map(|_| OnceLock::new()).collect());
        let run = {
            let results = Arc::clone(&results);
            let base = self.base.clone();
            let seed = self.seed;
            Box::new(move |i: usize| {
                let (prepared, epsilon) = &jobs[i];
                let spent = spent_prefix[i];
                // Per-answer latency inside the batch, on whichever pool
                // worker runs the job (same histogram as single answers).
                let _answer_ns = r2t_obs::hist_time("service.answer.ns");
                let answer = answer_charged(
                    &base,
                    seed,
                    prepared,
                    *epsilon,
                    batch_start + i as u64,
                    spent,
                    (total - spent).max(0.0),
                );
                assert!(results[i].set(answer).is_ok(), "each job claimed once");
            })
        };
        WorkerPool::global().run(n, workers.max(1), run);
        // Full-tier: at Counters the answer count is already exported as the
        // latency histogram's `_count` (every answer records one sample).
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::counter_add("service.answers", n as u64);
        }
        Ok(results.iter().map(|slot| slot.get().expect("every job answered").clone()).collect())
    }

    /// Commits one charge and returns (substream index, spent, remaining).
    fn charge_one(&self, text: &str, epsilon: f64) -> Result<(u64, f64, f64), Error> {
        let charge = match self.budget.try_charge(epsilon) {
            Ok(c) => c,
            Err(e) => {
                r2t_obs::counter_add("service.refusals.budget", 1);
                return Err(Error::Budget(e));
            }
        };
        // Full-tier: success charges equal answers (see the batch path).
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::counter_add("service.charges", 1);
        }
        // Uncontended charges (the fast path) skip the zero record — the
        // counter tracks contention, not charges.
        if charge.retries > 0 {
            r2t_obs::counter_add("service.charge.contention", charge.retries);
        }
        let index = self.next_substream.fetch_add(1, Ordering::AcqRel);
        self.ledger.lock().expect("ledger poisoned").push((text.to_string(), epsilon));
        Ok((index, charge.spent_after, (self.budget.total() - charge.spent_after).max(0.0)))
    }
}

/// Runs the mechanism for an already-committed charge. No locking, no budget
/// checks: the substream index and totals were fixed at charge time.
fn answer_charged(
    base: &R2TConfig,
    seed: u64,
    prepared: &Prepared,
    epsilon: f64,
    substream: u64,
    spent: f64,
    remaining: f64,
) -> Answer {
    let PreparedKind::Single { values, .. } = &prepared.kind else {
        unreachable!("answer_charged serves scalar statements only");
    };
    let mut rng = substream_rng(seed, substream);
    let report = R2T::new(base.with_epsilon(epsilon)).run_cached(values, &mut rng);
    Answer {
        noisy: report.output,
        receipt: Receipt {
            query: prepared.text.clone(),
            epsilon,
            substream,
            spent,
            remaining,
            race: race_stats(&report),
        },
    }
}

fn race_stats(report: &R2TReport) -> RaceStats {
    RaceStats {
        branches: report.branches.len(),
        winner_tau: report.winner.map(|i| report.branches[i].tau),
        seconds: report.seconds,
    }
}

fn check_epsilon(epsilon: f64) -> Result<(), Error> {
    if epsilon > 0.0 && epsilon.is_finite() {
        Ok(())
    } else {
        Err(Error::Unsupported(format!("per-answer epsilon must be positive, got {epsilon}")))
    }
}

/// A handle to a cached prepared statement, bound to its session. Cheap to
/// clone-by-reprepare: [`Session::prepare`] with the same (normalized) text
/// returns a handle to the same cache entry.
pub struct PreparedQuery<'s, 'db> {
    session: &'s Session<'db>,
    inner: Arc<Prepared>,
}

impl PreparedQuery<'_, '_> {
    /// The normalized statement text — the cache key and ledger label.
    pub fn sql(&self) -> &str {
        &self.inner.text
    }

    /// Lineage shape diagnostics (`None` for GROUP BY statements). Not DP.
    pub fn summary(&self) -> Option<&ProfileSummary> {
        self.inner.summary.as_ref()
    }

    /// Whether this is a GROUP BY statement (answer via
    /// [`Self::answer_grouped`]).
    pub fn is_grouped(&self) -> bool {
        matches!(self.inner.kind, PreparedKind::Grouped { .. })
    }

    /// Answers the prepared statement, charging `epsilon` from the session's
    /// budget cell. The charge commits first; only then is noise drawn, from
    /// the charge's own substream. A refused charge returns [`Error::Budget`]
    /// having consumed nothing — no noise, no substream index.
    pub fn answer(&self, epsilon: f64) -> Result<Answer, Error> {
        check_epsilon(epsilon)?;
        if self.is_grouped() {
            return Err(Error::Unsupported("GROUP BY statement: use answer_grouped".to_string()));
        }
        // End-to-end prepared-answer latency (charge + noise + max), into
        // the live histogram; the span is 1-in-N sampled at `spans` level.
        let _answer_ns = r2t_obs::hist_time("service.answer.ns");
        let _answer_span = r2t_obs::span("service.answer");
        let (substream, spent, remaining) = self.session.charge_one(&self.inner.text, epsilon)?;
        // Full-tier: the histogram's count carries this at Counters.
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::counter_add("service.answers", 1);
        }
        Ok(answer_charged(
            &self.session.base,
            self.session.seed,
            &self.inner,
            epsilon,
            substream,
            spent,
            remaining,
        ))
    }

    /// Answers a prepared GROUP BY statement: one total charge of `epsilon`,
    /// split evenly across the `k` groups (Section 11), each group racing at
    /// `ε/k`. The charge's substream yields one root draw and group `i` then
    /// replays [`substream_rng`]`(root, i)` — the same derivation as
    /// [`r2t_core::groupby::GroupByR2T::run`], so the answers are
    /// bit-identical to the one-shot grouped race given the same RNG, for
    /// any worker count on either side.
    pub fn answer_grouped(&self, epsilon: f64) -> Result<GroupedAnswer, Error> {
        check_epsilon(epsilon)?;
        let PreparedKind::Grouped { groups } = &self.inner.kind else {
            return Err(Error::Unsupported("scalar statement: use answer".to_string()));
        };
        let _answer_ns = r2t_obs::hist_time("service.answer.ns");
        let _answer_span = r2t_obs::span("service.answer");
        let (substream, spent, remaining) = self.session.charge_one(&self.inner.text, epsilon)?;
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::counter_add("service.answers", 1);
        }
        let root = substream_rng(self.session.seed, substream).next_u64();
        let per_group = self.session.base.with_epsilon(epsilon / groups.len().max(1) as f64);
        let r2t = R2T::new(per_group);
        let mut out = Vec::with_capacity(groups.len());
        let mut branches = 0;
        let mut seconds = 0.0;
        for (i, (key, _profile, values)) in groups.iter().enumerate() {
            let mut rng = substream_rng(root, i as u64);
            let report = r2t.run_cached(values, &mut rng);
            branches += report.branches.len();
            seconds += report.seconds;
            out.push((key.clone(), report.output));
        }
        Ok(GroupedAnswer {
            groups: out,
            receipt: Receipt {
                query: self.inner.text.clone(),
                epsilon,
                substream,
                spent,
                remaining,
                race: RaceStats { branches, winner_tau: None, seconds },
            },
        })
    }
}
