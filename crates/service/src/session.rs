//! Sessions: budget-enforced, cache-backed, deterministic serving.
//!
//! A [`Session`] pins three things for its lifetime: the instance it answers
//! over, a total ε budget (an [`Accountant`]), and a noise seed. Preparation
//! ([`Session::prepare`]) computes the *pre-noise* half of an R2T run — the
//! lineage profile and the τ-grid of truncation LP values — and caches it
//! under the statement's normalized text. Answering replays the cached grid
//! through [`R2T::run_cached`], which draws exactly the noise stream a full
//! run would, so a prepared answer is bit-identical to a cold
//! [`PrivateDatabase::query`] call in the sequential no-early-stop execution
//! mode (and equal to solver tolerance in every other mode).
//!
//! **DP-safety of the cache.** Cached profiles, LP structures, and branch
//! values are deterministic functions of the raw instance: pre-noise state,
//! equivalent to the data itself. The cache lives inside the session, keyed
//! by query text only — it must never be shared across instances or consulted
//! to answer without a fresh noise draw, and every draw happens *after* the
//! accountant has committed the charge.
//!
//! **Determinism.** The `i`-th successful charge of the session (ledger
//! index `i`) draws its noise from [`substream_rng`]`(seed, i)`. Refused
//! charges do not advance the ledger, so a refused query provably draws no
//! noise — not as a discipline, but structurally: there is no RNG to draw
//! from until a charge commits. Batch answering assigns the ledger indices
//! at commit time and only then fans out, which makes
//! [`Session::answer_all`] bit-identical for any worker count.

use crate::{Error, PrivateDatabase};
use r2t_core::truncation::{self, SweepCache};
use r2t_core::{Accountant, BranchValues, R2TConfig, R2TReport, R2T};
use r2t_engine::{exec, ProfileSummary, QueryProfile, Tuple};
use r2t_sql::{normalize, parse_statement};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use r2t_core::noise::substream_rng;

/// One query in a [`Session::answer_all`] batch.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Statement text (normalized internally).
    pub sql: String,
    /// ε to charge for this answer.
    pub epsilon: f64,
}

impl QuerySpec {
    /// Creates a batch entry.
    pub fn new(sql: impl Into<String>, epsilon: f64) -> Self {
        QuerySpec { sql: sql.into(), epsilon }
    }
}

/// τ-race diagnostics carried on a receipt. All fields are post-noise,
/// budget-covered quantities (the winning τ is a function of the released
/// noisy estimates).
#[derive(Debug, Clone)]
pub struct RaceStats {
    /// Number of race branches (`log₂ GS_Q`), summed over groups for a
    /// grouped answer.
    pub branches: usize,
    /// τ of the winning branch; `None` when the no-noise floor `Q(I, 0)` won
    /// (or for grouped answers, which race per group).
    pub winner_tau: Option<f64>,
    /// Wall-clock seconds spent answering (noise + max, not solving).
    pub seconds: f64,
}

/// Accounting receipt returned with every answer.
#[derive(Debug, Clone)]
pub struct Receipt {
    /// Normalized statement text (the cache key).
    pub query: String,
    /// ε charged for this answer.
    pub epsilon: f64,
    /// The charge's ledger index — also its noise substream index.
    pub substream: u64,
    /// Session ε spent after this charge.
    pub spent: f64,
    /// Session ε remaining after this charge.
    pub remaining: f64,
    /// τ-race diagnostics.
    pub race: RaceStats,
}

/// An ε-DP answer plus its accounting receipt.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The privatized aggregate.
    pub noisy: f64,
    /// What it cost and how it was produced.
    pub receipt: Receipt,
}

/// An ε-DP answer to a GROUP BY statement: one privatized aggregate per
/// group key, under a single total charge split evenly across groups.
#[derive(Debug, Clone)]
pub struct GroupedAnswer {
    /// (group key, privatized aggregate), in deterministic group order.
    pub groups: Vec<(Tuple, f64)>,
    /// What it cost and how it was produced.
    pub receipt: Receipt,
}

/// The cached pre-noise state of one prepared statement.
#[derive(Debug)]
struct Prepared {
    /// Normalized statement text (the cache key).
    text: String,
    /// Lineage shape, for diagnostics (`None` for grouped statements).
    summary: Option<ProfileSummary>,
    kind: PreparedKind,
}

#[derive(Debug)]
enum PreparedKind {
    Single {
        /// `Q(I, 0)` and the τ-grid values — all `run_cached` needs. The
        /// lineage profile and the LP sweep structure that produced them are
        /// dropped after preparation: answering only draws noise against
        /// these precomputed branch values.
        values: BranchValues,
    },
    Grouped {
        /// Per group: key, profile, and its τ-grid values.
        groups: Vec<(Tuple, QueryProfile, BranchValues)>,
    },
}

struct State {
    accountant: Accountant,
    cache: HashMap<String, Arc<Prepared>>,
}

/// A serving session over a [`PrivateDatabase`]: a total ε budget, a
/// prepared-statement cache, and a deterministic noise-substream layout.
/// Created by [`PrivateDatabase::open_session`]. All methods take `&self`;
/// the session is safe to share across threads.
pub struct Session<'db> {
    db: &'db PrivateDatabase,
    base: R2TConfig,
    seed: u64,
    state: Mutex<State>,
}

impl<'db> Session<'db> {
    pub(crate) fn new(
        db: &'db PrivateDatabase,
        accountant: Accountant,
        base: R2TConfig,
        seed: u64,
    ) -> Self {
        Session { db, base, seed, state: Mutex::new(State { accountant, cache: HashMap::new() }) }
    }

    /// The database this session answers over.
    pub fn database(&self) -> &'db PrivateDatabase {
        self.db
    }

    /// The session's base mechanism configuration (per-answer ε overrides
    /// [`R2TConfig::epsilon`]; everything else applies as-is).
    pub fn base_config(&self) -> &R2TConfig {
        &self.base
    }

    /// The session's noise seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total session budget.
    pub fn total(&self) -> f64 {
        self.lock().accountant.total()
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.lock().accountant.spent()
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.lock().accountant.remaining()
    }

    /// Number of successful charges so far (= the next substream index).
    pub fn num_charges(&self) -> usize {
        self.lock().accountant.num_charges()
    }

    /// The charge ledger: (normalized query, ε) per answer, in order.
    pub fn ledger(&self) -> Vec<(String, f64)> {
        self.lock().accountant.ledger().to_vec()
    }

    /// Number of distinct prepared statements in the cache.
    pub fn cached_queries(&self) -> usize {
        self.lock().cache.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("session state poisoned")
    }

    /// Prepares a statement: normalizes the text, and — unless an entry for
    /// the same normalized text is already cached — parses, plans, executes
    /// the lineage join, and evaluates the τ-grid of truncation LP values.
    /// Spends no budget and draws no noise; the expensive work happens at
    /// most once per distinct statement.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery<'_, 'db>, Error> {
        let text = normalize(sql)?;
        if let Some(p) = self.lock().cache.get(&text) {
            return Ok(PreparedQuery { session: self, inner: Arc::clone(p) });
        }
        // Plan + execute outside the lock: preparation is read-only on the
        // instance, and a concurrent duplicate costs time, not correctness
        // (the loser's identical entry is discarded below).
        let lowered = parse_statement(&text, self.db.schema())?;
        let prepared = if lowered.group_by.is_empty() {
            let profile = exec::profile(self.db.schema(), self.db.instance(), &lowered.query)?;
            let sweep: SweepCache = Arc::new(OnceLock::new());
            let trunc = truncation::for_profile_cached(&profile, self.base.event_every, &sweep);
            let values = BranchValues::compute(
                trunc.as_ref(),
                self.base.num_branches(),
                self.base.warm_sweep,
            );
            drop(trunc);
            Prepared {
                text: text.clone(),
                summary: Some(profile.summary()),
                kind: PreparedKind::Single { values },
            }
        } else {
            let groups = exec::profile_grouped(
                self.db.schema(),
                self.db.instance(),
                &lowered.query,
                &lowered.group_by,
            )?;
            let groups = groups
                .into_iter()
                .map(|(key, profile)| {
                    let values = BranchValues::for_profile(&profile, &self.base);
                    (key, profile, values)
                })
                .collect();
            Prepared { text: text.clone(), summary: None, kind: PreparedKind::Grouped { groups } }
        };
        let mut st = self.lock();
        let entry = st.cache.entry(text).or_insert_with(|| Arc::new(prepared));
        Ok(PreparedQuery { session: self, inner: Arc::clone(entry) })
    }

    /// Prepares and answers in one call.
    pub fn answer(&self, sql: &str, epsilon: f64) -> Result<Answer, Error> {
        self.prepare(sql)?.answer(epsilon)
    }

    /// Answers a batch of statements under one *atomic* charge: either the
    /// budget covers the whole batch (every query answered, each with its own
    /// substream) or nothing is spent and nothing is drawn. Queries are
    /// answered concurrently on up to [`std::thread::available_parallelism`]
    /// workers; results are positionally matched to `specs` and bit-identical
    /// for any worker count.
    pub fn answer_all(&self, specs: &[QuerySpec]) -> Result<Vec<Answer>, Error> {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        self.answer_all_with(specs, workers)
    }

    /// [`Self::answer_all`] with an explicit worker count (≥ 1).
    pub fn answer_all_with(
        &self,
        specs: &[QuerySpec],
        workers: usize,
    ) -> Result<Vec<Answer>, Error> {
        // Prepare everything (and surface errors) before any budget moves.
        let mut jobs: Vec<(Arc<Prepared>, f64)> = Vec::with_capacity(specs.len());
        for spec in specs {
            check_epsilon(spec.epsilon)?;
            let prepared = self.prepare(&spec.sql)?;
            if prepared.is_grouped() {
                return Err(Error::Unsupported(
                    "answer_all serves scalar statements; answer GROUP BY via answer_grouped"
                        .to_string(),
                ));
            }
            jobs.push((prepared.inner, spec.epsilon));
        }

        // One atomic batch charge; ledger indices are fixed here, before any
        // fan-out, which is what makes the results worker-count independent.
        let (batch_start, spent_before, total) = {
            let mut st = self.lock();
            let charges: Vec<(&str, f64)> =
                jobs.iter().map(|(p, eps)| (p.text.as_str(), *eps)).collect();
            let start = st.accountant.num_charges();
            let spent_before = st.accountant.spent();
            st.accountant.charge_many(&charges)?;
            (start, spent_before, st.accountant.total())
        };

        let mut results: Vec<Option<Answer>> = (0..jobs.len()).map(|_| None).collect();
        let run_job = |i: usize| -> (usize, Answer) {
            let (prepared, epsilon) = &jobs[i];
            // Receipt totals reflect the ledger prefix up to this charge —
            // deterministic, unlike a racing read of the live accountant.
            let spent: f64 = spent_before + jobs[..=i].iter().map(|(_, e)| *e).sum::<f64>();
            let index = (batch_start + i) as u64;
            (i, self.answer_charged(prepared, *epsilon, index, spent, (total - spent).max(0.0)))
        };
        let workers = workers.max(1).min(jobs.len().max(1));
        if workers <= 1 {
            for i in 0..jobs.len() {
                let (i, a) = run_job(i);
                results[i] = Some(a);
            }
        } else {
            let next = AtomicUsize::new(0);
            let computed: Vec<(usize, Answer)> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..workers {
                    let next = &next;
                    let run_job = &run_job;
                    let n = jobs.len();
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push(run_job(i));
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("answer worker panicked"))
                    .collect()
            });
            for (i, a) in computed {
                results[i] = Some(a);
            }
        }
        Ok(results.into_iter().map(|a| a.expect("every job answered")).collect())
    }

    /// Runs the mechanism for an already-committed charge. No locking, no
    /// budget checks: the ledger index and totals were fixed at charge time.
    fn answer_charged(
        &self,
        prepared: &Prepared,
        epsilon: f64,
        substream: u64,
        spent: f64,
        remaining: f64,
    ) -> Answer {
        let PreparedKind::Single { values, .. } = &prepared.kind else {
            unreachable!("answer_charged serves scalar statements only");
        };
        let mut rng = substream_rng(self.seed, substream);
        let report = R2T::new(self.base.with_epsilon(epsilon)).run_cached(values, &mut rng);
        Answer {
            noisy: report.output,
            receipt: Receipt {
                query: prepared.text.clone(),
                epsilon,
                substream,
                spent,
                remaining,
                race: race_stats(&report),
            },
        }
    }
}

fn race_stats(report: &R2TReport) -> RaceStats {
    RaceStats {
        branches: report.branches.len(),
        winner_tau: report.winner.map(|i| report.branches[i].tau),
        seconds: report.seconds,
    }
}

fn check_epsilon(epsilon: f64) -> Result<(), Error> {
    if epsilon > 0.0 && epsilon.is_finite() {
        Ok(())
    } else {
        Err(Error::Unsupported(format!("per-answer epsilon must be positive, got {epsilon}")))
    }
}

/// A handle to a cached prepared statement, bound to its session. Cheap to
/// clone-by-reprepare: [`Session::prepare`] with the same (normalized) text
/// returns a handle to the same cache entry.
pub struct PreparedQuery<'s, 'db> {
    session: &'s Session<'db>,
    inner: Arc<Prepared>,
}

impl PreparedQuery<'_, '_> {
    /// The normalized statement text — the cache key and ledger label.
    pub fn sql(&self) -> &str {
        &self.inner.text
    }

    /// Lineage shape diagnostics (`None` for GROUP BY statements). Not DP.
    pub fn summary(&self) -> Option<&ProfileSummary> {
        self.inner.summary.as_ref()
    }

    /// Whether this is a GROUP BY statement (answer via
    /// [`Self::answer_grouped`]).
    pub fn is_grouped(&self) -> bool {
        matches!(self.inner.kind, PreparedKind::Grouped { .. })
    }

    /// Answers the prepared statement, charging `epsilon` from the session
    /// budget. The charge commits first; only then is noise drawn, from the
    /// charge's own substream. A refused charge returns [`Error::Budget`]
    /// having consumed nothing — no noise, no substream index.
    pub fn answer(&self, epsilon: f64) -> Result<Answer, Error> {
        check_epsilon(epsilon)?;
        if self.is_grouped() {
            return Err(Error::Unsupported("GROUP BY statement: use answer_grouped".to_string()));
        }
        let (substream, spent, remaining) = self.charge(epsilon)?;
        Ok(self.session.answer_charged(&self.inner, epsilon, substream, spent, remaining))
    }

    /// Answers a prepared GROUP BY statement: one total charge of `epsilon`,
    /// split evenly across the `k` groups (Section 11), each group racing at
    /// `ε/k`. The charge's substream yields one root draw and group `i` then
    /// replays [`substream_rng`]`(root, i)` — the same derivation as
    /// [`r2t_core::groupby::GroupByR2T::run`], so the answers are
    /// bit-identical to the one-shot [`PrivateDatabase::query_grouped`] given
    /// the same RNG, for any worker count on either side.
    pub fn answer_grouped(&self, epsilon: f64) -> Result<GroupedAnswer, Error> {
        check_epsilon(epsilon)?;
        let PreparedKind::Grouped { groups } = &self.inner.kind else {
            return Err(Error::Unsupported("scalar statement: use answer".to_string()));
        };
        let (substream, spent, remaining) = self.charge(epsilon)?;
        let root = substream_rng(self.session.seed, substream).next_u64();
        let per_group = self.session.base.with_epsilon(epsilon / groups.len().max(1) as f64);
        let r2t = R2T::new(per_group);
        let mut out = Vec::with_capacity(groups.len());
        let mut branches = 0;
        let mut seconds = 0.0;
        for (i, (key, _profile, values)) in groups.iter().enumerate() {
            let mut rng = substream_rng(root, i as u64);
            let report = r2t.run_cached(values, &mut rng);
            branches += report.branches.len();
            seconds += report.seconds;
            out.push((key.clone(), report.output));
        }
        Ok(GroupedAnswer {
            groups: out,
            receipt: Receipt {
                query: self.inner.text.clone(),
                epsilon,
                substream,
                spent,
                remaining,
                race: RaceStats { branches, winner_tau: None, seconds },
            },
        })
    }

    /// Commits one charge and returns (substream index, spent, remaining).
    fn charge(&self, epsilon: f64) -> Result<(u64, f64, f64), Error> {
        let mut st = self.session.lock();
        let index = st.accountant.num_charges() as u64;
        st.accountant.charge(&self.inner.text, epsilon)?;
        Ok((index, st.accountant.spent(), st.accountant.remaining()))
    }
}
