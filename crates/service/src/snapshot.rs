//! Immutable database snapshots and the snapshot-scoped prepared cache.
//!
//! A [`Snapshot`] is one validated, *frozen* version of the instance data
//! plus everything deterministically derived from it: the prepared-statement
//! cache of lineage profiles and τ-grid branch values. Sessions pin an
//! `Arc<Snapshot>` when they open and answer against it for their whole
//! lifetime, so a concurrent [`crate::PrivateDatabase::reload`] never stalls
//! a reader and never changes an answer mid-session — new data is only
//! visible to sessions opened after the swap.
//!
//! **DP-safety.** Everything in a snapshot is pre-noise state, equivalent to
//! the raw instance: it must never leave the process un-noised, and a cache
//! entry is only meaningful for the snapshot that built it. Scoping the
//! cache *inside* the snapshot makes the second rule structural — a reload
//! installs a fresh snapshot with a fresh, empty cache, and the old cache
//! dies with the last session pinning it.
//!
//! The cache is shared across every session on the snapshot (all tenants):
//! the profile and branch values are deterministic functions of (instance,
//! normalized text, grid parameters), so two tenants preparing the same
//! statement under the same grid share one entry and one planning cost. The
//! read path takes only a `RwLock` read lock — concurrent answers never
//! contend with it, and budget state lives elsewhere entirely.

use crate::Error;
use r2t_core::truncation::{self, SweepCache};
use r2t_core::{BranchValues, R2TConfig};
use r2t_engine::{exec, Instance, ProfileSummary, QueryProfile, Schema, Tuple};
use r2t_sql::parse_statement;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The part of a prepared-cache key that is *not* the statement text: the
/// τ-grid shape the branch values were evaluated on. Two sessions whose base
/// configs agree on these knobs can share entries; ε and β never enter —
/// they only scale noise at answer time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct GridKey {
    branches: u32,
    warm_sweep: bool,
    event_every: usize,
}

impl GridKey {
    pub(crate) fn of(base: &R2TConfig) -> Self {
        GridKey {
            branches: base.num_branches(),
            warm_sweep: base.warm_sweep,
            event_every: base.event_every,
        }
    }
}

/// The cached pre-noise state of one prepared statement.
#[derive(Debug)]
pub(crate) struct Prepared {
    /// Normalized statement text (the cache key).
    pub(crate) text: String,
    /// Lineage shape, for diagnostics (`None` for grouped statements).
    pub(crate) summary: Option<ProfileSummary>,
    pub(crate) kind: PreparedKind,
}

#[derive(Debug)]
pub(crate) enum PreparedKind {
    Single {
        /// `Q(I, 0)` and the τ-grid values — all `run_cached` needs. The
        /// lineage profile and the LP sweep structure that produced them are
        /// dropped after preparation: answering only draws noise against
        /// these precomputed branch values.
        values: BranchValues,
    },
    Grouped {
        /// Per group: key, profile, and its τ-grid values.
        groups: Vec<(Tuple, QueryProfile, BranchValues)>,
    },
}

/// One immutable version of the instance plus its derived prepared cache.
/// Created by [`crate::PrivateDatabase::new`] / [`crate::PrivateDatabase::reload`].
#[derive(Debug)]
pub struct Snapshot {
    instance: Instance,
    version: u64,
    prepared: RwLock<HashMap<(String, GridKey), Arc<Prepared>>>,
}

impl Snapshot {
    pub(crate) fn new(instance: Instance, version: u64) -> Self {
        Snapshot { instance, version, prepared: RwLock::new(HashMap::new()) }
    }

    /// The raw instance data this snapshot froze. Pre-noise — for the engine
    /// and the serving layer, not for release.
    pub(crate) fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Monotone version number: 0 for the instance the database was opened
    /// with, +1 per [`crate::PrivateDatabase::reload`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of distinct (statement, grid) entries in the shared cache.
    pub fn cached_statements(&self) -> usize {
        self.prepared.read().expect("prepared cache poisoned").len()
    }

    /// Looks up `text` (already normalized) under `base`'s grid, preparing
    /// and inserting it on a miss. The expensive work — parse, lineage join,
    /// LP presolve, the τ-grid sweep — runs *outside* both locks; a
    /// concurrent duplicate costs time, not correctness (the loser's
    /// identical entry is discarded).
    pub(crate) fn get_or_prepare(
        &self,
        schema: &Schema,
        text: &str,
        base: &R2TConfig,
    ) -> Result<Arc<Prepared>, Error> {
        let grid = GridKey::of(base);
        if let Some(p) = self
            .prepared
            .read()
            .expect("prepared cache poisoned")
            .get(&(text.to_string(), grid.clone()))
        {
            r2t_obs::counter_add("service.cache.hits", 1);
            return Ok(Arc::clone(p));
        }
        r2t_obs::counter_add("service.cache.misses", 1);
        let built = Arc::new(self.prepare_uncached(schema, text, base)?);
        let mut cache = self.prepared.write().expect("prepared cache poisoned");
        let entry = Arc::clone(cache.entry((text.to_string(), grid)).or_insert(built));
        r2t_obs::gauge_max("service.cache.entries", cache.len() as u64);
        Ok(entry)
    }

    fn prepare_uncached(
        &self,
        schema: &Schema,
        text: &str,
        base: &R2TConfig,
    ) -> Result<Prepared, Error> {
        let lowered = parse_statement(text, schema)?;
        if lowered.group_by.is_empty() {
            let profile = exec::profile(schema, &self.instance, &lowered.query)?;
            let sweep: SweepCache = Arc::new(OnceLock::new());
            let trunc = truncation::for_profile_cached(&profile, base.event_every, &sweep);
            let values =
                BranchValues::compute(trunc.as_ref(), base.num_branches(), base.warm_sweep);
            drop(trunc);
            Ok(Prepared {
                text: text.to_string(),
                summary: Some(profile.summary()),
                kind: PreparedKind::Single { values },
            })
        } else {
            let groups =
                exec::profile_grouped(schema, &self.instance, &lowered.query, &lowered.group_by)?;
            let groups = groups
                .into_iter()
                .map(|(key, profile)| {
                    let values = BranchValues::for_profile(&profile, base);
                    (key, profile, values)
                })
                .collect();
            Ok(Prepared {
                text: text.to_string(),
                summary: None,
                kind: PreparedKind::Grouped { groups },
            })
        }
    }
}
