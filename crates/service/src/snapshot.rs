//! Immutable database snapshots, the snapshot-scoped prepared cache, and
//! the revalidation machinery that carries that cache across writes.
//!
//! A [`Snapshot`] is one validated, *frozen* version of the instance data
//! plus everything deterministically derived from it: the prepared-statement
//! cache of lineage profiles and τ-grid branch values. Sessions pin an
//! `Arc<Snapshot>` when they open and answer against it for their whole
//! lifetime, so a concurrent [`crate::PrivateDatabase::apply`] never stalls
//! a reader and never changes an answer mid-session — new data is only
//! visible to sessions opened after the swap.
//!
//! **Deferred materialization.** A snapshot produced by a *delta* apply does
//! not copy the instance eagerly: it holds an `Arc` link to its parent plus
//! the [`ResolvedWrite`] that separates them, and materializes its own row
//! vectors only when a reader first asks ([`Snapshot::instance`] walks the
//! pending chain iteratively and folds the writes forward). A burst of
//! insert-only applies therefore costs O(batch) each, not O(data), and the
//! intermediate versions that no session ever pinned are reclaimed without
//! ever having been built.
//!
//! **Revalidation.** Rather than starting every new version with an empty
//! cache, [`Snapshot::revalidate_from`] carries the parent's prepared
//! entries forward. Each entry knows which relations its join reads
//! ([`Prepared::relations`]): entries untouched by the write share the same
//! `Arc` (their profile is a function of rows the write did not move), and
//! touched entries are *patched* — the entry's [`IncrementalView`] absorbs
//! the delta and replays a profile bit-identical to a from-scratch rebuild,
//! so the refreshed branch values equal what a cold prepare on the new data
//! would compute. Entries with no incremental plan (cyclic joins served by
//! the WCOJ executor, zero-variable queries) fall back to a full re-prepare
//! against the new instance.
//!
//! **DP-safety.** Everything in a snapshot is pre-noise state, equivalent to
//! the raw instance: it must never leave the process un-noised, and a cache
//! entry is only meaningful for the snapshot holding it. Revalidation
//! preserves that scoping: a shared entry is shared precisely because the
//! two snapshots agree on every row its query reads, and a patched entry is
//! re-derived (bit-identically) from the new snapshot's data before any
//! session can answer over it. The cache stays a deterministic function of
//! (instance, normalized text, grid parameters) — pre-noise state only, so
//! carrying it across versions releases nothing.
//!
//! The cache is shared across every session on the snapshot (all tenants):
//! two tenants preparing the same statement under the same grid share one
//! entry and one planning cost. The read path takes only a `RwLock` read
//! lock — concurrent answers never contend with it, and budget state lives
//! elsewhere entirely.

use crate::Error;
use r2t_core::{BranchPatcher, BranchValues, R2TConfig};
use r2t_engine::delta::{self, IncrementalView, ResolvedWrite};
use r2t_engine::exec::Source;
use r2t_engine::{exec, Archive, Instance, ProfileSummary, QueryProfile, Schema, Tuple};
use r2t_sql::parse_statement;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// The part of a prepared-cache key that is *not* the statement text: the
/// τ-grid shape the branch values were evaluated on. Two sessions whose base
/// configs agree on these knobs can share entries; ε and β never enter —
/// they only scale noise at answer time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct GridKey {
    branches: u32,
    warm_sweep: bool,
    event_every: usize,
}

impl GridKey {
    pub(crate) fn of(base: &R2TConfig) -> Self {
        GridKey {
            branches: base.num_branches(),
            warm_sweep: base.warm_sweep,
            event_every: base.event_every,
        }
    }
}

/// Branch values for a profile under a grid — the one evaluation path every
/// prepare *and* every revalidation goes through, so a patched entry whose
/// profile changed is bitwise-equal to a cold re-prepare by construction.
fn branch_values(profile: &QueryProfile, grid: &GridKey) -> BranchValues {
    BranchValues::for_profile_grid(profile, grid.branches, grid.warm_sweep, grid.event_every)
}

/// The cached pre-noise state of one prepared statement.
#[derive(Debug)]
pub(crate) struct Prepared {
    /// Normalized statement text (the cache key).
    pub(crate) text: String,
    /// Lineage shape, for diagnostics (`None` for grouped statements).
    pub(crate) summary: Option<ProfileSummary>,
    /// Relations the statement's completed join reads — the revalidation
    /// scope. A write touching none of them cannot change the profile, so
    /// the entry is shared with the successor snapshot as-is.
    pub(crate) relations: Vec<String>,
    pub(crate) kind: PreparedKind,
    /// Incremental-maintenance state, consumed (moved into the successor's
    /// entry) when a write touches this statement's relations.
    pub(crate) incr: Mutex<IncrState>,
}

#[derive(Debug)]
pub(crate) enum PreparedKind {
    Single {
        /// `Q(I, 0)` and the τ-grid values — all `run_cached` needs at
        /// answer time. Answering only draws noise against these.
        values: BranchValues,
    },
    Grouped {
        /// Per group: key, profile, and its τ-grid values.
        groups: Vec<(Tuple, QueryProfile, BranchValues)>,
    },
}

/// How a prepared entry is maintained across writes.
#[derive(Debug)]
pub(crate) enum IncrState {
    /// No incremental plan: cyclic joins (served by the WCOJ executor) and
    /// zero-variable statements. A touching write re-prepares from scratch
    /// against the new instance.
    None,
    /// Scalar statement: the materialized join, the profile it last
    /// *replayed* (kept to detect writes that left the profile unchanged;
    /// `None` while the closed-form patcher carries the entry — the profile
    /// is then implicit in the view and replayed only if the patcher
    /// disengages), and the armed patcher itself when the profile sits in
    /// the exact closed-form regime.
    Single { view: IncrementalView, profile: Option<QueryProfile>, patcher: Option<BranchPatcher> },
    /// Grouped statement: the materialized join; per-group profiles live in
    /// [`PreparedKind::Grouped`] alongside their values.
    Grouped { view: IncrementalView },
    /// Already moved into a successor snapshot by revalidation.
    Taken,
}

/// Per-outcome entry accounting for one revalidation pass (exported onto
/// the `service.apply.entries.*` counters by [`crate::PrivateDatabase::apply`]).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RevalStats {
    /// Entries whose relations the write did not touch: `Arc`-shared.
    pub(crate) shared: u64,
    /// Touched entries patched through their view, profile changed.
    pub(crate) patched: u64,
    /// Touched entries whose branch values were patched in `O(delta)` by
    /// the closed-form [`BranchPatcher`] — no profile replay, no LP sweep.
    pub(crate) patched_fast: u64,
    /// Touched entries patched through their view, profile (and therefore
    /// branch values) provably unchanged — the LP sweep was skipped.
    pub(crate) patched_unchanged: u64,
    /// Touched entries with no incremental plan, fully re-prepared.
    pub(crate) rebuilt: u64,
    /// Entries dropped (patch or re-prepare failed); re-prepared on demand.
    pub(crate) dropped: u64,
}

/// One immutable version of the instance plus its derived prepared cache.
/// Created by [`crate::PrivateDatabase::new`] /
/// [`crate::PrivateDatabase::apply`].
#[derive(Debug)]
pub struct Snapshot {
    /// The materialized row data. Set at construction for root (full)
    /// snapshots; deferred for delta snapshots until a reader asks.
    state: OnceLock<Instance>,
    /// For a not-yet-materialized delta snapshot: the parent it derives
    /// from and the write separating them. Cleared once `state` is set so
    /// the ancestor chain can be reclaimed.
    pending: Mutex<Option<(Arc<Snapshot>, Arc<ResolvedWrite>)>>,
    /// For an archive-opened snapshot: the memory-mapped columns backing the
    /// query paths. Queries run zero-copy against the mapping
    /// ([`Self::source`]); row-level readers fold it into `state` on first
    /// demand ([`Self::instance`]). Mapped snapshots refuse delta writes
    /// ([`crate::PrivateDatabase::apply`]), so the mapping never diverges
    /// from heap state.
    archive: Option<Arc<Archive>>,
    version: u64,
    prepared: RwLock<HashMap<(String, GridKey), Arc<Prepared>>>,
}

impl Snapshot {
    pub(crate) fn new(instance: Instance, version: u64) -> Self {
        let state = OnceLock::new();
        let _ = state.set(instance);
        Snapshot {
            state,
            pending: Mutex::new(None),
            archive: None,
            version,
            prepared: RwLock::new(HashMap::new()),
        }
    }

    /// A snapshot served directly from a validated on-disk archive: the
    /// column data stays memory-mapped and queries execute over it
    /// zero-copy. No row vectors exist until a row-level reader forces
    /// [`Self::instance`].
    pub(crate) fn from_archive(archive: Arc<Archive>, version: u64) -> Self {
        Snapshot {
            state: OnceLock::new(),
            pending: Mutex::new(None),
            archive: Some(archive),
            version,
            prepared: RwLock::new(HashMap::new()),
        }
    }

    /// Whether this snapshot serves straight from a memory-mapped archive.
    pub fn is_mapped(&self) -> bool {
        self.archive.is_some()
    }

    /// The executor-facing view of this snapshot's data: the memory-mapped
    /// archive when one backs this snapshot (zero-copy, no materialization),
    /// the (possibly lazily folded) row vectors otherwise.
    pub(crate) fn source(&self) -> Source<'_> {
        match &self.archive {
            Some(a) => Source::Archive(a),
            None => Source::Rows(self.instance()),
        }
    }

    /// The raw instance data this snapshot froze, materializing it on first
    /// use. Pre-noise — for the engine and the serving layer, not for
    /// release.
    pub(crate) fn instance(&self) -> &Instance {
        if let Some(inst) = self.state.get() {
            return inst;
        }
        let built = self.materialize();
        // A lost set race just drops the duplicate; either way the pending
        // link can go, releasing the parent chain.
        let _ = self.state.set(built);
        *self.pending.lock().expect("pending write poisoned") = None;
        self.state.get().expect("state was just set")
    }

    /// Walks the pending chain to the nearest materialized ancestor and
    /// folds the writes forward. Iterative on purpose: a long run of
    /// unread applies must not recurse chain-deep.
    fn materialize(&self) -> Instance {
        if let Some(archive) = &self.archive {
            // Row-level reader on a mapped snapshot: fold the mapped columns
            // back into row vectors once. The mapping itself stays live for
            // the executor paths.
            r2t_obs::counter_add("service.snapshot.materializations", 1);
            return archive.materialize();
        }
        let link = self.pending.lock().expect("pending write poisoned").clone();
        let Some((first_parent, first_write)) = link else {
            // Raced: another thread materialized and cleared the link after
            // our `state` miss. Its `state.set` happened before its clear,
            // and the mutex ordered that clear before our read.
            return self.state.get().expect("cleared pending implies materialized state").clone();
        };
        let mut writes: Vec<Arc<ResolvedWrite>> = vec![first_write];
        let mut cur = first_parent;
        let mut inst = loop {
            if let Some(i) = cur.state.get() {
                break i.clone();
            }
            let link = cur.pending.lock().expect("pending write poisoned").clone();
            match link {
                Some((parent, w)) => {
                    writes.push(w);
                    cur = parent;
                }
                None => {
                    break cur
                        .state
                        .get()
                        .expect("cleared pending implies materialized state")
                        .clone()
                }
            }
        };
        for w in writes.iter().rev() {
            w.apply_mut(&mut inst);
        }
        r2t_obs::counter_add("service.snapshot.materializations", 1);
        inst
    }

    /// Monotone version number: 0 for the instance the database was opened
    /// with, +1 per [`crate::PrivateDatabase::apply`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of distinct (statement, grid) entries in the shared cache.
    pub fn cached_statements(&self) -> usize {
        self.prepared.read().expect("prepared cache poisoned").len()
    }

    /// Looks up `text` (already normalized) under `base`'s grid, preparing
    /// and inserting it on a miss. The expensive work — parse, lineage join,
    /// LP presolve, the τ-grid sweep — runs *outside* both locks; a
    /// concurrent duplicate costs time, not correctness (the loser's
    /// identical entry is discarded).
    pub(crate) fn get_or_prepare(
        &self,
        schema: &Schema,
        text: &str,
        base: &R2TConfig,
    ) -> Result<Arc<Prepared>, Error> {
        let grid = GridKey::of(base);
        if let Some(p) = self
            .prepared
            .read()
            .expect("prepared cache poisoned")
            .get(&(text.to_string(), grid.clone()))
        {
            r2t_obs::counter_add("service.cache.hits", 1);
            return Ok(Arc::clone(p));
        }
        r2t_obs::counter_add("service.cache.misses", 1);
        let built = Arc::new(prepare_with_grid(schema, self.source(), text, &grid)?);
        let mut cache = self.prepared.write().expect("prepared cache poisoned");
        let entry = Arc::clone(cache.entry((text.to_string(), grid)).or_insert(built));
        r2t_obs::gauge_max("service.cache.entries", cache.len() as u64);
        Ok(entry)
    }

    /// Builds the successor snapshot for a delta write: the instance is
    /// deferred (parent + write, folded on first read) and the parent's
    /// prepared cache is carried forward entry by entry — shared when the
    /// write touches none of the entry's relations, patched through the
    /// entry's incremental view otherwise, fully re-prepared when there is
    /// no incremental plan. A patched entry's profile is bit-identical to a
    /// from-scratch rebuild (the engine's differential suites hold that
    /// bar), so when it compares equal to the old profile the old branch
    /// values are reused verbatim and the LP sweep is skipped.
    pub(crate) fn revalidate_from(
        parent: &Arc<Snapshot>,
        write: &Arc<ResolvedWrite>,
        schema: &Schema,
        version: u64,
    ) -> (Snapshot, RevalStats) {
        let touched: HashSet<&str> = write.touched().into_iter().collect();
        let mut stats = RevalStats::default();
        let mut cache: HashMap<(String, GridKey), Arc<Prepared>> = HashMap::new();
        // Built only if a touched entry needs a full re-prepare.
        let mut child_inst: Option<Instance> = None;
        let parent_cache = parent.prepared.read().expect("prepared cache poisoned");
        for (key, entry) in parent_cache.iter() {
            if entry.relations.iter().all(|r| !touched.contains(r.as_str())) {
                stats.shared += 1;
                cache.insert(key.clone(), Arc::clone(entry));
                continue;
            }
            let grid = &key.1;
            let state = std::mem::replace(
                &mut *entry.incr.lock().expect("incremental state poisoned"),
                IncrState::Taken,
            );
            match state {
                IncrState::Single { mut view, profile: old_profile, patcher } => {
                    let PreparedKind::Single { values: old_values } = &entry.kind else {
                        unreachable!("Single incr state on a grouped entry")
                    };
                    match view.apply_reporting(write.deltas()) {
                        // Not a single result line changed: values, summary,
                        // profile, and patcher all carry over untouched.
                        Ok(changes) if changes.is_noop() => {
                            stats.patched_unchanged += 1;
                            cache.insert(
                                key.clone(),
                                Arc::new(Prepared {
                                    text: entry.text.clone(),
                                    summary: entry.summary.clone(),
                                    relations: entry.relations.clone(),
                                    kind: PreparedKind::Single { values: old_values.clone() },
                                    incr: Mutex::new(IncrState::Single {
                                        view,
                                        profile: old_profile,
                                        patcher,
                                    }),
                                }),
                            );
                        }
                        Ok(changes) => {
                            // Fast path: feed the line delta to the armed
                            // closed-form patcher — O(delta), no profile
                            // replay, no LP sweep, bitwise-equal values. A
                            // wholesale rebuild or a failed patch poisons
                            // the patcher; fall through and re-arm below.
                            let fast = match (changes.rebuilt, patcher) {
                                (false, Some(mut p)) => {
                                    p.patch(&changes.removed, &changes.added).then_some(p)
                                }
                                _ => None,
                            };
                            if let Some(p) = fast {
                                stats.patched_fast += 1;
                                let values = p.values();
                                let (results, num_private, query_result, max_sensitivity) =
                                    p.summary_parts();
                                let summary = ProfileSummary {
                                    results,
                                    num_private,
                                    query_result,
                                    max_sensitivity,
                                    is_projection: false,
                                    max_refs: usize::from(num_private > 0),
                                    unit_refs: true,
                                };
                                cache.insert(
                                    key.clone(),
                                    Arc::new(Prepared {
                                        text: entry.text.clone(),
                                        summary: Some(summary),
                                        relations: entry.relations.clone(),
                                        kind: PreparedKind::Single { values },
                                        incr: Mutex::new(IncrState::Single {
                                            view,
                                            profile: None,
                                            patcher: Some(p),
                                        }),
                                    }),
                                );
                                continue;
                            }
                            match view.profile() {
                                Ok(profile) => {
                                    let values = if old_profile.as_ref() == Some(&profile) {
                                        stats.patched_unchanged += 1;
                                        old_values.clone()
                                    } else {
                                        stats.patched += 1;
                                        branch_values(&profile, grid)
                                    };
                                    let patcher = arm_patcher(&view, &profile, &values, grid);
                                    cache.insert(
                                        key.clone(),
                                        Arc::new(Prepared {
                                            text: entry.text.clone(),
                                            summary: Some(profile.summary()),
                                            relations: entry.relations.clone(),
                                            kind: PreparedKind::Single { values },
                                            incr: Mutex::new(IncrState::Single {
                                                view,
                                                profile: Some(profile),
                                                patcher,
                                            }),
                                        }),
                                    );
                                }
                                Err(_) => stats.dropped += 1,
                            }
                        }
                        Err(_) => stats.dropped += 1,
                    }
                }
                IncrState::Grouped { mut view } => {
                    match view.apply(write.deltas()).and_then(|()| view.profile_grouped()) {
                        Ok(new_groups) => {
                            let PreparedKind::Grouped { groups: old } = &entry.kind else {
                                unreachable!("Grouped incr state on a scalar entry")
                            };
                            let old_by_key: HashMap<&Tuple, (&QueryProfile, &BranchValues)> =
                                old.iter().map(|(k, p, v)| (k, (p, v))).collect();
                            let mut any_changed = false;
                            let groups: Vec<(Tuple, QueryProfile, BranchValues)> = new_groups
                                .into_iter()
                                .map(|(gk, profile)| {
                                    let values = match old_by_key.get(&gk) {
                                        Some((op, ov)) if **op == profile => (*ov).clone(),
                                        _ => {
                                            any_changed = true;
                                            branch_values(&profile, grid)
                                        }
                                    };
                                    (gk, profile, values)
                                })
                                .collect();
                            if any_changed {
                                stats.patched += 1;
                            } else {
                                stats.patched_unchanged += 1;
                            }
                            cache.insert(
                                key.clone(),
                                Arc::new(Prepared {
                                    text: entry.text.clone(),
                                    summary: None,
                                    relations: entry.relations.clone(),
                                    kind: PreparedKind::Grouped { groups },
                                    incr: Mutex::new(IncrState::Grouped { view }),
                                }),
                            );
                        }
                        Err(_) => stats.dropped += 1,
                    }
                }
                IncrState::None => {
                    let inst = child_inst.get_or_insert_with(|| write.apply_to(parent.instance()));
                    match prepare_with_grid(schema, Source::Rows(inst), &entry.text, grid) {
                        Ok(p) => {
                            stats.rebuilt += 1;
                            cache.insert(key.clone(), Arc::new(p));
                        }
                        Err(_) => stats.dropped += 1,
                    }
                }
                IncrState::Taken => stats.dropped += 1,
            }
        }
        drop(parent_cache);
        let snap = Snapshot {
            state: OnceLock::new(),
            pending: Mutex::new(Some((Arc::clone(parent), Arc::clone(write)))),
            archive: None,
            version,
            prepared: RwLock::new(cache),
        };
        (snap, stats)
    }
}

/// Arms a closed-form branch patcher over a freshly (re)computed scalar
/// entry, when the profile sits in the exact regime: flat (no projection
/// groups), every line referencing at most one private tuple with small
/// nonnegative integral weight, and a warm-sweep grid. Out-of-regime
/// profiles — or any bitwise mismatch between the mirror and `values` —
/// yield `None` and the entry stays on the replay-and-recompute path.
fn arm_patcher(
    view: &IncrementalView,
    profile: &QueryProfile,
    values: &BranchValues,
    grid: &GridKey,
) -> Option<BranchPatcher> {
    if profile.groups.is_some() {
        return None;
    }
    BranchPatcher::try_new(view.raw_lines(), values, grid.branches, grid.warm_sweep)
}

/// Prepares one statement against `source` under a grid. The incremental
/// view is built first and the profile is *replayed from it* — the view's
/// initial build is the lineage join (bit-identical to `exec::profile`,
/// asserted by the engine's differential suites), so maintenance state
/// costs no second join. Statements the view cannot maintain (cyclic joins,
/// zero variables) fall back to the executor with [`IncrState::None`], as
/// does *every* statement on an archive source: mapped snapshots never see
/// a delta (applies refuse them), so maintenance state would be dead weight
/// — and skipping the view keeps preparation zero-copy over the mapping.
fn prepare_with_grid(
    schema: &Schema,
    source: Source<'_>,
    text: &str,
    grid: &GridKey,
) -> Result<Prepared, Error> {
    let lowered = parse_statement(text, schema)?;
    let relations = delta::query_relations(schema, &lowered.query)?;
    if lowered.group_by.is_empty() {
        let view = match source {
            Source::Rows(instance) => IncrementalView::new(schema, instance, &lowered.query, None)?,
            Source::Archive(_) => None,
        };
        let (profile, view) = match view {
            Some(view) => (view.profile()?, Some(view)),
            None => (exec::profile_src(schema, source, &lowered.query)?, None),
        };
        let values = branch_values(&profile, grid);
        let incr = match view {
            Some(view) => {
                let patcher = arm_patcher(&view, &profile, &values, grid);
                IncrState::Single { view, profile: Some(profile.clone()), patcher }
            }
            None => IncrState::None,
        };
        Ok(Prepared {
            text: text.to_string(),
            summary: Some(profile.summary()),
            relations,
            kind: PreparedKind::Single { values },
            incr: Mutex::new(incr),
        })
    } else {
        let view = match source {
            Source::Rows(instance) => {
                IncrementalView::new(schema, instance, &lowered.query, Some(&lowered.group_by))?
            }
            Source::Archive(_) => None,
        };
        let (groups, incr) = match view {
            Some(view) => {
                let groups = view.profile_grouped()?;
                (groups, IncrState::Grouped { view })
            }
            None => (
                exec::profile_grouped_src(schema, source, &lowered.query, &lowered.group_by)?,
                IncrState::None,
            ),
        };
        let groups = groups
            .into_iter()
            .map(|(key, profile)| {
                let values = branch_values(&profile, grid);
                (key, profile, values)
            })
            .collect();
        Ok(Prepared {
            text: text.to_string(),
            summary: None,
            relations,
            kind: PreparedKind::Grouped { groups },
            incr: Mutex::new(incr),
        })
    }
}
