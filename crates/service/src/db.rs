//! The database facade: a validated instance plus its privacy policy.

use crate::session::{Session, SessionOptions};
use crate::snapshot::Snapshot;
use crate::Error;
use r2t_core::groupby::GroupByR2T;
use r2t_core::{Accountant, BudgetCell, R2TConfig, R2T};
use r2t_engine::{exec, Instance, IntegrityIndex, ProfileSummary, Schema, Tuple, WriteBatch};
use r2t_sql::parse_statement;
use rand::RngCore;
use std::sync::{Arc, Mutex, RwLock};

/// A validated database instance plus its privacy policy, answering SQL
/// queries under ε-DP with R2T.
///
/// The instance data lives in an immutable [`Snapshot`] behind an
/// atomically swapped `Arc`. Writes go through [`Self::apply`]: a typed
/// [`WriteBatch`] of per-relation inserts and deletes is validated against
/// the schema, checked for integrity in O(batch) against an incrementally
/// maintained index, and installed as a new snapshot *without* rebuilding —
/// the new version defers its row data (parent + delta, folded on first
/// read) and carries the parent's prepared-statement cache forward, patched
/// through each entry's incremental view. Concurrent readers are never
/// stalled, and every open [`Session`] keeps answering bit-identically on
/// the snapshot it pinned at open time.
///
/// The schema (and with it the privacy designation) is fixed for the
/// database's lifetime — changing it would invalidate every cached profile
/// and every sensitivity bound at once, so that is a new database, not a
/// write.
///
/// One-shot entry points ([`Self::query`], [`Self::query_grouped`]) are
/// deprecated: they spend `cfg.epsilon` per call with no cross-query
/// bookkeeping. Open a [`Session`] instead — it enforces a total budget
/// across everything the analyst asks and amortizes query preparation.
#[derive(Debug)]
pub struct PrivateDatabase {
    schema: Schema,
    data: RwLock<Arc<Snapshot>>,
    /// Serializes writers and holds the incrementally maintained integrity
    /// index for the *current* snapshot (built lazily on the first delta
    /// apply, reset by a replace). Readers never take this lock.
    write_gate: Mutex<Option<IntegrityIndex>>,
}

impl Clone for PrivateDatabase {
    /// The clone shares the current (immutable) snapshot — including its
    /// prepared cache — but swaps independently from the original.
    fn clone(&self) -> Self {
        PrivateDatabase {
            schema: self.schema.clone(),
            data: RwLock::new(self.snapshot()),
            write_gate: Mutex::new(None),
        }
    }
}

impl PrivateDatabase {
    /// Builds the system, validating referential integrity and the FK DAG.
    pub fn new(schema: Schema, instance: Instance) -> Result<Self, Error> {
        instance.validate(&schema)?;
        Ok(PrivateDatabase {
            schema,
            data: RwLock::new(Arc::new(Snapshot::new(instance, 0))),
            write_gate: Mutex::new(None),
        })
    }

    /// Opens the database from an on-disk columnar archive
    /// ([`r2t_engine::storage::write_archive`]) instead of row data.
    ///
    /// Cold start is mmap + checksum validation — no per-row work. The
    /// opening snapshot serves queries zero-copy over the mapped columns;
    /// referential integrity was checked when the archive was written (the
    /// writer refuses unvalidated instances and the format records it), so
    /// it is not re-derived here. The mapped snapshot is read-only:
    /// [`Self::apply`] refuses delta batches against it with
    /// [`Error::Unsupported`] — a [`r2t_engine::WriteBatch::replace`] (which
    /// never reads the parent) installs fresh heap data and re-enables
    /// writes from that version on.
    pub fn open_archive(schema: Schema, path: impl AsRef<std::path::Path>) -> Result<Self, Error> {
        let archive = r2t_engine::Archive::open(&schema, path.as_ref())?;
        Ok(PrivateDatabase {
            schema,
            data: RwLock::new(Arc::new(Snapshot::from_archive(Arc::new(archive), 0))),
            write_gate: Mutex::new(None),
        })
    }

    /// The schema (including the privacy designation).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The current data snapshot. Cheap (one `Arc` clone under a read lock
    /// held for nanoseconds); the returned snapshot is immutable and stays
    /// valid — and answerable — however many writes happen after.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.data.read().expect("snapshot lock poisoned"))
    }

    /// Applies a typed write batch and returns the new snapshot version.
    ///
    /// **Delta batches** (staged via [`WriteBatch::insert`] /
    /// [`WriteBatch::delete`]) are validated against the schema, resolved to
    /// concrete rows, and integrity-checked in O(batch) against an
    /// incrementally maintained PK/FK index — a rejected batch changes
    /// nothing and reports [`Error::Mutation`]. An accepted batch installs a
    /// new snapshot whose row data is *deferred* (parent + delta, folded on
    /// first read) and whose prepared cache is revalidated from the parent:
    /// entries whose relations the write did not touch are shared, touched
    /// entries are patched through their incremental view (bit-identical to
    /// a from-scratch re-prepare), and the per-outcome counts land on the
    /// `service.apply.entries.*` counters. An empty batch still installs a
    /// (fully shared) new version.
    ///
    /// **Replace batches** ([`WriteBatch::replace`]) validate the new
    /// instance from scratch and install it with an empty cache, exactly
    /// like the deprecated [`Self::reload`]; failures report
    /// [`Error::Engine`].
    ///
    /// Writers serialize on the write gate; readers are never stalled, and
    /// open sessions keep their pinned snapshot untouched (bit-identical
    /// answers before and after).
    pub fn apply(&self, batch: WriteBatch) -> Result<u64, Error> {
        let _apply_ns = r2t_obs::hist_time("service.apply.ns");
        let mut gate = self.write_gate.lock().expect("write gate poisoned");
        let parent = self.snapshot();
        if batch.is_replace() {
            // Resolve never reads the instance for a replace batch, so an
            // unmaterialized parent chain stays unmaterialized.
            let instance = batch
                .resolve(&self.schema, &Instance::new())?
                .into_replace()
                .expect("replace batch resolves to a replace write");
            instance.validate(&self.schema)?;
            // The index describes rows that are being discarded wholesale.
            *gate = None;
            let version = parent.version() + 1;
            let mut data = self.data.write().expect("snapshot lock poisoned");
            *data = Arc::new(Snapshot::new(instance, version));
            drop(data);
            r2t_obs::counter_add("service.reloads", 1);
            return Ok(version);
        }
        if parent.is_mapped() {
            // A delta against mapped columns would have to fork them onto the
            // heap, silently ending the out-of-core guarantee mid-write.
            // Refuse instead: mapped snapshots are immutable by contract.
            return Err(Error::Unsupported(
                "delta writes against an archive-opened database are not supported: \
                 the memory-mapped columns are immutable (stage the new data as \
                 WriteBatch::replace, or open the database from rows to mutate it)"
                    .to_string(),
            ));
        }
        // Insert-only batches never consult existing rows while resolving,
        // so they keep a chain of unread snapshots unmaterialized.
        let resolved = if batch.has_deletes() {
            batch.resolve(&self.schema, parent.instance())
        } else {
            batch.resolve(&self.schema, &Instance::new())
        }
        .map_err(Error::Mutation)?;
        let index = match gate.as_mut() {
            Some(i) => i,
            None => gate.insert(IntegrityIndex::build(&self.schema, parent.instance())),
        };
        index.check(&self.schema, resolved.deltas()).map_err(Error::Mutation)?;
        let write = Arc::new(resolved);
        let version = parent.version() + 1;
        let (snap, stats) = Snapshot::revalidate_from(&parent, &write, &self.schema, version);
        index.commit(&self.schema, write.deltas());
        {
            let mut data = self.data.write().expect("snapshot lock poisoned");
            *data = Arc::new(snap);
        }
        r2t_obs::counter_add("service.applies", 1);
        r2t_obs::counter_add("service.apply.entries.shared", stats.shared);
        r2t_obs::counter_add("service.apply.entries.patched", stats.patched);
        r2t_obs::counter_add("service.apply.entries.patched_fast", stats.patched_fast);
        r2t_obs::counter_add("service.apply.entries.patched_unchanged", stats.patched_unchanged);
        r2t_obs::counter_add("service.apply.entries.rebuilt", stats.rebuilt);
        r2t_obs::counter_add("service.apply.entries.dropped", stats.dropped);
        Ok(version)
    }

    /// Validates `instance` against the (fixed) schema and atomically
    /// installs it as the new current snapshot, returning the new snapshot
    /// version.
    #[deprecated(
        note = "stage the instance as WriteBatch::replace (or a delta batch) and apply it"
    )]
    pub fn reload(&self, instance: Instance) -> Result<u64, Error> {
        self.apply(WriteBatch::replace(instance))
    }

    /// Opens a serving session described by `opts`: requires
    /// [`SessionOptions::total_epsilon`] (the session's private budget) and
    /// [`SessionOptions::base`] (the mechanism parameters — β, `GS_Q`,
    /// execution strategy — for every answer; each charge picks its own ε).
    /// [`SessionOptions::tenant`] is refused here — tenant sessions draw a
    /// shared quota and are opened through a [`crate::ServiceTier`].
    ///
    /// [`SessionOptions::seed`] roots the session's deterministic noise
    /// substreams: the `i`-th successful charge draws from
    /// [`crate::substream_rng`]`(seed, i)`. The session pins the current
    /// snapshot: a concurrent [`Self::apply`] never changes its answers.
    pub fn session(&self, opts: SessionOptions) -> Result<Session<'_>, Error> {
        if let Some(tenant) = opts.tenant.as_deref() {
            return Err(Error::Admission(format!(
                "tenant {tenant:?} sessions are opened through a ServiceTier, \
                 not the bare database"
            )));
        }
        let Some(total) = opts.total_epsilon else {
            return Err(Error::Admission(
                "a database session needs a total ε budget (SessionOptions::total_epsilon)"
                    .to_string(),
            ));
        };
        if !(total >= 0.0 && total.is_finite()) {
            return Err(Error::Admission(format!(
                "total ε budget must be a non-negative finite epsilon, got {total}"
            )));
        }
        let Some(base) = opts.base else {
            return Err(Error::Admission(
                "a database session needs mechanism parameters (SessionOptions::base)".to_string(),
            ));
        };
        Ok(Session::new(self, Arc::new(BudgetCell::new(total)), base, opts.seed))
    }

    /// Opens a serving session with a total ε budget.
    #[deprecated(note = "use session(SessionOptions::new().total_epsilon(..).base(..).seed(..))")]
    pub fn open_session(&self, total_epsilon: f64, base: R2TConfig, seed: u64) -> Session<'_> {
        Session::new(self, Arc::new(BudgetCell::new(total_epsilon)), base, seed)
    }

    /// Answers a SQL query under ε-DP with R2T, spending `cfg.epsilon` from a
    /// fresh single-query budget.
    #[deprecated(
        note = "spends cfg.epsilon with no cross-query budget: use session + prepare/answer"
    )]
    pub fn query(&self, sql: &str, cfg: &R2TConfig, rng: &mut dyn RngCore) -> Result<f64, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        if !lowered.group_by.is_empty() {
            return Err(Error::Unsupported("use query_grouped for GROUP BY".to_string()));
        }
        let snap = self.snapshot();
        let profile = exec::profile_src(&self.schema, snap.source(), &lowered.query)?;
        // Even the one-shot path goes through an accountant: the charge is
        // committed before the mechanism touches the data, so no answering
        // path in the crate can release without a recorded charge.
        let mut accountant = Accountant::new(cfg.epsilon);
        accountant.charge(sql, cfg.epsilon)?;
        Ok(R2T::new(cfg.clone()).run_profile(&profile, rng).output)
    }

    /// Answers a GROUP BY SQL query under a *total* budget of `cfg.epsilon`
    /// split across the groups (Section 11). Returns (group key, answer).
    #[deprecated(
        note = "spends cfg.epsilon with no cross-query budget: use session + prepare/answer_grouped"
    )]
    pub fn query_grouped(
        &self,
        sql: &str,
        cfg: &R2TConfig,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<(Tuple, f64)>, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        if lowered.group_by.is_empty() {
            return Err(Error::Unsupported("query_grouped requires GROUP BY".to_string()));
        }
        let snap = self.snapshot();
        let groups = exec::profile_grouped_src(
            &self.schema,
            snap.source(),
            &lowered.query,
            &lowered.group_by,
        )?;
        let mut accountant = Accountant::new(cfg.epsilon);
        accountant.charge(sql, cfg.epsilon)?;
        let answers = GroupByR2T::new(cfg.clone()).run(&groups, rng);
        Ok(answers.into_iter().map(|g| (g.key, g.answer)).collect())
    }

    /// Evaluates a query *without* privacy (for testing / utility studies),
    /// against the current snapshot.
    pub fn query_exact(&self, sql: &str) -> Result<f64, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        let snap = self.snapshot();
        Ok(exec::profile_src(&self.schema, snap.source(), &lowered.query)?.query_result())
    }

    /// The lineage shape of a query without answering it. The output is
    /// *not* DP — it is a planning/debugging aid.
    pub fn describe(&self, sql: &str) -> Result<ProfileSummary, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        let snap = self.snapshot();
        Ok(exec::profile_src(&self.schema, snap.source(), &lowered.query)?.summary())
    }

    /// [`Self::describe`] rendered as one line.
    pub fn explain(&self, sql: &str) -> Result<String, Error> {
        Ok(self.describe(sql)?.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::{storage, Value};

    /// A tiny FK chain (customer ← orders) with customer primary private.
    fn chain() -> (Schema, Instance) {
        let mut schema = Schema::new();
        schema.add_relation("customer", &["ck"], Some("ck"), &[]).unwrap();
        schema.add_relation("orders", &["ok", "ck"], Some("ok"), &[("ck", "customer")]).unwrap();
        schema.set_primary_private(&["customer"]).unwrap();
        let mut inst = Instance::new();
        for c in 0..7i64 {
            inst.insert("customer", vec![Value::Int(c)]);
        }
        for o in 0..23i64 {
            inst.insert("orders", vec![Value::Int(o), Value::Int(o % 7)]);
        }
        (schema, inst)
    }

    #[test]
    fn archive_database_answers_like_rows_and_refuses_deltas() {
        let (schema, inst) = chain();
        let path =
            std::env::temp_dir().join(format!("r2t_service_archive_{}.r2t", std::process::id()));
        storage::write_archive(&schema, &inst, &path).unwrap();

        let from_rows = PrivateDatabase::new(schema.clone(), inst.clone()).unwrap();
        let mapped = PrivateDatabase::open_archive(schema, &path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // Queries over the mapped columns are bit-identical to the heap path.
        let sql = "SELECT COUNT(*) FROM customer, orders WHERE customer.ck = orders.ck";
        assert_eq!(
            mapped.query_exact(sql).unwrap().to_bits(),
            from_rows.query_exact(sql).unwrap().to_bits(),
        );
        assert_eq!(mapped.describe(sql).unwrap(), from_rows.describe(sql).unwrap());

        // A delta batch is refused loudly — never applied, never forked.
        let mut delta = WriteBatch::new();
        delta.insert("customer", vec![Value::Int(100)]);
        match mapped.apply(delta) {
            Err(Error::Unsupported(msg)) => assert!(msg.contains("archive")),
            other => panic!("expected Unsupported for delta on mapped db, got {other:?}"),
        }
        assert_eq!(mapped.snapshot().version(), 0, "refused write must not bump");

        // A replace never reads the parent, so it is allowed — and the
        // installed heap snapshot accepts deltas again.
        let version = mapped.apply(WriteBatch::replace(inst)).unwrap();
        assert_eq!(version, 1);
        let mut delta = WriteBatch::new();
        delta.insert("customer", vec![Value::Int(100)]);
        assert_eq!(mapped.apply(delta).unwrap(), 2);
        assert_eq!(mapped.query_exact("SELECT COUNT(*) FROM customer").unwrap(), 8.0);
    }
}
