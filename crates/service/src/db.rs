//! The database facade: a validated instance plus its privacy policy.

use crate::session::Session;
use crate::snapshot::Snapshot;
use crate::Error;
use r2t_core::groupby::GroupByR2T;
use r2t_core::{Accountant, BudgetCell, R2TConfig, R2T};
use r2t_engine::{exec, Instance, ProfileSummary, Schema, Tuple};
use r2t_sql::parse_statement;
use rand::RngCore;
use std::sync::{Arc, RwLock};

/// A validated database instance plus its privacy policy, answering SQL
/// queries under ε-DP with R2T.
///
/// The instance data lives in an immutable [`Snapshot`] behind an
/// atomically swapped `Arc`: [`Self::reload`] validates and installs a new
/// snapshot without stalling concurrent readers, and every open [`Session`]
/// keeps answering on the snapshot it pinned at open time. The schema (and
/// with it the privacy designation) is fixed for the database's lifetime —
/// changing it would invalidate every cached profile and every sensitivity
/// bound at once, so that is a new database, not a reload.
///
/// One-shot entry points ([`Self::query`], [`Self::query_grouped`]) are
/// deprecated: they spend `cfg.epsilon` per call with no cross-query
/// bookkeeping. Open a [`Session`] instead — it enforces a total budget
/// across everything the analyst asks and amortizes query preparation.
#[derive(Debug)]
pub struct PrivateDatabase {
    schema: Schema,
    data: RwLock<Arc<Snapshot>>,
}

impl Clone for PrivateDatabase {
    /// The clone shares the current (immutable) snapshot — including its
    /// prepared cache — but swaps independently from the original.
    fn clone(&self) -> Self {
        PrivateDatabase { schema: self.schema.clone(), data: RwLock::new(self.snapshot()) }
    }
}

impl PrivateDatabase {
    /// Builds the system, validating referential integrity and the FK DAG.
    pub fn new(schema: Schema, instance: Instance) -> Result<Self, Error> {
        instance.validate(&schema)?;
        Ok(PrivateDatabase { schema, data: RwLock::new(Arc::new(Snapshot::new(instance, 0))) })
    }

    /// The schema (including the privacy designation).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The current data snapshot. Cheap (one `Arc` clone under a read lock
    /// held for nanoseconds); the returned snapshot is immutable and stays
    /// valid — and answerable — however many reloads happen after.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.data.read().expect("snapshot lock poisoned"))
    }

    /// Validates `instance` against the (fixed) schema and atomically
    /// installs it as the new current snapshot, returning the new snapshot
    /// version. Readers are never stalled: open sessions keep their pinned
    /// snapshot untouched (bit-identical answers before and after), and only
    /// sessions opened after the swap see the new data. The new snapshot
    /// starts with an empty prepared cache — cached profiles are
    /// instance-derived state and must die with their instance.
    pub fn reload(&self, instance: Instance) -> Result<u64, Error> {
        instance.validate(&self.schema)?;
        let mut data = self.data.write().expect("snapshot lock poisoned");
        let version = data.version() + 1;
        *data = Arc::new(Snapshot::new(instance, version));
        r2t_obs::counter_add("service.reloads", 1);
        Ok(version)
    }

    /// Opens a serving session with a total ε budget. `base` fixes the
    /// mechanism parameters (β, `GS_Q`, execution strategy) for every answer
    /// in the session; each charge picks its own ε. `seed` roots the
    /// session's deterministic noise substreams: the `i`-th successful charge
    /// draws from [`crate::substream_rng`]`(seed, i)`. The session pins the
    /// current snapshot: a concurrent [`Self::reload`] never changes its
    /// answers.
    pub fn open_session(&self, total_epsilon: f64, base: R2TConfig, seed: u64) -> Session<'_> {
        Session::new(self, Arc::new(BudgetCell::new(total_epsilon)), base, seed)
    }

    /// Answers a SQL query under ε-DP with R2T, spending `cfg.epsilon` from a
    /// fresh single-query budget.
    #[deprecated(
        note = "spends cfg.epsilon with no cross-query budget: use open_session + prepare/answer"
    )]
    pub fn query(&self, sql: &str, cfg: &R2TConfig, rng: &mut dyn RngCore) -> Result<f64, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        if !lowered.group_by.is_empty() {
            return Err(Error::Unsupported("use query_grouped for GROUP BY".to_string()));
        }
        let snap = self.snapshot();
        let profile = exec::profile(&self.schema, snap.instance(), &lowered.query)?;
        // Even the one-shot path goes through an accountant: the charge is
        // committed before the mechanism touches the data, so no answering
        // path in the crate can release without a recorded charge.
        let mut accountant = Accountant::new(cfg.epsilon);
        accountant.charge(sql, cfg.epsilon)?;
        Ok(R2T::new(cfg.clone()).run_profile(&profile, rng).output)
    }

    /// Answers a GROUP BY SQL query under a *total* budget of `cfg.epsilon`
    /// split across the groups (Section 11). Returns (group key, answer).
    #[deprecated(
        note = "spends cfg.epsilon with no cross-query budget: use open_session + prepare/answer_grouped"
    )]
    pub fn query_grouped(
        &self,
        sql: &str,
        cfg: &R2TConfig,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<(Tuple, f64)>, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        if lowered.group_by.is_empty() {
            return Err(Error::Unsupported("query_grouped requires GROUP BY".to_string()));
        }
        let snap = self.snapshot();
        let groups = exec::profile_grouped(
            &self.schema,
            snap.instance(),
            &lowered.query,
            &lowered.group_by,
        )?;
        let mut accountant = Accountant::new(cfg.epsilon);
        accountant.charge(sql, cfg.epsilon)?;
        let answers = GroupByR2T::new(cfg.clone()).run(&groups, rng);
        Ok(answers.into_iter().map(|g| (g.key, g.answer)).collect())
    }

    /// Evaluates a query *without* privacy (for testing / utility studies),
    /// against the current snapshot.
    pub fn query_exact(&self, sql: &str) -> Result<f64, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        let snap = self.snapshot();
        Ok(exec::profile(&self.schema, snap.instance(), &lowered.query)?.query_result())
    }

    /// The lineage shape of a query without answering it. The output is
    /// *not* DP — it is a planning/debugging aid.
    pub fn describe(&self, sql: &str) -> Result<ProfileSummary, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        let snap = self.snapshot();
        Ok(exec::profile(&self.schema, snap.instance(), &lowered.query)?.summary())
    }

    /// [`Self::describe`] rendered as one line.
    pub fn explain(&self, sql: &str) -> Result<String, Error> {
        Ok(self.describe(sql)?.to_string())
    }
}
