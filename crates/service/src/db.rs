//! The database facade: a validated instance plus its privacy policy.

use crate::session::Session;
use crate::Error;
use r2t_core::groupby::GroupByR2T;
use r2t_core::{Accountant, R2TConfig, R2T};
use r2t_engine::{exec, Instance, ProfileSummary, Schema, Tuple};
use r2t_sql::parse_statement;
use rand::RngCore;

/// A validated database instance plus its privacy policy, answering SQL
/// queries under ε-DP with R2T.
///
/// One-shot entry points ([`Self::query`], [`Self::query_grouped`]) are
/// deprecated: they spend `cfg.epsilon` per call with no cross-query
/// bookkeeping. Open a [`Session`] instead — it enforces a total budget
/// across everything the analyst asks and amortizes query preparation.
#[derive(Debug, Clone)]
pub struct PrivateDatabase {
    schema: Schema,
    instance: Instance,
}

impl PrivateDatabase {
    /// Builds the system, validating referential integrity and the FK DAG.
    pub fn new(schema: Schema, instance: Instance) -> Result<Self, Error> {
        instance.validate(&schema)?;
        Ok(PrivateDatabase { schema, instance })
    }

    /// The schema (including the privacy designation).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The validated instance. Raw private data — for the engine and the
    /// serving layer, not for release.
    pub(crate) fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Opens a serving session with a total ε budget. `base` fixes the
    /// mechanism parameters (β, `GS_Q`, execution strategy) for every answer
    /// in the session; each charge picks its own ε. `seed` roots the
    /// session's deterministic noise substreams: the `i`-th successful charge
    /// draws from [`crate::substream_rng`]`(seed, i)`.
    pub fn open_session(&self, total_epsilon: f64, base: R2TConfig, seed: u64) -> Session<'_> {
        Session::new(self, Accountant::new(total_epsilon), base, seed)
    }

    /// Answers a SQL query under ε-DP with R2T, spending `cfg.epsilon` from a
    /// fresh single-query budget.
    #[deprecated(
        note = "spends cfg.epsilon with no cross-query budget: use open_session + prepare/answer"
    )]
    pub fn query(&self, sql: &str, cfg: &R2TConfig, rng: &mut dyn RngCore) -> Result<f64, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        if !lowered.group_by.is_empty() {
            return Err(Error::Unsupported("use query_grouped for GROUP BY".to_string()));
        }
        let profile = exec::profile(&self.schema, &self.instance, &lowered.query)?;
        // Even the one-shot path goes through an accountant: the charge is
        // committed before the mechanism touches the data, so no answering
        // path in the crate can release without a recorded charge.
        let mut accountant = Accountant::new(cfg.epsilon);
        accountant.charge(sql, cfg.epsilon)?;
        Ok(R2T::new(cfg.clone()).run_profile(&profile, rng).output)
    }

    /// Answers a GROUP BY SQL query under a *total* budget of `cfg.epsilon`
    /// split across the groups (Section 11). Returns (group key, answer).
    #[deprecated(
        note = "spends cfg.epsilon with no cross-query budget: use open_session + prepare/answer_grouped"
    )]
    pub fn query_grouped(
        &self,
        sql: &str,
        cfg: &R2TConfig,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<(Tuple, f64)>, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        if lowered.group_by.is_empty() {
            return Err(Error::Unsupported("query_grouped requires GROUP BY".to_string()));
        }
        let groups =
            exec::profile_grouped(&self.schema, &self.instance, &lowered.query, &lowered.group_by)?;
        let mut accountant = Accountant::new(cfg.epsilon);
        accountant.charge(sql, cfg.epsilon)?;
        let answers = GroupByR2T::new(cfg.clone()).run(&groups, rng);
        Ok(answers.into_iter().map(|g| (g.key, g.answer)).collect())
    }

    /// Evaluates a query *without* privacy (for testing / utility studies).
    pub fn query_exact(&self, sql: &str) -> Result<f64, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        Ok(exec::profile(&self.schema, &self.instance, &lowered.query)?.query_result())
    }

    /// The lineage shape of a query without answering it. The output is
    /// *not* DP — it is a planning/debugging aid.
    pub fn describe(&self, sql: &str) -> Result<ProfileSummary, Error> {
        let lowered = parse_statement(sql, &self.schema)?;
        Ok(exec::profile(&self.schema, &self.instance, &lowered.query)?.summary())
    }

    /// [`Self::describe`] rendered as one line.
    pub fn explain(&self, sql: &str) -> Result<String, Error> {
        Ok(self.describe(sql)?.to_string())
    }
}
