//! A persistent worker pool for batch answering.
//!
//! The previous serving layer fanned every `answer_all` batch out with
//! `std::thread::scope`, paying a thread spawn + join per worker *per batch*
//! — tens of microseconds of overhead around microsecond-scale jobs, which
//! is exactly the 1→8-worker throughput collapse `BENCH_serving.json` used
//! to show. This pool spawns workers once (lazily, growing to the largest
//! concurrency any batch asks for) and parks them on a condvar between
//! batches.
//!
//! # Design
//!
//! * A [`Batch`] is a fixed set of `n` index-addressed jobs behind one shared
//!   closure. Workers *claim* indices with a `fetch_add` cursor — the same
//!   deterministic-claiming discipline the old scoped fan-out used, so which
//!   thread runs a job never affects its output (substreams are pinned to
//!   indices before submission).
//! * The submitting thread always *helps*: it pushes the batch, wakes one
//!   worker, and then claims jobs itself until the cursor drains. For small
//!   batches the submitter typically finishes everything before a worker
//!   wakes — batch latency degrades gracefully to the sequential time
//!   instead of collapsing under spawn overhead.
//! * A batch carries `tickets = workers − 1` claims for pool workers, which
//!   preserves the public `answer_all_with(specs, workers)` contract: at most
//!   `workers` threads (pool workers + the submitter) ever touch the batch.
//! * Workers that claim a ticket and see work remaining wake one more worker
//!   (wake chaining), so a large batch recruits helpers proportionally while
//!   a tiny one wakes at most one thread.
//!
//! Completion is edge-triggered: the thread that finishes the last job flips
//! a flag under the batch's completion mutex and signals. Job panics are
//! caught in workers (a pool thread must survive any batch) and re-raised on
//! the submitting thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex};

/// Hard cap on pool threads; far above any sane `workers` argument, it only
/// bounds the damage of a pathological caller.
const MAX_WORKERS: usize = 256;

/// A one-shot batch of `n` jobs, executed as `run(0) … run(n-1)` by whichever
/// threads claim the indices first.
pub(crate) struct Batch {
    run: Box<dyn Fn(usize) + Send + Sync>,
    n: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    tickets: AtomicIsize,
    panicked: AtomicBool,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl Batch {
    pub(crate) fn new(n: usize, workers: usize, run: Box<dyn Fn(usize) + Send + Sync>) -> Batch {
        Batch {
            run,
            n,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            tickets: AtomicIsize::new(workers.saturating_sub(1).min(n) as isize),
            panicked: AtomicBool::new(false),
            finished: Mutex::new(n == 0),
            finished_cv: Condvar::new(),
        }
    }

    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n
    }

    fn tickets_left(&self) -> bool {
        self.tickets.load(Ordering::Relaxed) > 0
    }

    fn take_ticket(&self) -> bool {
        self.tickets.fetch_sub(1, Ordering::Relaxed) > 0
    }

    /// Claims and runs one job; `false` once the cursor is past the end.
    fn run_one(&self) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.n {
            return false;
        }
        if catch_unwind(AssertUnwindSafe(|| (self.run)(i))).is_err() {
            self.panicked.store(true, Ordering::Release);
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            *self.finished.lock().expect("batch completion poisoned") = true;
            self.finished_cv.notify_all();
        }
        true
    }

    /// Submitter side: drain the cursor, then block until the last claimed
    /// job (possibly on another thread) reports done.
    fn help_and_wait(&self) {
        while self.run_one() {}
        let mut finished = self.finished.lock().expect("batch completion poisoned");
        while !*finished {
            finished = self.finished_cv.wait(finished).expect("batch completion poisoned");
        }
        if self.panicked.load(Ordering::Acquire) {
            panic!("answer worker panicked");
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_cv: Condvar,
    spawned: AtomicUsize,
}

/// The process-wide serving pool. Threads are spawned on first use, grow to
/// the largest `workers` any batch requests, and persist (parked) for the
/// process lifetime — sessions, tenants, and databases all share them.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
}

static POOL: LazyLock<WorkerPool> = LazyLock::new(|| WorkerPool {
    shared: Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
    }),
});

impl WorkerPool {
    pub(crate) fn global() -> &'static WorkerPool {
        &POOL
    }

    /// Number of pool threads currently spawned (for tests/telemetry).
    #[cfg(test)]
    pub(crate) fn workers_spawned(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Runs the batch to completion with at most `workers` threads touching
    /// it (the calling thread plus up to `workers − 1` pool workers). With
    /// `workers <= 1` the pool is bypassed entirely — the batch runs inline
    /// on the caller.
    pub(crate) fn run(&self, n: usize, workers: usize, run: Box<dyn Fn(usize) + Send + Sync>) {
        let batch = Batch::new(n, workers, run);
        if workers <= 1 || n <= 1 {
            batch.help_and_wait();
            return;
        }
        self.ensure_workers(workers - 1);
        let batch = Arc::new(batch);
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.push_back(Arc::clone(&batch));
            r2t_obs::gauge_max("service.pool.queue_depth", q.len() as u64);
        }
        r2t_obs::counter_add("service.pool.batches", 1);
        self.shared.work_cv.notify_one();
        batch.help_and_wait();
    }

    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        loop {
            let cur = self.shared.spawned.load(Ordering::Relaxed);
            if cur >= want {
                return;
            }
            if self
                .shared
                .spawned
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("r2t-serve-{cur}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker");
                r2t_obs::gauge_max("service.pool.workers", (cur + 1) as u64);
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let batch: Arc<Batch> = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                // Drop finished batches off the front, then claim the first
                // batch that still has work *and* a free ticket.
                while q.front().is_some_and(|b| !b.has_work()) {
                    q.pop_front();
                }
                let claimed = q.iter().find(|b| b.has_work() && b.take_ticket()).map(Arc::clone);
                match claimed {
                    Some(b) => break b,
                    None => q = shared.work_cv.wait(q).expect("pool queue poisoned"),
                }
            }
        };
        // Wake chaining: recruit one more worker while capacity remains.
        if batch.has_work() && batch.tickets_left() {
            shared.work_cv.notify_one();
        }
        while batch.run_one() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..100).map(|_| AtomicU64::new(0)).collect());
        for workers in [1usize, 2, 4] {
            let h = Arc::clone(&hits);
            WorkerPool::global().run(
                100,
                workers,
                Box::new(move |i| {
                    h[i].fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 3, "job {i} ran once per batch");
        }
    }

    #[test]
    fn empty_batch_completes() {
        WorkerPool::global().run(0, 8, Box::new(|_| unreachable!("no jobs")));
    }

    #[test]
    fn workers_persist_across_batches() {
        WorkerPool::global().run(4, 3, Box::new(|_| {}));
        let after_first = WorkerPool::global().workers_spawned();
        assert!(after_first >= 2, "pool spawned helpers: {after_first}");
        WorkerPool::global().run(4, 3, Box::new(|_| {}));
        assert_eq!(
            WorkerPool::global().workers_spawned(),
            after_first,
            "second batch reuses the pool"
        );
    }

    #[test]
    fn job_panic_propagates_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::global().run(
                8,
                1, // inline path: the panic crosses run_one's catch_unwind
                Box::new(|i| {
                    if i == 3 {
                        panic!("boom");
                    }
                }),
            );
        });
        assert!(result.is_err(), "submitter observes the job panic");
        // The pool is still usable afterwards.
        WorkerPool::global().run(4, 2, Box::new(|_| {}));
    }
}
