//! The multi-tenant serving tier: striped tenant directory, per-tenant ε
//! quotas, and admission control.
//!
//! A [`ServiceTier`] fronts one [`PrivateDatabase`] for many tenants — the
//! Shrinkwrap-style multi-party setting where each analyst (tenant) holds an
//! ε quota against the same private instance and the server must enforce all
//! quotas exactly while serving everyone concurrently. The directory is
//! *striped*: tenants hash across [`STRIPES`] independent `RwLock` shards,
//! and each tenant's budget is a lock-free [`BudgetCell`], so charges from
//! different tenants never serialize on anything and charges from the same
//! tenant serialize only on that tenant's own cache line — the sharded
//! accountant of DESIGN.md §3.7.
//!
//! **Admission control.** [`ServiceTier::session`] refuses unknown
//! tenants and tenants with an exhausted quota; a refused admission — like a
//! refused charge — happens strictly before any substream index exists, so
//! it provably draws no randomness. Refusals and admissions are counted on
//! the `service.*` observability spine.
//!
//! Sessions opened through the tier are ordinary [`Session`]s whose budget
//! cell is the tenant's shared quota: any number of concurrent sessions of
//! one tenant draw down one cell, and the exact-charging invariant of
//! [`BudgetCell`] guarantees the quota is never over-committed under any
//! interleaving.

use crate::session::{Session, SessionOptions};
use crate::{Error, PrivateDatabase};
use r2t_core::{BudgetCell, R2TConfig};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, Weak};

/// Number of independent directory shards. A power of two well above any
/// realistic core count keeps the probability of two hot tenants sharing a
/// stripe low without bloating the struct.
const STRIPES: usize = 64;

struct Tenant {
    cell: Arc<BudgetCell>,
    sessions_opened: AtomicU64,
}

/// A point-in-time view of one tenant's accounting (not DP-sensitive: ε
/// budgets and their consumption are public parameters of the deployment).
#[derive(Debug, Clone)]
pub struct TenantInfo {
    /// Tenant name.
    pub name: String,
    /// Total ε quota.
    pub quota: f64,
    /// ε charged so far, across all of the tenant's sessions.
    pub spent: f64,
    /// ε still available.
    pub remaining: f64,
    /// Sessions opened (admitted) so far.
    pub sessions: u64,
}

/// The tier's shared state. Behind an `Arc` so the live-telemetry gauge
/// provider (see [`ServiceTier::new`]) can hold a `Weak` reference and pull
/// per-tenant budget state at every snapshot without tying the exporter's
/// lifetime to the tier's.
struct TierInner {
    db: PrivateDatabase,
    base: R2TConfig,
    stripes: Vec<RwLock<HashMap<String, Arc<Tenant>>>>,
}

impl TierInner {
    fn stripe(&self, name: &str) -> &RwLock<HashMap<String, Arc<Tenant>>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.stripes[(h.finish() as usize) % STRIPES]
    }

    /// Emits every tenant's ε accounting and session count into a live
    /// snapshot. Takes only stripe read locks — the same locks a directory
    /// lookup takes, never held across a recording call — so snapshotting
    /// cannot deadlock against serving (register_tenant drops its write
    /// lock before it records, and no recorder calls back into snapshots).
    fn emit_tenant_gauges(&self, emit: &mut dyn FnMut(&'static str, &str, f64)) {
        for stripe in &self.stripes {
            let stripe = stripe.read().expect("tenant stripe poisoned");
            for (name, t) in stripe.iter() {
                emit("service.tenant.eps.quota", name, t.cell.total());
                emit("service.tenant.eps.spent", name, t.cell.spent());
                emit("service.tenant.eps.remaining", name, t.cell.remaining());
                emit(
                    "service.tenant.sessions",
                    name,
                    t.sessions_opened.load(Ordering::Relaxed) as f64,
                );
            }
        }
    }
}

/// A multi-tenant, high-QPS serving front end over one [`PrivateDatabase`].
pub struct ServiceTier {
    inner: Arc<TierInner>,
    /// Unregisters the per-tenant gauge provider when the tier drops.
    _gauges: r2t_obs::ProviderGuard,
}

impl ServiceTier {
    /// Builds a tier over `db`. `base` fixes the mechanism parameters for
    /// every session the tier opens (per-answer ε still overrides
    /// [`R2TConfig::epsilon`]).
    ///
    /// Construction registers a pull-gauge provider with the live telemetry
    /// plane: every [`r2t_obs::snapshot`] carries each tenant's quota,
    /// spent, and remaining ε plus its session count, labelled by tenant
    /// name. ε budgets and their consumption are deployment-public operator
    /// state (released quantities by definition), and tenant names are
    /// operator-chosen identifiers — never tuple data.
    pub fn new(db: PrivateDatabase, base: R2TConfig) -> Self {
        let inner = Arc::new(TierInner {
            db,
            base,
            stripes: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
        });
        let weak: Weak<TierInner> = Arc::downgrade(&inner);
        let _gauges = r2t_obs::register_gauge_provider(Box::new(move |emit| {
            if let Some(tier) = weak.upgrade() {
                tier.emit_tenant_gauges(emit);
            }
        }));
        ServiceTier { inner, _gauges }
    }

    /// The fronted database (e.g. for [`PrivateDatabase::apply`] — already
    /// admitted sessions keep their pinned snapshot).
    pub fn db(&self) -> &PrivateDatabase {
        &self.inner.db
    }

    /// The tier's base mechanism configuration.
    pub fn base_config(&self) -> &R2TConfig {
        &self.inner.base
    }

    fn stripe(&self, name: &str) -> &RwLock<HashMap<String, Arc<Tenant>>> {
        self.inner.stripe(name)
    }

    /// Registers a tenant with a total ε quota. Every session the tenant
    /// opens charges this one quota; it can never be over-committed, however
    /// many sessions run concurrently. Fails on duplicate names and invalid
    /// quotas.
    pub fn register_tenant(&self, name: &str, quota_epsilon: f64) -> Result<(), Error> {
        if !(quota_epsilon >= 0.0 && quota_epsilon.is_finite()) {
            return Err(Error::Admission(format!(
                "tenant quota must be a non-negative finite epsilon, got {quota_epsilon}"
            )));
        }
        let mut stripe = self.stripe(name).write().expect("tenant stripe poisoned");
        if stripe.contains_key(name) {
            return Err(Error::Admission(format!("tenant {name:?} is already registered")));
        }
        stripe.insert(
            name.to_string(),
            Arc::new(Tenant {
                cell: Arc::new(BudgetCell::new(quota_epsilon)),
                sessions_opened: AtomicU64::new(0),
            }),
        );
        drop(stripe); // tenants() re-locks every stripe, including this one
        r2t_obs::counter_add("service.tenants.registered", 1);
        r2t_obs::gauge_max("service.tenants", self.tenants() as u64);
        Ok(())
    }

    /// Number of registered tenants.
    pub fn tenants(&self) -> usize {
        self.inner.stripes.iter().map(|s| s.read().expect("tenant stripe poisoned").len()).sum()
    }

    /// The tenant's current accounting, or `None` if unknown.
    pub fn tenant(&self, name: &str) -> Option<TenantInfo> {
        let stripe = self.stripe(name).read().expect("tenant stripe poisoned");
        stripe.get(name).map(|t| TenantInfo {
            name: name.to_string(),
            quota: t.cell.total(),
            spent: t.cell.spent(),
            remaining: t.cell.remaining(),
            sessions: t.sessions_opened.load(Ordering::Relaxed),
        })
    }

    /// Aggregate ε charged across all tenants (sum of cell spends; exact
    /// whenever the per-charge ε values sum exactly in f64, e.g. equal
    /// powers of two).
    pub fn total_spent(&self) -> f64 {
        self.inner
            .stripes
            .iter()
            .map(|s| {
                s.read()
                    .expect("tenant stripe poisoned")
                    .values()
                    .map(|t| t.cell.spent())
                    .sum::<f64>()
            })
            .sum()
    }

    /// Admits a tenant session described by `opts`: requires
    /// [`SessionOptions::tenant`], looks the tenant up in its stripe (a
    /// shared read lock — admissions of different tenants never serialize),
    /// refuses unknown tenants and exhausted quotas, and otherwise opens a
    /// [`Session`] whose budget cell *is* the tenant's quota.
    /// [`SessionOptions::total_epsilon`] is refused — the budget comes from
    /// [`Self::register_tenant`], never from the caller.
    /// [`SessionOptions::base`] overrides the tier's base config;
    /// [`SessionOptions::seed`] roots the session's noise substreams (the
    /// caller owns seed hygiene: two sessions of one tenant must not share
    /// a seed, or they would replay each other's noise).
    ///
    /// A refused admission draws no randomness, structurally: the refusal
    /// happens before a session — and with it any substream index — exists.
    pub fn session(&self, opts: SessionOptions) -> Result<Session<'_>, Error> {
        if let Some(eps) = opts.total_epsilon {
            return Err(Error::Admission(format!(
                "tier sessions draw the tenant's registered quota; \
                 remove total_epsilon({eps})"
            )));
        }
        let Some(tenant) = opts.tenant.as_deref() else {
            return Err(Error::Admission(
                "a tier session needs a tenant (SessionOptions::tenant)".to_string(),
            ));
        };
        let cell = {
            let stripe = self.stripe(tenant).read().expect("tenant stripe poisoned");
            match stripe.get(tenant) {
                None => {
                    // Refusals are counted in aggregate AND split by kind,
                    // so dashboards separate misconfiguration (unknown)
                    // from budget exhaustion.
                    r2t_obs::counter_add("service.refusals.admission", 1);
                    r2t_obs::counter_add("service.refusals.admission.unknown", 1);
                    return Err(Error::Admission(format!("unknown tenant {tenant:?}")));
                }
                Some(t) => {
                    if t.cell.remaining() <= 0.0 {
                        r2t_obs::counter_add("service.refusals.admission", 1);
                        r2t_obs::counter_add("service.refusals.admission.exhausted", 1);
                        return Err(Error::Admission(format!(
                            "tenant {tenant:?} has exhausted its quota ({} of {} spent)",
                            t.cell.spent(),
                            t.cell.total()
                        )));
                    }
                    t.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(&t.cell)
                }
            }
        };
        r2t_obs::counter_add("service.admissions", 1);
        let base = opts.base.unwrap_or_else(|| self.inner.base.clone());
        Ok(Session::new(&self.inner.db, cell, base, opts.seed))
    }

    /// Admits a tenant session.
    #[deprecated(note = "use session(SessionOptions::new().tenant(..).seed(..))")]
    pub fn open_session(&self, tenant: &str, seed: u64) -> Result<Session<'_>, Error> {
        self.session(SessionOptions::new().tenant(tenant).seed(seed))
    }
}
