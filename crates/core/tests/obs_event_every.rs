//! `R2TConfig::event_every` controls how often each branch LP checks the
//! racing cutoff and reports progress. The granularity must be purely
//! observational: changing it changes the `r2t.progress.checks` counter
//! total (when the obs registry is compiled in) but never the released
//! output. Own integration-test binary: the obs registry is process-global.

use r2t_core::{R2TConfig, R2T};
use r2t_engine::lineage::ProfileBuilder;
use r2t_engine::QueryProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Example 6.2's skewed instance: enough results that branch LPs run for
/// multiple simplex iterations (so `event_every` granularities differ). A
/// layer of 3-reference results keeps the profile off the flow kernel —
/// `event_every` is a *simplex* granularity, so the test must exercise the
/// simplex dispatch path.
fn profile() -> QueryProfile {
    let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
    let mut next: u64 = 0;
    for k in [3u64, 4] {
        for _ in 0..300 {
            let base = next;
            next += k;
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_result(1.0, [base + i, base + j]);
                }
            }
        }
    }
    for _ in 0..40 {
        let center = next;
        next += 9;
        for i in 1..=8 {
            b.add_result(1.0, [center, center + i]);
        }
    }
    for _ in 0..30 {
        let base = next;
        next += 3;
        b.add_result(1.0, [base, base + 1, base + 2]);
    }
    b.build()
}

/// One seeded early-stop race at the given granularity; returns the released
/// output and the progress-check counter total.
fn race(profile: &QueryProfile, event_every: usize) -> (f64, u64) {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    r2t_obs::set_level(r2t_obs::Level::Counters);
    let _ = r2t_obs::drain();
    let cfg = R2TConfig::builder(1.0, 0.1, 256.0)
        .early_stop(true)
        .parallel(false)
        .event_every(event_every)
        .build();
    let mut rng = StdRng::seed_from_u64(42);
    let out = R2T::new(cfg).run_profile(profile, &mut rng).output;
    let report = r2t_obs::drain();
    r2t_obs::set_level(r2t_obs::Level::Off);
    (out, report.counters.get("r2t.progress.checks").copied().unwrap_or(0))
}

#[test]
fn granularity_changes_counters_but_never_results() {
    let p = profile();
    let (out_fine, checks_fine) = race(&p, 1);
    let (out_coarse, checks_coarse) = race(&p, 64);

    // The released output is bit-identical at every granularity.
    assert_eq!(
        out_fine.to_bits(),
        out_coarse.to_bits(),
        "event_every changed the mechanism output: {out_fine} vs {out_coarse}"
    );

    if r2t_obs::COMPILED {
        // Checking every iteration must observe strictly more progress than
        // checking every 64th.
        assert!(
            checks_fine > checks_coarse,
            "progress checks should scale with granularity: {checks_fine} vs {checks_coarse}"
        );
        assert!(checks_fine > 0, "event_every=1 must record progress checks");
    } else {
        assert_eq!(checks_fine, 0, "no counters without the obs feature");
        assert_eq!(checks_coarse, 0);
    }
}
