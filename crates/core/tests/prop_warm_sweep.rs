//! Property test for warm-start correctness: a sweep session fed the τ-race
//! in descending order (the warm-chain order R2T uses) must agree with the
//! stateless cold-start truncation value on **every** branch, for both the
//! SJA LP and the projected LP.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use r2t_core::truncation::{LpTruncation, ProjectedLpTruncation, Truncation};
use r2t_engine::lineage::ProfileBuilder;
use r2t_engine::QueryProfile;

/// A randomly generated query profile described by plain data: results as
/// (weight, refs over the private-tuple id space), and a projection layer
/// assigning each result to a group with a per-group weight.
#[derive(Debug, Clone)]
struct RandomProfile {
    results: Vec<(f64, Vec<usize>)>,
    group_of: Vec<usize>,
    group_weights: Vec<f64>,
}

fn arb_profile() -> impl Strategy<Value = RandomProfile> {
    (2..=10usize, 1..=40usize, 1..=6usize).prop_flat_map(|(p, n, g)| {
        let results = prop::collection::vec((0.25f64..4.0, prop::collection::vec(0..p, 1..=4)), n);
        let group_of = prop::collection::vec(0..g, n);
        let group_weights = prop::collection::vec(0.5f64..4.0, g);
        (results, group_of, group_weights).prop_map(|(results, group_of, group_weights)| {
            RandomProfile { results, group_of, group_weights }
        })
    })
}

fn build_sja(rp: &RandomProfile) -> QueryProfile {
    let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
    for (w, refs) in &rp.results {
        b.add_result(*w, refs.iter().map(|&r| r as u64));
    }
    b.build()
}

fn build_projected(rp: &RandomProfile) -> QueryProfile {
    let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
    for (k, (w, refs)) in rp.results.iter().enumerate() {
        let gid = rp.group_of[k];
        b.add_projected_result(
            gid as u64,
            rp.group_weights[gid],
            *w,
            refs.iter().map(|&r| r as u64),
        )
        .expect("consistent group weights");
    }
    b.build()
}

/// The τ-race of a GS = 256 run, descending (warm-chain order), with τ = 0
/// appended to exercise the closed-form path.
fn race_taus() -> Vec<f64> {
    let mut taus: Vec<f64> = (1..=8u32).rev().map(|j| (1u64 << j) as f64).collect();
    taus.push(0.0);
    taus
}

fn assert_warm_matches_cold(trunc: &dyn Truncation) -> Result<(), TestCaseError> {
    let mut session = trunc.sweep_session().expect("LP truncations support sweeps");
    for tau in race_taus() {
        let cold = trunc.value(tau);
        let warm = session.value(tau);
        prop_assert!(
            (warm - cold).abs() <= 1e-6 * (1.0 + cold.abs()),
            "tau={tau}: warm {warm} vs cold {cold}"
        );
        // The racing entry point with a generous cutoff must agree too.
        let raced = session.value_racing(tau, &mut |_| true);
        prop_assert!(
            raced.is_some_and(|r| (r - cold).abs() <= 1e-6 * (1.0 + cold.abs())),
            "tau={tau}: raced {raced:?} vs cold {cold}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sja_warm_sweep_matches_cold(rp in arb_profile()) {
        let p = build_sja(&rp);
        let t = LpTruncation::new(&p);
        assert_warm_matches_cold(&t)?;
    }

    #[test]
    fn projected_warm_sweep_matches_cold(rp in arb_profile()) {
        let p = build_projected(&rp);
        let t = ProjectedLpTruncation::new(&p);
        assert_warm_matches_cold(&t)?;
    }
}
