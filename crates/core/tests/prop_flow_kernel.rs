//! Differential property tests for the combinatorial flow kernel: on every
//! matching-structured profile, the kernel session dispatched by
//! [`Truncation::sweep_session`] must agree with the pinned revised-simplex
//! oracle ([`Truncation::simplex_sweep_session`]) to 1e-6 relative on every
//! branch of the τ-race — including τ = 0, fractional τ, and τ far past
//! saturation.
//!
//! The generator covers the hostile shapes the kernel has to normalize:
//! fractional ψ weights, zero-weight results, results with no private
//! references (fixed mass), and private-tuple islands (disconnected flow
//! components). Half-integrality and min-cut tightness are unit-tested at
//! the `r2t-lp` layer where the flow internals are visible.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use r2t_core::truncation::{LpTruncation, ProjectedLpTruncation, Truncation};
use r2t_core::KernelKind;
use r2t_engine::lineage::ProfileBuilder;
use r2t_engine::QueryProfile;

/// A random graph-shaped workload: islands of private tuples, each result
/// referencing 0, 1, or 2 tuples *within one island* (so distinct islands
/// are provably disconnected flow components).
#[derive(Debug, Clone)]
struct GraphProfile {
    tuples_per_island: usize,
    /// (weight, island, endpoints within the island — 0, 1, or 2 of them).
    results: Vec<(f64, usize, Vec<usize>)>,
}

fn arb_graph() -> impl Strategy<Value = GraphProfile> {
    (1..=3usize, 2..=8usize, 1..=50usize).prop_flat_map(|(islands, per, n)| {
        let result = (0u8..10, 0.05f64..4.0, 0..islands, prop::collection::vec(0..per, 0..=2));
        prop::collection::vec(result, n).prop_map(move |raw| GraphProfile {
            tuples_per_island: per,
            results: raw
                .into_iter()
                // Zero-weight results (~20% of draws) must be carried: they
                // contribute nothing but still appear as LP columns.
                .map(|(zero, w, island, ends)| (if zero < 2 { 0.0 } else { w }, island, ends))
                .collect(),
        })
    })
}

fn build(g: &GraphProfile) -> QueryProfile {
    let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
    for (w, island, ends) in &g.results {
        let base = (island * g.tuples_per_island) as u64;
        b.add_result(*w, ends.iter().map(|&e| base + e as u64));
    }
    b.build()
}

/// Race grid: descending powers of two, a fractional τ, τ = 0, and a τ far
/// past every plausible saturation point.
fn race_taus(p: &QueryProfile) -> Vec<f64> {
    let mut taus: Vec<f64> = (1..=8u32).rev().map(|j| (1u64 << j) as f64).collect();
    taus.push(2.0 * p.max_sensitivity() + 1024.0);
    taus.push(1.5);
    taus.push(0.25);
    taus.push(0.0);
    taus
}

fn assert_kernel_matches_simplex(
    trunc: &dyn Truncation,
    p: &QueryProfile,
) -> Result<(), TestCaseError> {
    let mut kernel = trunc.sweep_session().expect("LP truncations support sweeps");
    prop_assert!(
        kernel.kind() != KernelKind::Simplex,
        "graph workloads must dispatch to a combinatorial kernel"
    );
    let mut simplex = trunc.simplex_sweep_session().expect("simplex oracle available");
    prop_assert!(simplex.kind() == KernelKind::Simplex);
    for tau in race_taus(p) {
        let want = simplex.value(tau);
        let got = kernel.value(tau);
        prop_assert!(
            (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
            "tau={tau}: kernel {got} vs simplex {want}"
        );
        // The racing entry point with a generous cutoff is the same number.
        let raced = kernel.value_racing(tau, &mut |_| true);
        prop_assert!(
            raced.is_some_and(|r| (r - want).abs() <= 1e-6 * (1.0 + want.abs())),
            "tau={tau}: raced {raced:?} vs simplex {want}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matching_kernel_matches_simplex_on_graph_profiles(g in arb_graph()) {
        let p = build(&g);
        prop_assume!(!p.results.is_empty());
        let t = LpTruncation::new(&p);
        assert_kernel_matches_simplex(&t, &p)?;
    }

    /// Projection-free SPJA profiles fold to the SJA LP; the projected
    /// truncation must reach the identical kernel values.
    #[test]
    fn projected_without_groups_matches_simplex(g in arb_graph()) {
        let p = build(&g);
        prop_assume!(!p.results.is_empty());
        let t = ProjectedLpTruncation::new(&p);
        assert_kernel_matches_simplex(&t, &p)?;
    }

    /// Single-reference workloads dispatch to the closed form; same oracle.
    #[test]
    fn closed_form_matches_simplex_on_star_profiles(
        weights in prop::collection::vec(0.0f64..4.0, 1..40),
        owners in prop::collection::vec(0..6usize, 40),
    ) {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for (k, w) in weights.iter().enumerate() {
            if k % 7 == 3 {
                b.add_result(*w, []); // free result: fixed mass
            } else {
                b.add_result(*w, [owners[k] as u64]);
            }
        }
        let p = b.build();
        let t = LpTruncation::new(&p);
        let mut kernel = t.sweep_session().expect("sweep available");
        prop_assert!(kernel.kind() == KernelKind::ClosedForm);
        let mut simplex = t.simplex_sweep_session().expect("oracle available");
        for tau in race_taus(&p) {
            let want = simplex.value(tau);
            let got = kernel.value(tau);
            prop_assert!(
                (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                "tau={tau}: closed form {got} vs simplex {want}"
            );
        }
    }
}

/// A kernel session killed mid-race (cutoff refuses) must keep serving
/// correct values afterwards — the race retries branches after a kill when
/// the bar drops.
#[test]
fn killed_kernel_session_recovers() {
    let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
    for i in 0..40u64 {
        b.add_result(1.0 + (i % 4) as f64 * 0.25, [i % 10, (i + 1) % 10]);
    }
    let p = b.build();
    let t = LpTruncation::new(&p);
    let mut kernel = t.sweep_session().unwrap();
    assert!(kernel.value_racing(64.0, &mut |_| false).is_none(), "hopeless cutoff kills");
    let mut simplex = t.simplex_sweep_session().unwrap();
    for tau in [64.0, 16.0, 4.0, 1.0] {
        let want = simplex.value(tau);
        let got = kernel.value_racing(tau, &mut |_| true).unwrap();
        assert!(
            (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
            "tau={tau}: post-kill kernel {got} vs simplex {want}"
        );
    }
}
