//! The R2T (Race-to-the-Top) mechanism — Section 5 and Algorithm 1.
//!
//! Given a valid truncation `Q(I, τ)`, R2T computes, for geometrically
//! increasing `τ⁽ʲ⁾ = 2ʲ, j = 1 … log₂(GS_Q)`,
//!
//! ```text
//! Q̃(I, τ⁽ʲ⁾) = Q(I, τ⁽ʲ⁾) + Lap(log GS_Q · τ⁽ʲ⁾/ε)
//!                           − log GS_Q · ln(log GS_Q / β) · τ⁽ʲ⁾/ε
//! ```
//!
//! and returns `max(max_j Q̃(I, τ⁽ʲ⁾), Q(I, 0))` (Eqs. 7–8). Each branch is
//! `ε / log GS_Q`-DP, so the whole race is `ε`-DP by basic composition, and
//! Theorem 5.1 bounds the error by `4 log GS_Q · ln(log GS_Q / β) · τ*(I)/ε`
//! with probability `1 − β`.
//!
//! The *early stop* optimization (Algorithm 1) pre-draws all noise terms,
//! runs the races from the largest `τ` down, and kills a branch as soon as
//! the LP's decreasing dual upper bound plus the branch's (fixed) shift can
//! no longer beat the current winner. With `parallel = true` branches run on
//! scoped threads and share the winner through an atomic.

use crate::noise::laplace;
use crate::truncation::{self, SweepBranchSolver, Truncation};
use crate::Mechanism;
use r2t_engine::QueryProfile;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration for R2T.
///
/// Construct through [`R2TConfig::builder`] (or [`R2TConfig::new`] for the
/// default execution strategy); the struct is `#[non_exhaustive]` so knobs
/// can be added without breaking downstream crates. Individual fields stay
/// public and may be reassigned after construction.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct R2TConfig {
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Failure probability β of the utility guarantee (does not affect
    /// privacy). The paper's experiments use 0.1.
    pub beta: f64,
    /// Assumed global sensitivity `GS_Q` (an upper bound promised by the
    /// analyst; public information).
    pub gs: f64,
    /// Enable the early-stop optimization (Algorithm 1).
    pub early_stop: bool,
    /// Solve the branches on multiple threads.
    pub parallel: bool,
    /// Reuse simplex bases across adjacent τ-branches (the warm-started
    /// branch sweep). Affects runtime only; values agree with cold solves to
    /// solver tolerance.
    pub warm_sweep: bool,
    /// How often (in simplex iterations) each branch LP checks the racing
    /// cutoff and reports progress.
    pub event_every: usize,
}

impl Default for R2TConfig {
    fn default() -> Self {
        R2TConfig {
            epsilon: 0.8,
            beta: 0.1,
            gs: (1u64 << 20) as f64,
            early_stop: true,
            parallel: true,
            warm_sweep: true,
            event_every: 16,
        }
        .normalized()
    }
}

impl R2TConfig {
    fn normalized(mut self) -> Self {
        self.gs = self.gs.max(2.0);
        self
    }

    /// Number of race branches: `log₂(GS_Q)`, rounded up.
    pub fn num_branches(&self) -> u32 {
        (self.gs.max(2.0)).log2().ceil() as u32
    }
}

/// A convenience constructor: ε, β, GS.
impl R2TConfig {
    /// Creates a config with the given privacy/utility parameters and the
    /// default execution strategy (early stop, parallel).
    pub fn new(epsilon: f64, beta: f64, gs: f64) -> Self {
        R2TConfig { epsilon, beta, gs, ..R2TConfig::default() }.normalized()
    }

    /// Starts a builder. The privacy/utility parameters (ε, β, `GS_Q`) are
    /// required up front; execution knobs are chained:
    ///
    /// ```
    /// let cfg = r2t_core::R2TConfig::builder(1.0, 0.1, 4096.0)
    ///     .early_stop(false)
    ///     .parallel(false)
    ///     .build();
    /// assert_eq!(cfg.num_branches(), 12);
    /// ```
    pub fn builder(epsilon: f64, beta: f64, gs: f64) -> R2TConfigBuilder {
        R2TConfigBuilder { cfg: R2TConfig { epsilon, beta, gs, ..R2TConfig::default() } }
    }

    /// This config with a different ε (all other knobs kept). The per-charge
    /// override a serving session applies on top of its base config.
    pub fn with_epsilon(&self, epsilon: f64) -> R2TConfig {
        let mut cfg = self.clone();
        cfg.epsilon = epsilon;
        cfg
    }
}

/// Chained builder for [`R2TConfig`]; see [`R2TConfig::builder`].
#[derive(Debug, Clone)]
pub struct R2TConfigBuilder {
    cfg: R2TConfig,
}

impl R2TConfigBuilder {
    /// Enable/disable the early-stop optimization (Algorithm 1).
    pub fn early_stop(mut self, on: bool) -> Self {
        self.cfg.early_stop = on;
        self
    }

    /// Solve race branches on multiple threads.
    pub fn parallel(mut self, on: bool) -> Self {
        self.cfg.parallel = on;
        self
    }

    /// Reuse simplex bases across adjacent τ-branches.
    pub fn warm_sweep(mut self, on: bool) -> Self {
        self.cfg.warm_sweep = on;
        self
    }

    /// Racing-cutoff check cadence, in simplex iterations.
    pub fn event_every(mut self, iterations: usize) -> Self {
        self.cfg.event_every = iterations;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> R2TConfig {
        self.cfg.normalized()
    }
}

/// Outcome of one race branch.
#[derive(Debug, Clone)]
pub struct BranchReport {
    /// The truncation threshold τ⁽ʲ⁾.
    pub tau: f64,
    /// `Q(I, τ)` if the branch ran to completion (`None` if early-stopped).
    pub lp_value: Option<f64>,
    /// The shifted noisy estimate `Q̃(I, τ)` (only when completed).
    pub shifted: Option<f64>,
    /// Wall-clock time spent on this branch.
    pub seconds: f64,
}

/// Full diagnostic output of an R2T run.
#[derive(Debug, Clone)]
pub struct R2TReport {
    /// The privatized answer `Q̃(I)`.
    pub output: f64,
    /// Per-branch details, in increasing τ order.
    pub branches: Vec<BranchReport>,
    /// Index (into `branches`) of the winning branch, if any branch beat
    /// `Q(I, 0)`.
    pub winner: Option<usize>,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

/// The R2T mechanism.
#[derive(Debug, Clone, Default)]
pub struct R2T {
    /// Configuration.
    pub config: R2TConfig,
}

impl R2T {
    /// Creates an R2T mechanism with the given configuration.
    pub fn new(config: R2TConfig) -> Self {
        R2T { config }
    }

    /// Runs R2T on a profile, choosing the paper's truncation automatically
    /// (SJA LP, or the projected LP when the query has a projection).
    pub fn run_profile(&self, profile: &QueryProfile, rng: &mut dyn RngCore) -> R2TReport {
        let trunc = truncation::for_profile_with(profile, self.config.event_every);
        self.run_with(trunc.as_ref(), rng)
    }

    /// Runs R2T with an explicit truncation method.
    pub fn run_with(&self, trunc: &dyn Truncation, rng: &mut dyn RngCore) -> R2TReport {
        let start = Instant::now();
        let _run_span = r2t_obs::span("r2t.run");
        let cfg = &self.config;
        let log_gs = cfg.num_branches().max(1) as f64;
        let nb = cfg.num_branches().max(1) as usize;
        let penalty_unit = log_gs * (log_gs / cfg.beta).ln() / cfg.epsilon;

        // All attributes here are public mechanism parameters. Per-release
        // lifecycle events are Full-tier: at serving throughput (~1M
        // releases/s) even a counter bump per release is measurable, and the
        // Counters tier's aggregate view of the same information is the
        // answer/latency histograms.
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "r2t.race.start",
                &[
                    ("branches", r2t_obs::Attr::U64(nb as u64)),
                    ("epsilon", r2t_obs::Attr::F64(cfg.epsilon)),
                    ("gs", r2t_obs::Attr::F64(cfg.gs)),
                    ("early_stop", r2t_obs::Attr::Bool(cfg.early_stop)),
                    ("parallel", r2t_obs::Attr::Bool(cfg.parallel)),
                    ("warm_sweep", r2t_obs::Attr::Bool(cfg.warm_sweep)),
                ],
            );
        }

        // Pre-draw all noise so early stop cannot leak through the noise
        // stream (and so with/without early stop are comparable). Only the
        // *count* of draws is recorded — a draw's value next to the released
        // output would reconstruct the true branch value.
        let taus: Vec<f64> = (1..=nb).map(|j| (1u64 << j) as f64).collect();
        let shifts: Vec<f64> = taus
            .iter()
            .map(|&tau| laplace(rng, log_gs * tau / cfg.epsilon) - penalty_unit * tau)
            .collect();
        r2t_obs::counter_add("r2t.noise.draws", nb as u64);

        let base = trunc.value(0.0);
        let mut reports: Vec<BranchReport> = taus
            .iter()
            .map(|&tau| BranchReport { tau, lp_value: None, shifted: None, seconds: 0.0 })
            .collect();

        // Branches are processed from the largest τ down in both modes: the
        // paper observes those LPs terminate fastest under early stop, and
        // the warm-started sweep wants descending τ so every reduced LP is a
        // prefix-extension of the previous one (basis reuse).
        let order: Vec<usize> = (0..nb).rev().collect();
        // A fresh worker-local solver session (shared LP structure, private
        // basis chain + workspace). `None` falls back to the stateless path.
        let new_session = || -> Option<Box<dyn SweepBranchSolver + '_>> {
            if cfg.warm_sweep {
                trunc.sweep_session()
            } else {
                None
            }
        };
        let threads = if cfg.parallel && nb > 1 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(nb)
        } else {
            1
        };

        if cfg.early_stop {
            // Shared winner through an atomic max-register.
            let best = AtomicF64::new(base);
            let next = AtomicUsize::new(0);
            let run_branch =
                |j: usize, session: &mut Option<Box<dyn SweepBranchSolver + '_>>| -> BranchReport {
                    let tau = taus[j];
                    let shift = shifts[j];
                    let _branch_span = r2t_obs::span("r2t.branch");
                    let t0 = Instant::now();
                    // The cutoff check is the progress granule `event_every`
                    // configures; counting it here makes branch progress
                    // observable instead of silently discarded.
                    let mut keep_going = |ub: f64| {
                        r2t_obs::counter_add("r2t.progress.checks", 1);
                        ub + shift > best.load()
                    };
                    let value = match session.as_mut() {
                        Some(s) => s.value_racing(tau, &mut keep_going),
                        None => trunc.value_racing(tau, &mut keep_going),
                    };
                    if let Some(v) = value {
                        best.fetch_max(v + shift);
                    }
                    let report = BranchReport {
                        tau,
                        lp_value: value,
                        shifted: value.map(|v| v + shift),
                        seconds: t0.elapsed().as_secs_f64(),
                    };
                    record_branch(&report, session.is_some());
                    report
                };
            if threads > 1 {
                let results: Vec<(usize, BranchReport)> = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for _ in 0..threads {
                        let next = &next;
                        let order = &order;
                        let run_branch = &run_branch;
                        let new_session = &new_session;
                        handles.push(scope.spawn(move || {
                            let mut session = new_session();
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= order.len() {
                                    break;
                                }
                                let j = order[i];
                                out.push((j, run_branch(j, &mut session)));
                            }
                            out
                        }));
                    }
                    handles.into_iter().flat_map(|h| h.join().expect("branch panicked")).collect()
                });
                for (j, r) in results {
                    reports[j] = r;
                }
            } else {
                let mut session = new_session();
                for &j in &order {
                    reports[j] = run_branch(j, &mut session);
                }
            }
        } else {
            // Plain R2T: evaluate every branch fully.
            let run_branch =
                |j: usize, session: &mut Option<Box<dyn SweepBranchSolver + '_>>| -> BranchReport {
                    let _branch_span = r2t_obs::span("r2t.branch");
                    let t0 = Instant::now();
                    let v = match session.as_mut() {
                        Some(s) => s.value(taus[j]),
                        None => trunc.value(taus[j]),
                    };
                    let report = BranchReport {
                        tau: taus[j],
                        lp_value: Some(v),
                        shifted: Some(v + shifts[j]),
                        seconds: t0.elapsed().as_secs_f64(),
                    };
                    record_branch(&report, session.is_some());
                    report
                };
            if threads > 1 {
                let next = AtomicUsize::new(0);
                let results: Vec<(usize, BranchReport)> = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for _ in 0..threads {
                        let next = &next;
                        let order = &order;
                        let run_branch = &run_branch;
                        let new_session = &new_session;
                        handles.push(scope.spawn(move || {
                            let mut session = new_session();
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= order.len() {
                                    break;
                                }
                                let j = order[i];
                                out.push((j, run_branch(j, &mut session)));
                            }
                            out
                        }));
                    }
                    handles.into_iter().flat_map(|h| h.join().expect("branch panicked")).collect()
                });
                for (j, r) in results {
                    reports[j] = r;
                }
            } else {
                let mut session = new_session();
                for &j in &order {
                    reports[j] = run_branch(j, &mut session);
                }
            }
        }

        let (output, winner) = pick_winner(&reports, base);
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "r2t.race.done",
                &[
                    // `output` is the released ε-DP answer; the winning τ is
                    // a function of the released per-branch noisy estimates —
                    // both already covered by the privacy budget.
                    ("output", r2t_obs::Attr::F64(output)),
                    ("winner_tau", r2t_obs::Attr::F64(winner.map_or(0.0, |i| reports[i].tau))),
                    ("base_won", r2t_obs::Attr::Bool(winner.is_none())),
                ],
            );
        }
        R2TReport { output, branches: reports, winner, seconds: start.elapsed().as_secs_f64() }
    }

    /// Runs R2T over *precomputed* branch values: draws the same noise stream
    /// as [`Self::run_with`] (one Laplace sample per branch, ascending τ) and
    /// takes the shifted maximum of Eq. 8, but spends no solver time.
    ///
    /// `Q(I, τ)` is a deterministic, pre-noise function of the instance, so a
    /// serving layer may evaluate the τ grid once per query and then answer
    /// repeated (separately budgeted) charges from the cache — each call here
    /// still draws fresh noise and is a full ε-DP release. The output is
    /// bit-identical to [`Self::run_with`] in the sequential
    /// no-early-stop mode that [`BranchValues::compute`] mirrors, and agrees
    /// to solver tolerance with every other execution mode.
    ///
    /// Panics if `values` was computed for a different τ grid than
    /// `self.config.num_branches()` implies.
    pub fn run_cached(&self, values: &BranchValues, rng: &mut dyn RngCore) -> R2TReport {
        let start = Instant::now();
        let _run_span = r2t_obs::span("r2t.run");
        let cfg = &self.config;
        let log_gs = cfg.num_branches().max(1) as f64;
        let nb = cfg.num_branches().max(1) as usize;
        assert_eq!(
            nb,
            values.values.len(),
            "BranchValues computed for a different GS grid ({} branches, config wants {nb})",
            values.values.len(),
        );
        let penalty_unit = log_gs * (log_gs / cfg.beta).ln() / cfg.epsilon;
        // Full-tier, as in `run_with`: this is the serving fast path, where
        // per-release event bumps are a measurable throughput tax.
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "r2t.race.start",
                &[
                    ("branches", r2t_obs::Attr::U64(nb as u64)),
                    ("epsilon", r2t_obs::Attr::F64(cfg.epsilon)),
                    ("gs", r2t_obs::Attr::F64(cfg.gs)),
                    ("cached", r2t_obs::Attr::Bool(true)),
                ],
            );
        }
        // The exact noise stream of `run_with`: one draw per branch in
        // ascending-τ order, shifted down by the branch's own noise scale.
        let reports: Vec<BranchReport> = (1..=nb)
            .map(|j| {
                let tau = (1u64 << j) as f64;
                let shift = laplace(rng, log_gs * tau / cfg.epsilon) - penalty_unit * tau;
                let v = values.values[j - 1];
                BranchReport { tau, lp_value: Some(v), shifted: Some(v + shift), seconds: 0.0 }
            })
            .collect();
        // Full-tier on this path only: the cached race is the serving fast
        // path, and its draw count is structurally `answers × branches`
        // (every release draws every branch — early stop never skips draws).
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::counter_add("r2t.noise.draws", nb as u64);
        }
        let (output, winner) = pick_winner(&reports, values.base);
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "r2t.race.done",
                &[
                    ("output", r2t_obs::Attr::F64(output)),
                    ("winner_tau", r2t_obs::Attr::F64(winner.map_or(0.0, |i| reports[i].tau))),
                    ("base_won", r2t_obs::Attr::Bool(winner.is_none())),
                ],
            );
        }
        R2TReport { output, branches: reports, winner, seconds: start.elapsed().as_secs_f64() }
    }
}

/// The pre-noise half of an R2T run: `Q(I, 0)` plus `Q(I, τ⁽ʲ⁾)` for the
/// geometric τ grid. Deterministic per (profile, grid) — no randomness is
/// consumed computing it — so it can be cached and replayed by
/// [`R2T::run_cached`] across any number of separately budgeted answers.
///
/// **DP-safety**: these are raw query evaluations. A cache entry must be
/// treated like the instance itself — never released without noise, and never
/// reused beyond the lifetime of the instance it was computed on.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchValues {
    /// `Q(I, 0)` — the no-noise floor of Eq. 8.
    pub base: f64,
    /// `Q(I, 2ʲ)` for `j = 1 ..= num_branches`, ascending.
    pub values: Vec<f64>,
}

impl BranchValues {
    /// Number of branches in the grid.
    pub fn num_branches(&self) -> usize {
        self.values.len()
    }

    /// Evaluates the τ grid with the same descending warm-sweep chain the
    /// sequential no-early-stop race uses (one [`SweepBranchSolver`] session
    /// fed τ values largest-first when `warm_sweep` is set), so the cached
    /// values — and therefore [`R2T::run_cached`]'s outputs — are
    /// bit-identical to that mode of [`R2T::run_with`].
    pub fn compute(trunc: &dyn Truncation, num_branches: u32, warm_sweep: bool) -> Self {
        let nb = num_branches.max(1) as usize;
        let mut values = vec![0.0f64; nb];
        let mut session = if warm_sweep { trunc.sweep_session() } else { None };
        for j in (1..=nb).rev() {
            let tau = (1u64 << j) as f64;
            values[j - 1] = match session.as_mut() {
                Some(s) => s.value(tau),
                None => trunc.value(tau),
            };
        }
        BranchValues { base: trunc.value(0.0), values }
    }

    /// [`Self::compute`] with the truncation method picked for the profile
    /// the way [`R2T::run_profile`] picks it, honouring the config's grid
    /// depth, warm-sweep setting, and cutoff cadence.
    pub fn for_profile(profile: &QueryProfile, cfg: &R2TConfig) -> Self {
        Self::for_profile_grid(profile, cfg.num_branches(), cfg.warm_sweep, cfg.event_every)
    }

    /// [`Self::for_profile`] with the grid parameters spelled out instead of
    /// taken from an [`R2TConfig`]. The computation is deterministic in
    /// `(profile, branches, warm_sweep)`: recomputing over a profile that
    /// compares equal yields bitwise-equal values, which is what lets a
    /// prepared-query cache revalidate entries after a data mutation — an
    /// incrementally patched profile that matches the from-scratch rebuild
    /// reproduces exactly the branch values a rebuild would have produced.
    pub fn for_profile_grid(
        profile: &QueryProfile,
        branches: u32,
        warm_sweep: bool,
        event_every: usize,
    ) -> Self {
        let trunc = truncation::for_profile_with(profile, event_every);
        Self::compute(trunc.as_ref(), branches, warm_sweep)
    }
}

/// Emits a branch lifecycle event. Records the τ, the *noisy shifted*
/// estimate (released, budget-covered), and the wall time — never the raw
/// pre-noise `lp_value`, which is not DP-protected.
fn record_branch(report: &BranchReport, warm_sweep: bool) {
    // Full-tier only: a race is ~10 branches per release, so per-branch
    // events on the serving fast path would cost more than the release
    // itself. The Counters-tier aggregate is the latency histograms.
    if !r2t_obs::enabled(r2t_obs::Level::Full) {
        return;
    }
    match report.shifted {
        Some(shifted) => r2t_obs::event(
            "r2t.branch.completed",
            &[
                ("tau", r2t_obs::Attr::F64(report.tau)),
                ("shifted", r2t_obs::Attr::F64(shifted)),
                ("secs", r2t_obs::Attr::F64(report.seconds)),
                ("warm_sweep", r2t_obs::Attr::Bool(warm_sweep)),
            ],
        ),
        None => r2t_obs::event(
            "r2t.branch.killed",
            &[
                ("tau", r2t_obs::Attr::F64(report.tau)),
                ("reason", r2t_obs::Attr::Str("dual-bound-cutoff")),
                ("secs", r2t_obs::Attr::F64(report.seconds)),
                ("warm_sweep", r2t_obs::Attr::Bool(warm_sweep)),
            ],
        ),
    }
}

/// Exact post-hoc maximum over the completed branches: the output is
/// `max(base, max_j shifted_j)` and the winner is the lowest-index branch
/// attaining it strictly above `base`. Identical values tie toward the
/// smaller τ, deterministically — no float matching against a recomputed
/// output (completed-branch sets, and therefore the winner, are the same in
/// every execution mode because early stop only skips branches that cannot
/// win).
fn pick_winner(reports: &[BranchReport], base: f64) -> (f64, Option<usize>) {
    let mut output = base;
    let mut winner = None;
    for (i, r) in reports.iter().enumerate() {
        if let Some(s) = r.shifted {
            if s > output {
                output = s;
                winner = Some(i);
            }
        }
    }
    (output, winner)
}

impl Mechanism for R2T {
    fn name(&self) -> String {
        if self.config.early_stop {
            "R2T".to_string()
        } else {
            "R2T (no early stop)".to_string()
        }
    }

    fn run(&self, profile: &QueryProfile, rng: &mut dyn RngCore) -> Option<f64> {
        Some(self.run_profile(profile, rng).output)
    }
}

/// An `f64` max-register built on `AtomicU64` bit transmutation.
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    fn fetch_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            if v <= f64::from_bits(cur) {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truncation::test_support::example_6_2_profile;
    use crate::truncation::LpTruncation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> R2TConfig {
        // Example 6.2's setting: GS = 256, ε = 1, β = 0.1.
        R2TConfig {
            epsilon: 1.0,
            beta: 0.1,
            gs: 256.0,
            early_stop: false,
            parallel: false,
            ..R2TConfig::default()
        }
    }

    #[test]
    fn num_branches_matches_log() {
        assert_eq!(R2TConfig::new(1.0, 0.1, 256.0).num_branches(), 8);
        assert_eq!(R2TConfig::new(1.0, 0.1, 1e6).num_branches(), 20);
        assert_eq!(R2TConfig::new(1.0, 0.1, 2.0).num_branches(), 1);
    }

    #[test]
    fn output_below_true_answer_whp() {
        let p = example_6_2_profile();
        let q = p.query_result();
        let r2t = R2T::new(cfg());
        let mut rng = StdRng::seed_from_u64(1);
        let mut above = 0;
        let runs = 30;
        for _ in 0..runs {
            let t = LpTruncation::new(&p);
            let out = r2t.run_with(&t, &mut rng).output;
            if out > q {
                above += 1;
            }
        }
        // β/2 = 0.05 expected; allow generous slack.
        assert!(above <= 6, "output exceeded Q(I) {above}/{runs} times");
    }

    #[test]
    fn error_bound_of_theorem_5_1() {
        let p = example_6_2_profile();
        let q = p.query_result();
        let c = cfg();
        let r2t = R2T::new(c.clone());
        let log_gs = c.num_branches() as f64;
        let bound = 4.0 * log_gs * (log_gs / c.beta).ln() * 32.0 / c.epsilon; // τ* = 32
        let mut rng = StdRng::seed_from_u64(2);
        let runs = 25;
        let mut violations = 0;
        for _ in 0..runs {
            let t = LpTruncation::new(&p);
            let out = r2t.run_with(&t, &mut rng).output;
            if (q - out) > bound {
                violations += 1;
            }
        }
        assert!(violations <= 6, "error bound violated {violations}/{runs}");
    }

    #[test]
    fn early_stop_equals_plain_given_same_noise() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let mut c = cfg();
        let plain = R2T::new(c.clone());
        c.early_stop = true;
        let early = R2T::new(c);
        // Same seed → same pre-drawn noise → identical outputs.
        let mut rng1 = StdRng::seed_from_u64(77);
        let mut rng2 = StdRng::seed_from_u64(77);
        let a = plain.run_with(&t, &mut rng1).output;
        let b = early.run_with(&t, &mut rng2).output;
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn parallel_equals_sequential() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let mut c = cfg();
        c.early_stop = true;
        let seq = R2T::new(c.clone());
        c.parallel = true;
        let par = R2T::new(c);
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let a = seq.run_with(&t, &mut rng1).output;
        let b = par.run_with(&t, &mut rng2).output;
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn report_contains_all_branches() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let r2t = R2T::new(cfg());
        let mut rng = StdRng::seed_from_u64(3);
        let rep = r2t.run_with(&t, &mut rng);
        assert_eq!(rep.branches.len(), 8);
        assert_eq!(rep.branches[0].tau, 2.0);
        assert_eq!(rep.branches[7].tau, 256.0);
        assert!(rep.branches.iter().all(|b| b.lp_value.is_some()));
        // With τ ≥ 32 the LP value is the exact answer.
        assert!((rep.branches[5].lp_value.unwrap() - 9992.0).abs() < 1e-4);
    }

    #[test]
    fn builder_matches_literal_and_normalizes() {
        let b = R2TConfig::builder(1.0, 0.1, 256.0)
            .early_stop(false)
            .parallel(false)
            .warm_sweep(false)
            .event_every(32)
            .build();
        assert_eq!(b.epsilon, 1.0);
        assert_eq!(b.beta, 0.1);
        assert_eq!(b.gs, 256.0);
        assert!(!b.early_stop && !b.parallel && !b.warm_sweep);
        assert_eq!(b.event_every, 32);
        // GS is clamped exactly like the literal constructors do.
        assert_eq!(R2TConfig::builder(1.0, 0.1, 0.5).build().gs, 2.0);
        let e = R2TConfig::builder(1.0, 0.1, 256.0).build().with_epsilon(0.25);
        assert_eq!(e.epsilon, 0.25);
        assert_eq!(e.gs, 256.0);
    }

    #[test]
    fn cached_values_reproduce_sequential_run_bitwise() {
        let p = example_6_2_profile();
        for warm in [false, true] {
            let mut c = cfg(); // early_stop = false, parallel = false
            c.warm_sweep = warm;
            let r2t = R2T::new(c.clone());
            let t = LpTruncation::new(&p);
            let values = BranchValues::compute(&t, c.num_branches(), warm);
            assert_eq!(values.num_branches(), 8);
            for seed in 0..5 {
                let mut rng1 = StdRng::seed_from_u64(seed);
                let mut rng2 = StdRng::seed_from_u64(seed);
                let t2 = LpTruncation::new(&p);
                let full = r2t.run_with(&t2, &mut rng1);
                let cached = r2t.run_cached(&values, &mut rng2);
                assert_eq!(
                    full.output.to_bits(),
                    cached.output.to_bits(),
                    "warm={warm} seed={seed}: {} vs {}",
                    full.output,
                    cached.output
                );
                assert_eq!(full.winner, cached.winner);
            }
        }
    }

    #[test]
    fn cached_run_consumes_same_noise_stream() {
        // After a cached run the RNG must sit exactly where a full run would
        // leave it: one draw per branch, nothing else.
        let p = example_6_2_profile();
        let c = cfg();
        let r2t = R2T::new(c.clone());
        let values = BranchValues::for_profile(&p, &c);
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let t = LpTruncation::new(&p);
        r2t.run_with(&t, &mut rng1);
        r2t.run_cached(&values, &mut rng2);
        assert_eq!(rng1.next_u64(), rng2.next_u64());
    }

    #[test]
    #[should_panic(expected = "different GS grid")]
    fn cached_run_rejects_mismatched_grid() {
        let p = example_6_2_profile();
        let values = BranchValues::for_profile(&p, &cfg()); // 8 branches
        let other = R2T::new(R2TConfig::builder(1.0, 0.1, 1024.0).build()); // 10
        let mut rng = StdRng::seed_from_u64(1);
        other.run_cached(&values, &mut rng);
    }

    #[test]
    fn empty_profile_returns_zero_ish() {
        let b: r2t_engine::lineage::ProfileBuilder<u64> =
            r2t_engine::lineage::ProfileBuilder::new();
        let p = b.build();
        let r2t = R2T::new(cfg());
        let mut rng = StdRng::seed_from_u64(4);
        let out = r2t.run_profile(&p, &mut rng).output;
        assert_eq!(out, 0.0);
    }
}
