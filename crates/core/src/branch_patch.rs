//! Incremental maintenance of [`BranchValues`] under result-line deltas.
//!
//! [`BranchValues::compute`] replays the whole query profile through the
//! truncation grid — `O(results)` per branch even when the sweep dispatches
//! to the closed-form kernel. After a small write, the serving layer knows
//! *exactly* which result lines appeared and disappeared (the engine's
//! delta-join report), and for the closed-form regime that is enough to
//! patch the branch values in `O(delta)` without ever replaying the profile.
//!
//! # Why the patch is bitwise-exact
//!
//! The closed-form kernel evaluates every branch as
//!
//! ```text
//! Q(I, τ) = (fixed + Σ_{S_k ≤ τ} S_k) + τ · #{k : S_k > τ}
//! ```
//!
//! over per-private-tuple sensitivity sums `S_k = Σ ψ` and the `fixed`
//! weight of lines referencing no private tuple. [`BranchPatcher`] engages
//! only when every quantity in that expression is an exact nonnegative
//! integer small enough (≤ 2⁵¹) that f64 arithmetic over it is exact — the
//! COUNT-query regime, where all ψ are small integers. Then the sums,
//! prefix accumulations, and comparisons are order-independent, so a
//! hash-map of integer sums maintained under line inserts/removals
//! reproduces, bit for bit, what a from-scratch kernel build over the
//! patched profile would produce. Arming additionally *verifies* the mirror
//! against the canonically computed values before trusting it.
//!
//! Everything outside that regime — warm sweep disabled (the stateless path
//! runs presolve + simplex, which only agrees to tolerance), fractional or
//! huge weights, multi-reference lines (the matching/simplex kernels),
//! grouped profiles — refuses to arm or disengages on patch, and the caller
//! falls back to the full recompute.

use crate::BranchValues;
use std::collections::{BTreeMap, HashMap};

/// Largest magnitude we allow any maintained integer aggregate to reach.
/// Well under 2⁵³ so every intermediate f64 add of two aggregates is exact.
const MAX_EXACT: i64 = 1 << 51;

/// Incrementally maintained mirror of the closed-form branch-value kernel
/// for one prepared query. Feed it the engine's line-level change report
/// ([`patch`][Self::patch]); read back [`values`][Self::values] and
/// [`summary`][Self::summary_parts] without touching the profile.
#[derive(Debug)]
pub struct BranchPatcher {
    /// Grid depth: values are evaluated at τ = 2¹ .. 2^branches.
    branches: u32,
    /// Per raw private key: (number of referencing lines, exact sensitivity
    /// sum `S_k`). Keys are the view's stable packed identifiers.
    sums: HashMap<u64, (u32, i64)>,
    /// Sensitivity histogram: `S` → number of keys whose sum is `S`.
    hist: BTreeMap<i64, u32>,
    /// Σ weight of lines referencing no private tuple (the kernel's fixed
    /// contribution). Invariant under patches — changes disengage.
    fixed: i64,
    /// Number of no-reference lines (tracked to keep `fixed`'s invariance
    /// honest even for weight-0 lines).
    no_ref_lines: usize,
    /// Σ weight over all lines (the summary's `query_result`).
    total: i64,
    /// Total surviving lines.
    lines: usize,
}

/// `true` iff `w` is a nonnegative integer small enough for exact f64
/// arithmetic after aggregation.
fn exact_weight(w: f64) -> bool {
    w.is_finite() && w >= 0.0 && w.fract() == 0.0 && w <= MAX_EXACT as f64
}

impl BranchPatcher {
    /// Arms a patcher over the current result lines iff the closed-form
    /// exactness conditions hold, verifying the mirrored evaluation against
    /// `canonical` (the values just computed from scratch) bit for bit.
    ///
    /// `lines` yields `(weight, raw private keys)` for every surviving
    /// result — [`IncrementalView::raw_lines`] order, though order is
    /// irrelevant here. Returns `None` whenever any gate fails; the caller
    /// then stays on the full-recompute path.
    ///
    /// [`IncrementalView::raw_lines`]: r2t_engine::IncrementalView::raw_lines
    pub fn try_new<'a, I>(
        lines: I,
        canonical: &BranchValues,
        branches: u32,
        warm_sweep: bool,
    ) -> Option<BranchPatcher>
    where
        I: IntoIterator<Item = (f64, &'a [u64])>,
    {
        // Without the warm sweep the grid is evaluated by the stateless
        // presolve+simplex path, which the mirror only matches to tolerance.
        if !warm_sweep || branches == 0 || branches > 62 {
            return None;
        }
        let mut p = BranchPatcher {
            branches,
            sums: HashMap::new(),
            hist: BTreeMap::new(),
            fixed: 0,
            no_ref_lines: 0,
            total: 0,
            lines: 0,
        };
        for (w, refs) in lines {
            if !p.add_line(w, refs) {
                return None;
            }
        }
        // An empty profile short-circuits `compute` entirely (base +0.0, no
        // kernel); the first insert would then flip `base`'s bits. Refuse.
        if p.lines == 0 {
            return None;
        }
        // The analytic argument says the mirror now reproduces the kernel;
        // make it an enforced fact before anyone trusts a patched value.
        let mine = p.values();
        let ok = mine.base.to_bits() == canonical.base.to_bits()
            && mine.values.len() == canonical.values.len()
            && mine.values.iter().zip(&canonical.values).all(|(a, b)| a.to_bits() == b.to_bits());
        if !ok {
            r2t_obs::counter_add("core.branch_patch.arm_mismatch", 1);
            return None;
        }
        Some(p)
    }

    /// Applies one step's line changes. Returns `false` — leaving the
    /// patcher poisoned, the caller must discard it — when any removed or
    /// added line falls outside the exactness regime: multi-reference
    /// lines, fractional/negative/huge weights, an aggregate overflowing
    /// the exact range, removal of a line that was never added, or the line
    /// set emptying (an empty profile short-circuits `compute` and derives
    /// its `base` bits differently).
    pub fn patch(&mut self, removed: &[(f64, Box<[u64]>)], added: &[(f64, Box<[u64]>)]) -> bool {
        for (w, refs) in removed {
            if !self.remove_line(*w, refs) {
                return false;
            }
        }
        for (w, refs) in added {
            if !self.add_line(*w, refs) {
                return false;
            }
        }
        self.lines > 0
    }

    fn add_line(&mut self, w: f64, refs: &[u64]) -> bool {
        if !exact_weight(w) || refs.len() > 1 {
            return false;
        }
        let wi = w as i64;
        self.total += wi;
        if self.total > MAX_EXACT {
            return false;
        }
        self.lines += 1;
        match refs.first() {
            None => {
                self.fixed += wi;
                self.no_ref_lines += 1;
            }
            Some(&k) => {
                let (count, sum) = self.sums.entry(k).or_insert((0, 0));
                if *count > 0 {
                    Self::hist_dec(&mut self.hist, *sum);
                }
                *count += 1;
                *sum += wi;
                let s = *sum;
                *self.hist.entry(s).or_insert(0) += 1;
            }
        }
        true
    }

    fn remove_line(&mut self, w: f64, refs: &[u64]) -> bool {
        if !exact_weight(w) || refs.len() > 1 {
            return false;
        }
        let wi = w as i64;
        match refs.first() {
            None => {
                if self.no_ref_lines == 0 || self.fixed < wi {
                    return false;
                }
                self.fixed -= wi;
                self.no_ref_lines -= 1;
            }
            Some(k) => {
                let Some((count, sum)) = self.sums.get_mut(k) else { return false };
                if *count == 0 || *sum < wi {
                    return false;
                }
                Self::hist_dec(&mut self.hist, *sum);
                *count -= 1;
                *sum -= wi;
                if *count == 0 {
                    // A key with no referencing lines has no LP row at all
                    // (even if its residual sum were nonzero, count 0 forces
                    // sum 0 for nonnegative weights).
                    self.sums.remove(k);
                } else {
                    let s = *sum;
                    *self.hist.entry(s).or_insert(0) += 1;
                }
            }
        }
        self.lines -= 1;
        self.total -= wi;
        true
    }

    fn hist_dec(hist: &mut BTreeMap<i64, u32>, s: i64) {
        if let Some(n) = hist.get_mut(&s) {
            *n -= 1;
            if *n == 0 {
                hist.remove(&s);
            }
        }
    }

    /// Branch values over the current state, mirroring
    /// [`BranchValues::compute`] on the warm closed-form path bit for bit:
    /// `values[j-1] = (fixed + Σ_{S ≤ 2^j} S) + 2^j · #{S > 2^j}`.
    pub fn values(&self) -> BranchValues {
        // Ascending (sum, count) entries with cumulative counts and sums —
        // the kernel's sorted `sums`/`prefix`, deduplicated.
        let entries: Vec<(i64, u32)> = self.hist.iter().map(|(&s, &n)| (s, n)).collect();
        let total_keys: u64 = entries.iter().map(|&(_, n)| n as u64).sum();
        let nb = self.branches as usize;
        let mut values = vec![0.0f64; nb];
        let mut idx = 0usize; // entries[..idx] have sum ≤ τ
        let mut below: i64 = 0; // Σ sums over those entries
        let mut keys_below: u64 = 0;
        for (j, slot) in values.iter_mut().enumerate() {
            let tau_int: i64 = 1i64 << (j + 1);
            while idx < entries.len() && entries[idx].0 <= tau_int {
                below += entries[idx].0 * entries[idx].1 as i64;
                keys_below += entries[idx].1 as u64;
                idx += 1;
            }
            let tau = (1u64 << (j + 1)) as f64;
            *slot = (self.fixed + below) as f64 + tau * ((total_keys - keys_below) as f64);
        }
        // `value(0.0)` is the no-reference filtered sum, folded from the
        // -0.0 additive identity: -0.0 when the filter is empty, else the
        // exact integer total (order-independent for exact integers).
        let base = if self.no_ref_lines == 0 { -0.0 } else { self.fixed as f64 };
        BranchValues { base, values }
    }

    /// The pieces of a [`ProfileSummary`] this state determines, exactly as
    /// a replayed profile would compute them:
    /// `(results, num_private, query_result, max_sensitivity)`.
    /// Under the arm gates `max_refs = (num_private > 0) as usize` and
    /// `unit_refs = true`; `is_projection = false`.
    ///
    /// [`ProfileSummary`]: r2t_engine::ProfileSummary
    pub fn summary_parts(&self) -> (usize, usize, f64, f64) {
        // An empty `.sum::<f64>()` is -0.0 (the additive identity), which is
        // what a replay reports when no lines survive — but `patch` refuses
        // to empty the line set, so `lines > 0` holds and integer sums of
        // nonnegative terms match the fold bitwise.
        let query_result = self.total as f64;
        let max_sensitivity = self.hist.last_key_value().map(|(&s, _)| s as f64).unwrap_or(0.0);
        (self.lines, self.sums.len(), query_result, max_sensitivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::lineage::ProfileBuilder;

    const NB: u32 = 12;

    fn canonical(lines: &[(f64, &[u64])]) -> BranchValues {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for (w, refs) in lines {
            b.add_result(*w, refs.iter().copied());
        }
        BranchValues::for_profile_grid(&b.build(), NB, true, 0)
    }

    fn assert_bits(a: &BranchValues, b: &BranchValues) {
        assert_eq!(a.base.to_bits(), b.base.to_bits(), "base bits");
        assert_eq!(a.values.len(), b.values.len());
        for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "branch {i}: {x} vs {y}");
        }
    }

    #[test]
    fn arms_and_mirrors_single_reference_counts() {
        let lines: Vec<(f64, &[u64])> =
            vec![(1.0, &[7][..]), (1.0, &[7][..]), (1.0, &[9][..]), (2.0, &[11][..])];
        let canon = canonical(&lines);
        let p = BranchPatcher::try_new(lines.iter().copied(), &canon, NB, true)
            .expect("closed-form profile arms");
        assert_bits(&p.values(), &canon);
    }

    #[test]
    fn patch_tracks_rebuild_bit_for_bit() {
        let mut lines: Vec<(f64, Box<[u64]>)> = (0..200)
            .map(|i| (1.0 + (i % 3) as f64, vec![(i % 17) as u64].into_boxed_slice()))
            .collect();
        lines.push((5.0, Box::from(&[][..]))); // a fixed line, never touched
        let as_refs = |ls: &[(f64, Box<[u64]>)]| -> Vec<(f64, Vec<u64>)> {
            ls.iter().map(|(w, r)| (*w, r.to_vec())).collect()
        };
        let snapshot = as_refs(&lines);
        let canon =
            canonical(&snapshot.iter().map(|(w, r)| (*w, r.as_slice())).collect::<Vec<_>>());
        let mut p = BranchPatcher::try_new(
            snapshot.iter().map(|(w, r)| (*w, r.as_slice())),
            &canon,
            NB,
            true,
        )
        .expect("arms");

        // Remove 20 lines, add 30 with both old and brand-new keys.
        let removed: Vec<(f64, Box<[u64]>)> = lines.drain(0..20).collect();
        let added: Vec<(f64, Box<[u64]>)> =
            (0..30).map(|i| (1.0, vec![40 + (i % 5) as u64].into_boxed_slice())).collect();
        lines.extend(added.iter().cloned());
        assert!(p.patch(&removed, &added), "patch stays in regime");

        let now = as_refs(&lines);
        let rebuilt = canonical(&now.iter().map(|(w, r)| (*w, r.as_slice())).collect::<Vec<_>>());
        assert_bits(&p.values(), &rebuilt);

        let (results, num_private, query_result, max_s) = p.summary_parts();
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for (w, r) in &now {
            b.add_result(*w, r.iter().copied());
        }
        let s = b.build().summary();
        assert_eq!(results, s.results);
        assert_eq!(num_private, s.num_private);
        assert_eq!(query_result.to_bits(), s.query_result.to_bits());
        assert_eq!(max_s.to_bits(), s.max_sensitivity.to_bits());
    }

    #[test]
    fn no_reference_lines_patch_exactly() {
        // Fixed lines (no private reference) appear and disappear; the
        // mirrored `base`/`fixed` must keep tracking the rebuild bitwise —
        // including the -0.0 the fold reports once the filter empties.
        let start: Vec<(f64, &[u64])> = vec![(1.0, &[1][..]), (4.0, &[][..])];
        let canon = canonical(&start);
        let mut p = BranchPatcher::try_new(start.iter().copied(), &canon, NB, true).expect("arms");
        assert!(p.patch(&[(4.0, Box::from(&[][..]))], &[(2.0, Box::from(&[3u64][..]))]));
        let now: Vec<(f64, &[u64])> = vec![(1.0, &[1][..]), (2.0, &[3][..])];
        let rebuilt = canonical(&now);
        assert_bits(&p.values(), &rebuilt);
        assert_eq!(rebuilt.base.to_bits(), (-0.0f64).to_bits(), "fold identity");

        assert!(p.patch(&[], &[(3.0, Box::from(&[][..]))]));
        let now: Vec<(f64, &[u64])> = vec![(1.0, &[1][..]), (2.0, &[3][..]), (3.0, &[][..])];
        assert_bits(&p.values(), &canonical(&now));
    }

    #[test]
    fn refuses_out_of_regime_profiles() {
        let multi: Vec<(f64, &[u64])> = vec![(1.0, &[1, 2][..])];
        assert!(
            BranchPatcher::try_new(multi.iter().copied(), &canonical(&multi), NB, true).is_none()
        );

        let frac: Vec<(f64, &[u64])> = vec![(1.5, &[1][..])];
        assert!(BranchPatcher::try_new(frac.iter().copied(), &canonical(&frac), NB, true).is_none());

        let fine: Vec<(f64, &[u64])> = vec![(1.0, &[1][..])];
        let canon = canonical(&fine);
        assert!(BranchPatcher::try_new(fine.iter().copied(), &canon, NB, false).is_none());
        assert!(BranchPatcher::try_new(std::iter::empty(), &canon, NB, true).is_none());
    }

    #[test]
    fn disengages_instead_of_drifting() {
        let fine: Vec<(f64, &[u64])> = vec![(1.0, &[1][..]), (2.0, &[2][..])];
        let canon = canonical(&fine);
        let arm = || BranchPatcher::try_new(fine.iter().copied(), &canon, NB, true).unwrap();

        // Removing a line that was never there.
        assert!(!arm().patch(&[(1.0, Box::from(&[5u64][..]))], &[]));
        // Adding a fractional-weight line.
        assert!(!arm().patch(&[], &[(0.25, Box::from(&[1u64][..]))]));
        // Adding a multi-reference line.
        assert!(!arm().patch(&[], &[(1.0, Box::from(&[1u64, 2][..]))]));
        // Removing a no-reference line that was never there.
        assert!(!arm().patch(&[(3.0, Box::from(&[][..]))], &[]));
        // Emptying the line set.
        assert!(!arm().patch(&[(1.0, Box::from(&[1u64][..])), (2.0, Box::from(&[2u64][..]))], &[]));
    }
}
