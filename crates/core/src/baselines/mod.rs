//! Query-generic DP baselines the paper compares against.
//!
//! * [`NaiveLaplace`] — `Q(I) + Lap(GS_Q/ε)`: worst-case-optimal, terrible
//!   on typical instances.
//! * [`FixedTauLp`] — the LP-based mechanism of Kasiviswanathan et al. \[22\]
//!   at a *given* threshold τ: `Q(I, τ) + Lap(τ/ε)`. DP for any τ, but the
//!   paper's Table 3 shows utility is extremely sensitive to the choice.
//! * [`LocalSensitivitySvt`] — the mechanism of Tao et al. \[37\] for
//!   self-join-free queries: truncation by tuple sensitivity with τ chosen
//!   by a sparse-vector race against a noisy full answer (Appendix A shows
//!   its error is Ω(GS_Q / log GS_Q) with constant probability).
//!
//! Graph-specific baselines (NT, SDE, RM) live in `r2t-graph`.

use crate::noise::laplace;
use crate::truncation::{self, NaiveTruncation, Truncation};
use crate::Mechanism;
use r2t_engine::QueryProfile;
use rand::RngCore;

/// The naive Laplace mechanism: `Q(I) + Lap(GS_Q/ε)`.
#[derive(Debug, Clone)]
pub struct NaiveLaplace {
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Assumed global sensitivity.
    pub gs: f64,
}

impl Mechanism for NaiveLaplace {
    fn name(&self) -> String {
        "NaiveLaplace".to_string()
    }

    fn run(&self, profile: &QueryProfile, rng: &mut dyn RngCore) -> Option<f64> {
        Some(profile.query_result() + laplace(rng, self.gs / self.epsilon))
    }
}

/// The LP-based mechanism with a fixed truncation threshold τ \[22\]:
/// `Q(I, τ) + Lap(τ/ε)` using the paper's LP truncation, which has global
/// sensitivity τ.
#[derive(Debug, Clone)]
pub struct FixedTauLp {
    /// Privacy budget ε.
    pub epsilon: f64,
    /// The (externally supplied) truncation threshold.
    pub tau: f64,
}

impl Mechanism for FixedTauLp {
    fn name(&self) -> String {
        format!("LP(tau={})", self.tau)
    }

    fn run(&self, profile: &QueryProfile, rng: &mut dyn RngCore) -> Option<f64> {
        let trunc = truncation::for_profile(profile);
        Some(trunc.value(self.tau) + laplace(rng, self.tau / self.epsilon))
    }
}

/// The local-sensitivity / SVT mechanism of Tao et al. \[37\] for self-join-
/// free queries with a single primary private relation.
///
/// Structure (as analysed in Appendix A of the R2T paper): first release
/// `Q̂(I) = Q(I) + Lap(GS/ε')`; then race τ = 1, 2, 4, … with an SVT test
/// `Q(I, τ) + Lap(2τ/ε') + Lap(4τ/ε') ≥ Q̂(I)`; answer with the naive
/// truncation at the selected τ plus `Lap(τ/ε')`. The budget is split three
/// ways (ε' = ε/3).
#[derive(Debug, Clone)]
pub struct LocalSensitivitySvt {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Assumed global sensitivity (upper bound on tuple sensitivity).
    pub gs: f64,
}

impl Mechanism for LocalSensitivitySvt {
    fn name(&self) -> String {
        "LS".to_string()
    }

    fn run(&self, profile: &QueryProfile, rng: &mut dyn RngCore) -> Option<f64> {
        let trunc = NaiveTruncation::new(profile);
        // [37] computes local sensitivities of *counting* queries without
        // self-joins over a single primary private relation; anything else
        // is a "Not supported" cell in Table 5.
        let counting = profile.results.iter().all(|r| (r.weight - 1.0).abs() < 1e-12);
        if !trunc.is_valid() || !counting {
            return None;
        }
        let eps = self.epsilon / 3.0;
        let qhat = profile.query_result() + laplace(rng, self.gs / eps);
        let mut tau = 1.0f64;
        while tau < self.gs {
            let test =
                trunc.value(tau) + laplace(rng, 2.0 * tau / eps) + laplace(rng, 4.0 * tau / eps);
            if test >= qhat {
                break;
            }
            tau *= 2.0;
        }
        Some(trunc.value(tau) + laplace(rng, tau / eps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::lineage::ProfileBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sjf_profile(counts: &[usize]) -> QueryProfile {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                b.add_result(1.0, [i as u64]);
            }
        }
        b.build()
    }

    #[test]
    fn naive_laplace_unbiased_but_noisy() {
        let p = sjf_profile(&[3, 5, 2]);
        let m = NaiveLaplace { epsilon: 1.0, gs: 1000.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let mean: f64 = (0..n).map(|_| m.run(&p, &mut rng).unwrap()).sum::<f64>() / n as f64;
        // Mean ≈ Q(I) = 10, but individual draws are wildly noisy.
        assert!((mean - 10.0).abs() < 100.0);
    }

    #[test]
    fn fixed_tau_lp_biased_when_tau_small() {
        let p = sjf_profile(&[10, 10, 10]);
        let m = FixedTauLp { epsilon: 1e9, tau: 4.0 }; // effectively no noise
        let mut rng = StdRng::seed_from_u64(2);
        let out = m.run(&p, &mut rng).unwrap();
        // Truncation keeps 4 per tuple: 12 out of 30.
        assert!((out - 12.0).abs() < 1e-3, "{out}");
    }

    #[test]
    fn ls_reasonable_on_easy_instance() {
        let p = sjf_profile(&[2; 50]); // 50 tuples of sensitivity 2, Q = 100
        let m = LocalSensitivitySvt { epsilon: 4.0, gs: 1_f64 * 1024.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let runs = 50;
        let mean: f64 = (0..runs).map(|_| m.run(&p, &mut rng).unwrap()).sum::<f64>() / runs as f64;
        // Should be in the right ballpark (not orders of magnitude off).
        assert!((mean - 100.0).abs() < 400.0, "{mean}");
    }

    #[test]
    fn ls_rejects_self_joins() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 1]); // references two private tuples
        let p = b.build();
        let m = LocalSensitivitySvt { epsilon: 1.0, gs: 16.0 };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(m.run(&p, &mut rng).is_none());
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(NaiveLaplace { epsilon: 1.0, gs: 2.0 }.name(), "NaiveLaplace");
        assert_eq!(FixedTauLp { epsilon: 1.0, tau: 8.0 }.name(), "LP(tau=8)");
        assert_eq!(LocalSensitivitySvt { epsilon: 1.0, gs: 2.0 }.name(), "LS");
    }
}
