//! LP-based truncation for SJA queries (Section 6 of the paper).
//!
//! ```text
//! maximize   Σ_k u_k
//! subject to Σ_{k ∈ C_j} u_k ≤ τ   for every private tuple j
//!            0 ≤ u_k ≤ ψ(q_k)      for every join result k
//! ```
//!
//! The optimum is a stable underestimate of `Q(I)` with saturation at
//! `τ*(I) = DS_Q(I)` (Lemma 6.1). Before solving we run the exact presolve
//! from `r2t-lp`, which eliminates every constraint row whose total weight
//! is already ≤ τ — the dominant case on sparse instances.

use super::kernel::KernelWorker;
use super::{SweepBranchSolver, SweepCache, Truncation};
use r2t_engine::QueryProfile;
use r2t_lp::presolve::presolve;
use r2t_lp::{
    Problem, RevisedSimplex, RowBounds, SolveOptions, Status, SweepProblem, SweepSession, VarBounds,
};
use std::sync::{Arc, OnceLock};

/// LP truncation for SJA queries.
#[derive(Debug)]
pub struct LpTruncation<'a> {
    profile: &'a QueryProfile,
    /// How often (in simplex iterations) to check the racing cutoff.
    pub event_every: usize,
    /// Shared τ-sweep structure, built lazily by the first worker that asks
    /// for a sweep session. Behind an `Arc` so a caller can keep the built
    /// structure alive across truncation instances (see
    /// [`Self::with_sweep_cache`]).
    sweep: SweepCache,
}

impl<'a> LpTruncation<'a> {
    /// Prepares the LP truncation for a profile.
    pub fn new(profile: &'a QueryProfile) -> Self {
        Self::with_sweep_cache(profile, Arc::new(OnceLock::new()))
    }

    /// Like [`Self::new`], but sharing the sweep structure through `cache`:
    /// if an earlier truncation over the same profile already built it, the
    /// LP build + monotone presolve are skipped entirely.
    pub fn with_sweep_cache(profile: &'a QueryProfile, cache: SweepCache) -> Self {
        assert!(profile.groups.is_none(), "use ProjectedLpTruncation for projection queries");
        LpTruncation { profile, event_every: 16, sweep: cache }
    }

    /// Builds the truncation LP for a given τ.
    fn build_lp(&self, tau: f64) -> Problem {
        let mut p = Problem::new();
        for r in &self.profile.results {
            p.add_var(1.0, VarBounds::new(0.0, r.weight));
        }
        let lists = self.profile.reference_lists();
        for c in lists {
            if c.is_empty() {
                continue;
            }
            let terms: Vec<(usize, f64)> = c.iter().map(|&k| (k as usize, 1.0)).collect();
            p.add_row(RowBounds::at_most(tau), &terms);
        }
        p
    }

    fn solve(&self, tau: f64, mut cutoff: Option<&mut dyn FnMut(f64) -> bool>) -> Option<f64> {
        if self.profile.results.is_empty() {
            return Some(0.0);
        }
        if tau <= 0.0 {
            // Closed form: every constrained result is forced to zero; only
            // results referencing no private tuple survive. (The LP would
            // grind through one degenerate pivot per variable here.)
            return Some(
                self.profile.results.iter().filter(|r| r.refs.is_empty()).map(|r| r.weight).sum(),
            );
        }
        let lp = self.build_lp(tau);
        let pre = presolve(&lp);
        if pre.reduced.num_rows() == 0 {
            // Fully presolved: every variable at its bound.
            return Some(pre.fixed_objective());
        }
        let solver = RevisedSimplex {
            options: SolveOptions {
                event_every: if cutoff.is_some() { self.event_every } else { 0 },
                ..SolveOptions::default()
            },
        };
        let fixed = pre.fixed_objective();
        let sol = solver
            .solve_with_callback(&pre.reduced, |ev| match cutoff.as_mut() {
                Some(f) => f(fixed + ev.dual_bound),
                None => true,
            })
            .expect("truncation LP is well-formed");
        match sol.status {
            Status::Optimal => Some(fixed + sol.objective),
            Status::Stopped => None,
            other => unreachable!("truncation LP cannot be {other:?}"),
        }
    }

    /// The shared sweep structure, built by the first caller.
    fn sweep_problem(&self) -> Option<&SweepProblem> {
        self.sweep
            .get_or_init(|| {
                if self.profile.results.is_empty() {
                    return None;
                }
                // All rows are τ-parameterized; the placeholder bound is
                // irrelevant (sweep rows are re-bounded per branch).
                let lp = self.build_lp(f64::INFINITY);
                let rows: Vec<usize> = (0..lp.num_rows()).collect();
                SweepProblem::new(&lp, &rows).ok()
            })
            .as_ref()
    }
}

impl Truncation for LpTruncation<'_> {
    fn value(&self, tau: f64) -> f64 {
        self.solve(tau, None).expect("no cutoff provided")
    }

    fn value_racing(&self, tau: f64, should_continue: &mut dyn FnMut(f64) -> bool) -> Option<f64> {
        self.solve(tau, Some(should_continue))
    }

    fn sweep_session(&self) -> Option<Box<dyn SweepBranchSolver + '_>> {
        let sp = self.sweep_problem()?;
        match KernelWorker::try_new(sp, self.value(0.0)) {
            Some(w) => Some(Box::new(w)),
            None => self.simplex_sweep_session(),
        }
    }

    fn simplex_sweep_session(&self) -> Option<Box<dyn SweepBranchSolver + '_>> {
        let sp = self.sweep_problem()?;
        let solver = RevisedSimplex {
            options: SolveOptions { event_every: self.event_every, ..SolveOptions::default() },
        };
        Some(Box::new(SweepWorker { trunc: self, session: sp.session(solver) }))
    }

    fn tau_star(&self) -> f64 {
        // For SJA queries DS_Q(I) = max_j S_Q(I, t_j) (Eq. 6).
        self.profile.max_sensitivity()
    }
}

/// Worker-local warm-starting branch solver for [`LpTruncation`]. Any
/// non-optimal outcome other than a racing stop falls back to the stateless
/// per-τ path, so results always agree with [`LpTruncation::value`].
struct SweepWorker<'t, 'p> {
    trunc: &'t LpTruncation<'p>,
    session: SweepSession<'t>,
}

impl SweepBranchSolver for SweepWorker<'_, '_> {
    fn value(&mut self, tau: f64) -> f64 {
        if tau <= 0.0 {
            return self.trunc.value(tau);
        }
        match self.session.solve(tau) {
            Ok(s) if s.status == Status::Optimal => s.objective,
            _ => self.trunc.value(tau),
        }
    }

    fn value_racing(
        &mut self,
        tau: f64,
        should_continue: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        if tau <= 0.0 {
            return self.trunc.value_racing(tau, should_continue);
        }
        match self.session.solve_racing(tau, |ev| should_continue(ev.dual_bound)) {
            Ok(s) => match s.status {
                Status::Optimal => Some(s.objective),
                Status::Stopped => None,
                _ => self.trunc.value_racing(tau, should_continue),
            },
            Err(_) => self.trunc.value_racing(tau, should_continue),
        }
    }

    fn stats(&self) -> r2t_lp::SolveStats {
        self.session.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::example_6_2_profile;
    use super::*;
    use r2t_engine::lineage::ProfileBuilder;

    #[test]
    fn example_6_2_exact_lp_values() {
        // The paper works these optima out by hand (Example 6.2).
        let p = example_6_2_profile();
        assert_eq!(p.query_result(), 9992.0);
        let t = LpTruncation::new(&p);
        assert!((t.value(2.0) - 7222.0).abs() < 1e-4, "{}", t.value(2.0));
        assert!((t.value(4.0) - 9444.0).abs() < 1e-4, "{}", t.value(4.0));
        assert!((t.value(8.0) - 9888.0).abs() < 1e-4, "{}", t.value(8.0));
        assert!((t.value(16.0) - 9976.0).abs() < 1e-4, "{}", t.value(16.0));
        assert_eq!(t.value(0.0), 0.0);
        assert!((t.value(32.0) - 9992.0).abs() < 1e-4);
        assert!((t.value(256.0) - 9992.0).abs() < 1e-4);
        assert_eq!(t.tau_star(), 32.0);
    }

    #[test]
    fn stability_on_down_neighbors() {
        // |Q(I,τ) − Q(I′,τ)| ≤ τ — the DP-critical property (Lemma 6.1) —
        // on a profile with heavy overlap.
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        // A 5-clique of weight-1 edges plus a 4-star.
        for i in 0..5u64 {
            for j in (i + 1)..5 {
                b.add_result(1.0, [i, j]);
            }
        }
        for leaf in 6..10u64 {
            b.add_result(1.0, [5, leaf]);
        }
        let p = b.build();
        let t = LpTruncation::new(&p);
        for j in 0..p.num_private as u32 {
            let q = p.remove_private(j);
            let tq = LpTruncation::new(&q);
            for tau in [0.0, 1.0, 2.0, 3.0, 4.0, 8.0] {
                let diff = (t.value(tau) - tq.value(tau)).abs();
                assert!(diff <= tau + 1e-6, "j={j} tau={tau} diff={diff}");
            }
        }
    }

    #[test]
    fn monotone_underestimate_saturating() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let mut prev = 0.0;
        for j in 0..=8 {
            let v = t.value((1u64 << j) as f64);
            assert!(v + 1e-6 >= prev, "monotone");
            assert!(v <= p.query_result() + 1e-6, "underestimate");
            prev = v;
        }
        assert!((t.value(t.tau_star()) - p.query_result()).abs() < 1e-4, "saturation");
    }

    #[test]
    fn fractional_weights_supported() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(2.5, [0, 1]);
        b.add_result(1.5, [1]);
        let p = b.build();
        let t = LpTruncation::new(&p);
        // τ=2: constraint at node1: u0 + u1 ≤ 2 and node0: u0 ≤ 2.
        // Max u0+u1 = 2.
        assert!((t.value(2.0) - 2.0).abs() < 1e-6);
        assert!((t.value(4.0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn racing_cutoff_aborts() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        // A cutoff that is immediately hopeless.
        let mut calls = 0;
        let out = t.value_racing(2.0, &mut |_ub| {
            calls += 1;
            false
        });
        // Either presolve finished it instantly (Some) or the cutoff fired.
        if out.is_none() {
            assert!(calls > 0);
        }
    }

    #[test]
    fn racing_with_generous_cutoff_matches_plain() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let plain = t.value(8.0);
        let raced = t.value_racing(8.0, &mut |_| true).unwrap();
        assert!((plain - raced).abs() < 1e-6);
    }

    #[test]
    fn empty_profile() {
        let b: ProfileBuilder<u64> = ProfileBuilder::new();
        let p = b.build();
        let t = LpTruncation::new(&p);
        assert_eq!(t.value(4.0), 0.0);
        assert_eq!(t.tau_star(), 0.0);
    }
}
