//! Naive truncation for self-join-free queries.
//!
//! Drops every private tuple whose sensitivity exceeds τ and sums the rest.
//! When every join result references exactly one private tuple, the private
//! tuples are independent, so this is a valid `Q(I, τ)` with
//! `τ*(I) = DS_Q(I)` (Section 6). With self-joins it *violates* stability —
//! Example 1.2 of the paper, reproduced in this module's tests.

use super::Truncation;
use r2t_engine::QueryProfile;

/// Naive per-tuple-sensitivity truncation.
#[derive(Debug)]
pub struct NaiveTruncation {
    /// Per-private-tuple sensitivities, precomputed.
    sensitivities: Vec<f64>,
    /// Total weight of join results referencing no private tuple (these
    /// survive any truncation).
    unreferenced: f64,
    /// Whether the profile is functionally self-join-free (required for the
    /// stability property).
    valid: bool,
}

impl NaiveTruncation {
    /// Prepares naive truncation for a profile.
    pub fn new(profile: &QueryProfile) -> Self {
        let unreferenced =
            profile.results.iter().filter(|r| r.refs.is_empty()).map(|r| r.weight).sum();
        NaiveTruncation {
            sensitivities: profile.sensitivities(),
            unreferenced,
            valid: profile.is_functionally_self_join_free() && profile.groups.is_none(),
        }
    }

    /// Whether naive truncation is a *valid* (stable) truncation method for
    /// the profile it was built from. R2T run on an invalid naive truncation
    /// does not satisfy DP — callers should check.
    pub fn is_valid(&self) -> bool {
        self.valid
    }
}

impl Truncation for NaiveTruncation {
    fn value(&self, tau: f64) -> f64 {
        self.unreferenced + self.sensitivities.iter().filter(|&&s| s <= tau).sum::<f64>()
    }

    fn tau_star(&self) -> f64 {
        self.sensitivities.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::lineage::ProfileBuilder;

    fn self_join_free_profile() -> QueryProfile {
        // Customers with order counts 1, 3, 7.
        let mut b: ProfileBuilder<&str> = ProfileBuilder::new();
        b.add_result(1.0, ["a"]);
        for _ in 0..3 {
            b.add_result(1.0, ["b"]);
        }
        for _ in 0..7 {
            b.add_result(1.0, ["c"]);
        }
        b.build()
    }

    #[test]
    fn truncates_heavy_tuples() {
        let p = self_join_free_profile();
        let t = NaiveTruncation::new(&p);
        assert!(t.is_valid());
        assert_eq!(t.value(0.0), 0.0);
        assert_eq!(t.value(1.0), 1.0);
        assert_eq!(t.value(3.0), 4.0);
        assert_eq!(t.value(7.0), 11.0);
        assert_eq!(t.value(100.0), 11.0);
        assert_eq!(t.tau_star(), 7.0);
    }

    #[test]
    fn monotone_and_saturating() {
        let p = self_join_free_profile();
        let t = NaiveTruncation::new(&p);
        let mut prev = -1.0;
        for tau in 0..10 {
            let v = t.value(tau as f64);
            assert!(v >= prev);
            assert!(v <= p.query_result());
            prev = v;
        }
        assert_eq!(t.value(t.tau_star()), p.query_result());
    }

    #[test]
    fn stability_holds_without_self_joins() {
        // |NT(I, τ) − NT(I', τ)| ≤ τ for down-neighbours.
        let p = self_join_free_profile();
        let t = NaiveTruncation::new(&p);
        for j in 0..p.num_private as u32 {
            let q = p.remove_private(j);
            let tq = NaiveTruncation::new(&q);
            for tau in [0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0] {
                let diff = (t.value(tau) - tq.value(tau)).abs();
                assert!(diff <= tau + 1e-9, "tau={tau} diff={diff}");
            }
        }
    }

    #[test]
    fn example_1_2_stability_violation() {
        // A τ-regular graph (cycle, τ=2) vs the neighbour where one added
        // node connects to everything: naive truncation jumps by n·τ ≫ τ.
        let n = 20u64;
        let tau = 2.0;
        // Cycle graph: every node has degree 2.
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for i in 0..n {
            b.add_result(1.0, [i, (i + 1) % n]);
        }
        let p = b.build();
        // Neighbour: node `n` connects to every existing node, raising all
        // degrees to 3 > τ.
        let mut b2: ProfileBuilder<u64> = ProfileBuilder::new();
        for i in 0..n {
            b2.add_result(1.0, [i, (i + 1) % n]);
        }
        for i in 0..n {
            b2.add_result(1.0, [n, i]);
        }
        let p2 = b2.build();
        let t = NaiveTruncation::new(&p);
        let t2 = NaiveTruncation::new(&p2);
        let gap = (t.value(tau) - t2.value(tau)).abs();
        assert!(gap > tau, "naive truncation must fail stability here: gap={gap}");
        // (This is exactly why the validity flag matters.)
        assert!(!t.is_valid());
    }

    #[test]
    fn unreferenced_results_always_survive() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(5.0, []);
        b.add_result(2.0, [1]);
        let p = b.build();
        let t = NaiveTruncation::new(&p);
        assert_eq!(t.value(0.0), 5.0);
        assert_eq!(t.value(2.0), 7.0);
    }
}
