//! Combinatorial branch solvers: the dispatch target for truncation LPs
//! whose structure admits one of the `r2t-lp` flow kernels.
//!
//! [`Truncation::sweep_session`][super::Truncation::sweep_session] routes
//! here when the shared [`SweepProblem`] classified itself as
//! matching-structured (≤ 2 unit references per result — max-flow on the
//! bipartite double cover) or single-reference (per-node closed form). Every
//! other structure — projected `v_l` rows, coefficients ≠ 1, ≥ 3 references
//! — keeps the warm-starting revised-simplex worker.
//!
//! The worker implements the same [`SweepBranchSolver`] contract as the
//! simplex sessions: exact `Q(I, τ)` per branch, decreasing racing upper
//! bounds, fed in descending-τ order by the race. Internally the flow
//! session sweeps *ascending* (capacities grow with τ, so flow is retained
//! and only augmented) and memoizes every power-of-two grid point on the
//! way up — the descending race's first branch pays for one max-flow and
//! every later branch is a lookup.

use super::{KernelKind, SweepBranchSolver};
use r2t_lp::{ClosedFormKernel, FlowSession, KernelClass, SolveStats, SweepProblem};

enum Backend<'a> {
    Flow(FlowSession<'a>),
    Closed(&'a ClosedFormKernel),
}

/// A worker-local combinatorial branch solver over a classified
/// [`SweepProblem`].
pub(crate) struct KernelWorker<'a> {
    backend: Backend<'a>,
    /// `Q(I, τ)` at τ ≤ 0: only results referencing no private tuple
    /// survive. Precomputed by the caller (closed form, no LP involved).
    zero: f64,
}

impl<'a> KernelWorker<'a> {
    /// Builds a kernel worker when `sp`'s structure admits one; `None`
    /// routes the caller to its simplex session. `zero` is the truncation
    /// value at τ ≤ 0.
    pub fn try_new(sp: &'a SweepProblem, zero: f64) -> Option<Self> {
        let backend = match sp.kernel_class() {
            KernelClass::Matching => Backend::Flow(sp.flow_session()?),
            KernelClass::ClosedForm => Backend::Closed(sp.closed_form()?),
            KernelClass::Simplex(_) => return None,
        };
        r2t_obs::counter_add("trunc.kernel.sessions", 1);
        Some(KernelWorker { backend, zero })
    }
}

impl SweepBranchSolver for KernelWorker<'_> {
    fn value(&mut self, tau: f64) -> f64 {
        if tau <= 0.0 {
            return self.zero;
        }
        // Only the flow kernel is worth timing: a closed-form evaluation is
        // a handful of arithmetic ops, cheaper than the timer itself, and a
        // race runs ~10 of them per released answer.
        match &mut self.backend {
            Backend::Flow(s) => {
                let _solve_ns = r2t_obs::hist_time("trunc.kernel.solve.ns");
                s.solve(tau)
            }
            Backend::Closed(k) => k.value(tau),
        }
    }

    fn value_racing(
        &mut self,
        tau: f64,
        should_continue: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        if tau <= 0.0 {
            // Closed form, like the stateless path: no cutoff consulted.
            return Some(self.zero);
        }
        match &mut self.backend {
            Backend::Flow(s) => {
                let _solve_ns = r2t_obs::hist_time("trunc.kernel.solve.ns");
                s.solve_racing(tau, should_continue)
            }
            // The closed form is instantaneous — no point offering a cutoff
            // (nor paying a timer; see `value`).
            Backend::Closed(k) => Some(k.value(tau)),
        }
    }

    fn stats(&self) -> SolveStats {
        // No simplex iterations by construction; the kernel's own effort is
        // reported through the `lp.kernel.*` obs counters.
        SolveStats::default()
    }

    fn kind(&self) -> KernelKind {
        match self.backend {
            Backend::Flow(_) => KernelKind::Matching,
            Backend::Closed(_) => KernelKind::ClosedForm,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::truncation::test_support::example_6_2_profile;
    use crate::truncation::{
        for_profile, KernelKind, LpTruncation, ProjectedLpTruncation, Truncation,
    };
    use r2t_engine::lineage::ProfileBuilder;

    #[test]
    fn graph_profiles_dispatch_to_the_matching_kernel() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Matching);
    }

    #[test]
    fn single_reference_profiles_dispatch_to_the_closed_form() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for i in 0..20u64 {
            b.add_result(1.0 + (i % 3) as f64, [i % 5]);
        }
        b.add_result(2.0, []); // free result
        let p = b.build();
        let t = LpTruncation::new(&p);
        let sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::ClosedForm);
    }

    #[test]
    fn three_references_fall_back_to_simplex() {
        // Path-2 style results reference three private nodes.
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for i in 0..10u64 {
            b.add_result(1.0, [i, i + 1, i + 2]);
        }
        let p = b.build();
        let t = LpTruncation::new(&p);
        let sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Simplex);
    }

    #[test]
    fn duplicate_references_are_deduped_upstream() {
        // `ProfileBuilder` sorts + dedups refs, so a self-pair arrives as a
        // single reference and the kernel stays applicable. A genuine
        // coefficient of 2 (only constructible at the raw LP layer) is
        // rejected by the classifier — asserted in the `r2t-lp` flow tests.
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_result(1.0, [0, 0]);
        b.add_result(1.0, [0, 1]);
        let p = b.build();
        assert_eq!(p.results[0].refs, vec![0]);
        let t = LpTruncation::new(&p);
        let sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Matching);
    }

    #[test]
    fn projected_group_rows_fall_back_to_simplex() {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for l in 0..4u64 {
            b.add_projected_result(l, 1.0, 1.0, [1]).unwrap();
            b.add_projected_result(l, 1.0, 1.0, [2]).unwrap();
        }
        let p = b.build();
        let t = ProjectedLpTruncation::new(&p);
        let sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Simplex, "v_l rows are static — no kernel");
    }

    #[test]
    fn projection_free_spja_degenerates_to_the_matching_kernel() {
        // Without groups the projected LP folds to the SJA LP, which on an
        // edge workload is matching-structured.
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for i in 0..12u64 {
            b.add_result(1.0, [i, (i + 1) % 12]);
        }
        let p = b.build();
        let t = ProjectedLpTruncation::new(&p);
        let sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Matching);
    }

    #[test]
    fn simplex_sweep_session_pins_the_simplex_backend() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let sess = t.simplex_sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Simplex);
    }

    #[test]
    fn kernel_values_match_the_stateless_path_on_example_6_2() {
        let p = example_6_2_profile();
        let t = for_profile(&p);
        let mut sess = t.sweep_session().unwrap();
        assert_eq!(sess.kind(), KernelKind::Matching);
        for j in (0..=8).rev() {
            let tau = (1u64 << j) as f64;
            let got = sess.value(tau);
            let want = t.value(tau);
            assert!(
                (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                "tau={tau}: kernel {got} stateless {want}"
            );
        }
        assert_eq!(sess.value(0.0), 0.0);
    }

    #[test]
    fn kernel_racing_matches_plain_values() {
        let p = example_6_2_profile();
        let t = LpTruncation::new(&p);
        let mut sess = t.sweep_session().unwrap();
        let plain = sess.value(8.0);
        let mut sess2 = t.sweep_session().unwrap();
        let raced = sess2.value_racing(8.0, &mut |_| true).unwrap();
        assert_eq!(plain, raced, "racing with a generous cutoff is the same computation");
        let mut sess3 = t.sweep_session().unwrap();
        assert!(sess3.value_racing(8.0, &mut |_| false).is_none(), "hopeless cutoff kills");
    }
}
