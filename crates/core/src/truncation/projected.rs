//! LP-based truncation for SPJA queries with projection (Section 7).
//!
//! ```text
//! maximize   Σ_l v_l
//! subject to v_l ≤ Σ_{k ∈ D_l} u_k     for every projected result l
//!            Σ_{k ∈ C_j} u_k ≤ τ       for every private tuple j
//!            0 ≤ u_k ≤ ψ(q_k),  0 ≤ v_l ≤ ψ(p_l)
//! ```
//!
//! Saturation happens at `τ*(I) = IS_Q(I)` (the *indirect* sensitivity,
//! Lemma 7.3); the gap between `IS_Q(I)` and the true `DS_Q(I)` is the price
//! of projection, which Theorem 7.2 proves unavoidable.

use super::kernel::KernelWorker;
use super::{SweepBranchSolver, SweepCache, Truncation};
use r2t_engine::QueryProfile;
use r2t_lp::presolve::presolve;
use r2t_lp::{
    Problem, RevisedSimplex, RowBounds, SolveOptions, Status, SweepProblem, SweepSession, VarBounds,
};
use std::sync::{Arc, OnceLock};

/// LP truncation for SPJA (projection) queries.
#[derive(Debug)]
pub struct ProjectedLpTruncation<'a> {
    profile: &'a QueryProfile,
    /// How often (in simplex iterations) to check the racing cutoff.
    pub event_every: usize,
    /// Shared τ-sweep structure (group rows static, tuple rows swept),
    /// built lazily by the first worker that asks for a sweep session;
    /// shareable across truncation instances via [`Self::with_sweep_cache`].
    sweep: SweepCache,
}

impl<'a> ProjectedLpTruncation<'a> {
    /// Prepares the projected LP truncation for a profile. Profiles without
    /// groups are accepted (each result forms its own group), so this method
    /// strictly generalizes [`super::LpTruncation`].
    pub fn new(profile: &'a QueryProfile) -> Self {
        Self::with_sweep_cache(profile, Arc::new(OnceLock::new()))
    }

    /// Like [`Self::new`], but sharing the sweep structure through `cache`;
    /// see [`super::LpTruncation::with_sweep_cache`].
    pub fn with_sweep_cache(profile: &'a QueryProfile, cache: SweepCache) -> Self {
        ProjectedLpTruncation { profile, event_every: 16, sweep: cache }
    }

    fn build_lp(&self, tau: f64) -> Problem {
        let mut p = Problem::new();
        let has_groups = self.profile.groups.is_some();
        // u_k variables. Without groups the LP degenerates to the SJA LP
        // (v_k ≡ u_k), folded by putting the objective directly on u_k.
        let u_obj = if has_groups { 0.0 } else { 1.0 };
        for r in &self.profile.results {
            p.add_var(u_obj, VarBounds::new(0.0, r.weight));
        }
        if let Some(groups) = &self.profile.groups {
            for g in groups {
                let v = p.add_var(1.0, VarBounds::new(0.0, g.weight));
                // v_l - Σ_{k∈D_l} u_k ≤ 0.
                let mut terms: Vec<(usize, f64)> = vec![(v, 1.0)];
                terms.extend(g.members.iter().map(|&k| (k as usize, -1.0)));
                p.add_row(RowBounds::at_most(0.0), &terms);
            }
        }
        for c in self.profile.reference_lists() {
            if c.is_empty() {
                continue;
            }
            let terms: Vec<(usize, f64)> = c.iter().map(|&k| (k as usize, 1.0)).collect();
            p.add_row(RowBounds::at_most(tau), &terms);
        }
        p
    }

    fn solve(&self, tau: f64, mut cutoff: Option<&mut dyn FnMut(f64) -> bool>) -> Option<f64> {
        if self.profile.results.is_empty() {
            return Some(0.0);
        }
        if tau <= 0.0 {
            // Closed form: constrained u's are zero; each projected result
            // keeps min(ψ(p_l), total weight of its unconstrained members).
            return Some(match &self.profile.groups {
                Some(groups) => groups
                    .iter()
                    .map(|g| {
                        let free: f64 = g
                            .members
                            .iter()
                            .map(|&k| &self.profile.results[k as usize])
                            .filter(|r| r.refs.is_empty())
                            .map(|r| r.weight)
                            .sum();
                        free.min(g.weight)
                    })
                    .sum(),
                None => self
                    .profile
                    .results
                    .iter()
                    .filter(|r| r.refs.is_empty())
                    .map(|r| r.weight)
                    .sum(),
            });
        }
        let lp = self.build_lp(tau);
        let pre = presolve(&lp);
        if pre.reduced.num_rows() == 0 {
            return Some(pre.fixed_objective());
        }
        let solver = RevisedSimplex {
            options: SolveOptions {
                event_every: if cutoff.is_some() { self.event_every } else { 0 },
                ..SolveOptions::default()
            },
        };
        let fixed = pre.fixed_objective();
        let sol = solver
            .solve_with_callback(&pre.reduced, |ev| match cutoff.as_mut() {
                Some(f) => f(fixed + ev.dual_bound),
                None => true,
            })
            .expect("projected truncation LP is well-formed");
        match sol.status {
            Status::Optimal => Some(fixed + sol.objective),
            Status::Stopped => None,
            other => unreachable!("projected truncation LP cannot be {other:?}"),
        }
    }

    /// The shared sweep structure, built by the first caller.
    fn sweep_problem(&self) -> Option<&SweepProblem> {
        self.sweep
            .get_or_init(|| {
                if self.profile.results.is_empty() {
                    return None;
                }
                // Group rows (added first by build_lp) keep their ≤ 0 bound
                // in every branch; only the per-tuple rows sweep with τ.
                let lp = self.build_lp(f64::INFINITY);
                let n_groups = self.profile.groups.as_ref().map_or(0, |g| g.len());
                let rows: Vec<usize> = (n_groups..lp.num_rows()).collect();
                SweepProblem::new(&lp, &rows).ok()
            })
            .as_ref()
    }
}

impl Truncation for ProjectedLpTruncation<'_> {
    fn value(&self, tau: f64) -> f64 {
        self.solve(tau, None).expect("no cutoff provided")
    }

    fn value_racing(&self, tau: f64, should_continue: &mut dyn FnMut(f64) -> bool) -> Option<f64> {
        self.solve(tau, Some(should_continue))
    }

    fn sweep_session(&self) -> Option<Box<dyn SweepBranchSolver + '_>> {
        // With groups the v_l rows are static and the classifier falls back
        // to the simplex; without groups the LP degenerates to the SJA form
        // and graph-shaped profiles get the matching kernel.
        let sp = self.sweep_problem()?;
        match KernelWorker::try_new(sp, self.value(0.0)) {
            Some(w) => Some(Box::new(w)),
            None => self.simplex_sweep_session(),
        }
    }

    fn simplex_sweep_session(&self) -> Option<Box<dyn SweepBranchSolver + '_>> {
        let sp = self.sweep_problem()?;
        let solver = RevisedSimplex {
            options: SolveOptions { event_every: self.event_every, ..SolveOptions::default() },
        };
        Some(Box::new(SweepWorker { trunc: self, session: sp.session(solver) }))
    }

    fn tau_star(&self) -> f64 {
        // IS_Q(I) = max_j S_Q(I, t_j), computed over raw join results.
        self.profile.max_sensitivity()
    }
}

/// Worker-local warm-starting branch solver for [`ProjectedLpTruncation`];
/// see [`super::lp`] for the fallback contract.
struct SweepWorker<'t, 'p> {
    trunc: &'t ProjectedLpTruncation<'p>,
    session: SweepSession<'t>,
}

impl SweepBranchSolver for SweepWorker<'_, '_> {
    fn value(&mut self, tau: f64) -> f64 {
        if tau <= 0.0 {
            return self.trunc.value(tau);
        }
        match self.session.solve(tau) {
            Ok(s) if s.status == Status::Optimal => s.objective,
            _ => self.trunc.value(tau),
        }
    }

    fn value_racing(
        &mut self,
        tau: f64,
        should_continue: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        if tau <= 0.0 {
            return self.trunc.value_racing(tau, should_continue);
        }
        match self.session.solve_racing(tau, |ev| should_continue(ev.dual_bound)) {
            Ok(s) => match s.status {
                Status::Optimal => Some(s.objective),
                Status::Stopped => None,
                _ => self.trunc.value_racing(tau, should_continue),
            },
            Err(_) => self.trunc.value_racing(tau, should_continue),
        }
    }

    fn stats(&self) -> r2t_lp::SolveStats {
        self.session.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::lineage::ProfileBuilder;

    /// Example 7.1: two private tuples, m projected results fully overlapped.
    fn overlap_profile(m: u64) -> QueryProfile {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for l in 0..m {
            b.add_projected_result(l, 1.0, 1.0, [1]).unwrap();
            b.add_projected_result(l, 1.0, 1.0, [2]).unwrap();
        }
        b.build()
    }

    #[test]
    fn overlapping_contributions_counted_once() {
        let p = overlap_profile(6);
        assert_eq!(p.query_result(), 6.0);
        let t = ProjectedLpTruncation::new(&p);
        // τ = 3: each private tuple can support 3 units, and the two cover
        // disjoint-able halves, so all 6 projected results reach weight 1.
        assert!((t.value(3.0) - 6.0).abs() < 1e-6, "{}", t.value(3.0));
        // τ = 1: total u mass ≤ 2, so at most 2 projected results covered.
        assert!((t.value(1.0) - 2.0).abs() < 1e-6, "{}", t.value(1.0));
        assert_eq!(t.value(0.0), 0.0);
        // Saturation at IS_Q(I) = 6.
        assert!((t.value(t.tau_star()) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn stability_on_down_neighbors() {
        let p = overlap_profile(4);
        let t = ProjectedLpTruncation::new(&p);
        for j in 0..p.num_private as u32 {
            let q = p.remove_private(j);
            let tq = ProjectedLpTruncation::new(&q);
            for tau in [0.0, 1.0, 2.0, 3.0, 4.0, 8.0] {
                let diff = (t.value(tau) - tq.value(tau)).abs();
                assert!(diff <= tau + 1e-6, "j={j} tau={tau} diff={diff}");
            }
        }
    }

    #[test]
    fn group_weight_caps_value() {
        // One projected result of weight 2 backed by three unit results.
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        b.add_projected_result(0, 2.0, 1.0, [1]).unwrap();
        b.add_projected_result(0, 2.0, 1.0, [2]).unwrap();
        b.add_projected_result(0, 2.0, 1.0, [3]).unwrap();
        let p = b.build();
        let t = ProjectedLpTruncation::new(&p);
        assert!((t.value(1.0) - 2.0).abs() < 1e-6);
        assert!((t.value(0.5) - 1.5).abs() < 1e-6);
        assert!((t.value(10.0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_underestimate() {
        let p = overlap_profile(5);
        let t = ProjectedLpTruncation::new(&p);
        let mut prev = 0.0;
        for tau in 0..8 {
            let v = t.value(tau as f64);
            assert!(v + 1e-9 >= prev);
            assert!(v <= p.query_result() + 1e-9);
            prev = v;
        }
    }
}
