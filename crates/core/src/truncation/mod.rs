//! Truncation methods `Q(I, τ)`.
//!
//! R2T works with any function satisfying the three properties of Section 5:
//!
//! 1. **Stability**: for any τ, the global sensitivity of `Q(·, τ)` is ≤ τ.
//! 2. **Underestimate**: `Q(I, τ) ≤ Q(I)`.
//! 3. **Saturation**: `Q(I, τ) = Q(I)` for all `τ ≥ τ*(I)`, with
//!    `τ*(I) = DS_Q(I)` (SJA) or `IS_Q(I)` (SPJA).
//!
//! Three methods are provided:
//! * [`NaiveTruncation`] — drop private tuples with sensitivity above τ.
//!   Stable *only* when every join result references exactly one private
//!   tuple (self-join-free, single primary private relation).
//! * [`LpTruncation`] — the LP of Section 6, valid for arbitrary SJA queries.
//! * [`ProjectedLpTruncation`] — the extended LP of Section 7 for SPJA
//!   queries with duplicate-removing projection.

mod kernel;
mod lp;
mod naive;
mod projected;

pub use lp::LpTruncation;
pub use naive::NaiveTruncation;
pub use projected::ProjectedLpTruncation;

use r2t_engine::QueryProfile;
use std::sync::{Arc, OnceLock};

/// Which backend a [`SweepBranchSolver`] runs on. `r2t-lp` classifies the
/// shared sweep structure once (see [`r2t_lp::KernelClass`]); this is the
/// session-level view of where that classification landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Per-node closed form (every result references ≤ 1 private tuple).
    ClosedForm,
    /// Incremental max-flow on the bipartite double cover (≤ 2 unit
    /// references per result).
    Matching,
    /// Warm-starting revised simplex (no special structure).
    Simplex,
}

/// A shareable, lazily built τ-sweep LP structure (constraint skeleton,
/// monotone presolve thresholds) for one profile. Truncations built with
/// [`LpTruncation::with_sweep_cache`] / [`ProjectedLpTruncation::with_sweep_cache`]
/// populate the cache on first use and every later truncation over the same
/// profile reuses it — the amortization a prepared query lives on. The inner
/// `None` records that the profile has no sweep structure (empty profile).
///
/// Like the profile it derives from, the cached structure is pre-noise state:
/// it must never outlive the instance it was built on.
pub type SweepCache = Arc<OnceLock<Option<r2t_lp::SweepProblem>>>;

/// A per-worker branch solver carrying LP solver state (simplex bases,
/// workspace buffers) across the τ-branches it is fed. Created through
/// [`Truncation::sweep_session`]; one session per racing worker thread.
/// Results match the stateless [`Truncation`] entry points to solver
/// tolerance, but adjacent branches reuse each other's optimal bases, so
/// feeding branches in descending-τ order is much cheaper.
pub trait SweepBranchSolver {
    /// Computes `Q(I, τ)` (full solve).
    fn value(&mut self, tau: f64) -> f64;

    /// Racing variant; see [`Truncation::value_racing`].
    fn value_racing(
        &mut self,
        tau: f64,
        should_continue: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64>;

    /// Cumulative solver counters (warm-start acceptance, iteration counts)
    /// across every branch this session has solved. Combinatorial kernels
    /// report zeros — they never pivot.
    fn stats(&self) -> r2t_lp::SolveStats;

    /// Which backend this session solves branches with.
    fn kind(&self) -> KernelKind {
        KernelKind::Simplex
    }
}

/// Abstraction over truncation methods. Implementations borrow the profile
/// and may precompute shared state (e.g. the LP skeleton).
pub trait Truncation: Sync {
    /// Computes `Q(I, τ)`.
    fn value(&self, tau: f64) -> f64;

    /// Computes `Q(I, τ)` with a racing cutoff for the early-stop
    /// optimization (Algorithm 1): `should_continue(upper_bound)` is invoked
    /// periodically with a decreasing upper bound on `Q(I, τ)`; returning
    /// `false` aborts and yields `None`. The default implementation ignores
    /// the cutoff.
    fn value_racing(&self, tau: f64, should_continue: &mut dyn FnMut(f64) -> bool) -> Option<f64> {
        let _ = should_continue;
        Some(self.value(tau))
    }

    /// Creates a warm-starting branch solver over this truncation's shared
    /// LP structure, if the method supports one (`None` = callers fall back
    /// to the stateless entry points). The first call builds the shared
    /// sweep structure; subsequent calls (other workers) reuse it.
    ///
    /// Implementations dispatch on the structure: matching-shaped LPs get a
    /// combinatorial max-flow kernel, single-reference LPs a closed form,
    /// everything else the revised simplex (see [`KernelKind`]).
    fn sweep_session(&self) -> Option<Box<dyn SweepBranchSolver + '_>> {
        None
    }

    /// Like [`Self::sweep_session`], but pinned to the simplex backend even
    /// when the structure admits a combinatorial kernel. This is the oracle
    /// benchmarks and differential tests measure the kernel against; results
    /// agree to solver tolerance. The default forwards to `sweep_session`
    /// (methods without kernel dispatch have nothing to pin).
    fn simplex_sweep_session(&self) -> Option<Box<dyn SweepBranchSolver + '_>> {
        self.sweep_session()
    }

    /// The saturation threshold `τ*(I)` of this method on this profile.
    fn tau_star(&self) -> f64;
}

/// Picks the appropriate paper truncation for a profile: the projected LP if
/// the query has a projection, otherwise the SJA LP.
pub fn for_profile(profile: &QueryProfile) -> Box<dyn Truncation + '_> {
    if profile.groups.is_some() {
        Box::new(ProjectedLpTruncation::new(profile))
    } else {
        Box::new(LpTruncation::new(profile))
    }
}

/// Like [`for_profile`], with an explicit racing-cutoff check cadence
/// (simplex iterations between callback invocations).
pub fn for_profile_with(profile: &QueryProfile, event_every: usize) -> Box<dyn Truncation + '_> {
    if profile.groups.is_some() {
        let mut t = ProjectedLpTruncation::new(profile);
        t.event_every = event_every;
        Box::new(t)
    } else {
        let mut t = LpTruncation::new(profile);
        t.event_every = event_every;
        Box::new(t)
    }
}

/// Like [`for_profile_with`], sharing the sweep structure through an external
/// [`SweepCache`] so repeated truncations over the same cached profile skip
/// the LP build + presolve. The cache must always be paired with the same
/// profile (a serving layer keys both by the query).
pub fn for_profile_cached<'a>(
    profile: &'a QueryProfile,
    event_every: usize,
    cache: &SweepCache,
) -> Box<dyn Truncation + 'a> {
    if profile.groups.is_some() {
        let mut t = ProjectedLpTruncation::with_sweep_cache(profile, Arc::clone(cache));
        t.event_every = event_every;
        Box::new(t)
    } else {
        let mut t = LpTruncation::with_sweep_cache(profile, Arc::clone(cache));
        t.event_every = event_every;
        Box::new(t)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use r2t_engine::lineage::ProfileBuilder;
    use r2t_engine::QueryProfile;

    /// Example 6.2's instance: 1000 triangles, 1000 4-cliques, 100 8-stars,
    /// 10 16-stars, one 32-star; join results are undirected edges with
    /// predicate ID1 < ID2 (weight 1, referencing both endpoints).
    pub fn example_6_2_profile() -> QueryProfile {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        let mut next_node: u64 = 0;
        let mut clique = |k: u64, count: usize, b: &mut ProfileBuilder<u64>| {
            for _ in 0..count {
                let base = next_node;
                next_node += k;
                for i in 0..k {
                    for j in (i + 1)..k {
                        b.add_result(1.0, [base + i, base + j]);
                    }
                }
            }
        };
        clique(3, 1000, &mut b); // triangles
        clique(4, 1000, &mut b); // 4-cliques
        let mut star = |k: u64, count: usize, b: &mut ProfileBuilder<u64>| {
            for _ in 0..count {
                let center = next_node;
                next_node += k + 1;
                for i in 1..=k {
                    b.add_result(1.0, [center, center + i]);
                }
            }
        };
        star(8, 100, &mut b);
        star(16, 10, &mut b);
        star(32, 1, &mut b);
        b.build()
    }
}
