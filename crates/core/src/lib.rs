//! # r2t-core — the R2T mechanism
//!
//! Implementation of *R2T: Instance-optimal Truncation for Differentially
//! Private Query Evaluation with Foreign Keys* (SIGMOD 2022).
//!
//! The pipeline is: the [`r2t_engine`] evaluates an SPJA query with lineage,
//! producing a [`QueryProfile`] (per-join-result weights `ψ(q_k)` plus the
//! private tuples each result references). A [`truncation`] method turns the
//! profile into a family of stable underestimates `Q(I, τ)`; [`r2t::R2T`]
//! races geometrically increasing `τ` values, shifts each noisy estimate down
//! by its own noise scale, and returns the maximum — achieving error
//! `O(log GS_Q · log log GS_Q · DS_Q(I) / ε)` which is instance-optimal for
//! SJA queries (Theorem 5.1 + Section 6 of the paper).
//!
//! [`groupby`] implements the paper's Section 11 extension (group-by via
//! budget splitting). [`baselines`] contains the mechanisms the paper compares against that are
//! not graph-specific: the naive Laplace mechanism, the fixed-τ LP mechanism
//! of Kasiviswanathan et al., and the local-sensitivity/SVT mechanism of Tao
//! et al. (graph-specific baselines NT/SDE/RM live in `r2t-graph`).

pub mod accountant;
pub mod baselines;
pub mod branch_patch;
pub mod groupby;
pub mod mechanism;
pub mod noise;
pub mod r2t;
pub mod truncation;

pub use accountant::{Accountant, BudgetCell, BudgetExceeded, CellCharge};
pub use branch_patch::BranchPatcher;
pub use mechanism::Mechanism;
pub use r2t::{BranchValues, R2TConfig, R2TConfigBuilder, R2TReport, R2T};
pub use r2t_engine::QueryProfile;
pub use truncation::{
    KernelKind, LpTruncation, NaiveTruncation, ProjectedLpTruncation, SweepCache, Truncation,
};
