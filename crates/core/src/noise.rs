//! Calibrated noise primitives and deterministic substream derivation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The deterministic RNG for substream `index` of a noise stream rooted at
/// `seed`. A SplitMix64-style finalizer spreads adjacent indices across the
/// seed space before the generator's own expansion.
///
/// Positional substreams are what make fan-out deterministic: when a batch
/// (queries in a session, groups in a GROUP BY) pins substream `i` to item
/// `i` *before* any work is distributed, the answers are bit-identical for
/// any worker count.
pub fn substream_rng(seed: u64, index: u64) -> StdRng {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// A uniform draw in `[0, 1)` with 53 bits of precision, built directly on
/// [`RngCore`] so it works through trait objects.
#[inline]
pub fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws one sample from the Laplace distribution with the given scale
/// (mean 0), via inverse-CDF sampling.
///
/// A `scale` of `b` yields density `exp(-|x|/b) / 2b`; adding `Lap(Δ/ε)` to a
/// query with global sensitivity `Δ` gives `ε`-DP (the Laplace mechanism).
pub fn laplace<R: RngCore + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale >= 0.0, "Laplace scale must be non-negative");
    if scale == 0.0 {
        return 0.0;
    }
    // u uniform in (-1/2, 1/2); reject the edge u = -1/2 (log of zero).
    let mut u: f64 = uniform01(rng) - 0.5;
    while 1.0 - 2.0 * u.abs() <= 0.0 {
        u = uniform01(rng) - 0.5;
    }
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// The `(1-β)`-quantile of |Lap(scale)|: `scale · ln(1/β)`. Useful for tail
/// bounds in tests.
pub fn laplace_abs_quantile(scale: f64, beta: f64) -> f64 {
    scale * (1.0 / beta).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_scale_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(laplace(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn empirical_moments_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let scale = 3.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace(&mut rng, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Laplace(b): mean 0, variance 2b².
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 2.0 * scale * scale).abs() < 0.5, "var {var}");
    }

    #[test]
    fn tail_quantile_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(7);
        let scale = 2.0;
        let beta = 0.05;
        let q = laplace_abs_quantile(scale, beta);
        let n = 100_000;
        let exceed = (0..n).filter(|_| laplace(&mut rng, scale).abs() > q).count();
        let rate = exceed as f64 / n as f64;
        assert!((rate - beta).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn symmetric_sign_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let pos = (0..n).filter(|_| laplace(&mut rng, 1.0) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }
}
