//! The common mechanism interface.

use r2t_engine::QueryProfile;
use rand::RngCore;

/// A differentially private query-answering mechanism operating on a
/// lineage-annotated query profile.
pub trait Mechanism {
    /// Short display name (used by the benchmark harness).
    fn name(&self) -> String;

    /// Runs the mechanism, returning the privatized answer, or `None` if the
    /// mechanism does not support this query shape (e.g. the LS baseline on
    /// self-joins / multiple primary private relations, as in Table 5).
    fn run(&self, profile: &QueryProfile, rng: &mut dyn RngCore) -> Option<f64>;
}
