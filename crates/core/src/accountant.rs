//! Privacy budget accounting (basic sequential composition).
//!
//! R2T itself spends a single ε per query; an analyst asking *many* queries
//! against the same primary private relation composes. [`Accountant`] tracks
//! a total pure-ε budget and refuses charges that would exceed it — the
//! standard discipline a deployment wraps around any DP mechanism (the
//! paper defers composition to "various DP composition theorems"; basic
//! composition is the one valid for pure ε-DP).

use std::sync::atomic::{AtomicU64, Ordering};

/// A pure ε-DP budget ledger under basic sequential composition.
#[derive(Debug, Clone)]
pub struct Accountant {
    total: f64,
    spent: f64,
    charges: Vec<(String, f64)>,
}

/// A charge was refused because it would exceed the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExceeded {
    /// Requested ε.
    pub requested: f64,
    /// Remaining ε.
    pub remaining: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested eps = {}, remaining = {}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl Accountant {
    /// Creates a ledger with the given total ε budget.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(total_epsilon >= 0.0, "budget must be non-negative");
        Accountant { total: total_epsilon, spent: 0.0, charges: Vec::new() }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Attempts to reserve `epsilon` for a query labelled `label`. On
    /// success the budget is committed *before* the caller runs the
    /// mechanism (a refused query must not observe the data).
    pub fn charge(&mut self, label: &str, epsilon: f64) -> Result<(), BudgetExceeded> {
        assert!(epsilon >= 0.0, "charges must be non-negative");
        if epsilon > self.remaining() + 1e-12 {
            return Err(BudgetExceeded { requested: epsilon, remaining: self.remaining() });
        }
        self.spent += epsilon;
        self.charges.push((label.to_string(), epsilon));
        Ok(())
    }

    /// Number of successful charges so far. (A serving layer uses this as
    /// the deterministic substream index of the *next* charge: refused
    /// charges never advance it.)
    pub fn num_charges(&self) -> usize {
        self.charges.len()
    }

    /// Atomically reserves a batch of charges: either every charge commits
    /// (appended to the ledger in input order) or none does and the budget is
    /// untouched. The all-or-nothing discipline keeps a concurrent batch from
    /// half-spending before discovering it cannot finish.
    pub fn charge_many(&mut self, charges: &[(&str, f64)]) -> Result<(), BudgetExceeded> {
        let mut total = 0.0;
        for &(_, epsilon) in charges {
            assert!(epsilon >= 0.0, "charges must be non-negative");
            total += epsilon;
        }
        if total > self.remaining() + 1e-12 {
            return Err(BudgetExceeded { requested: total, remaining: self.remaining() });
        }
        self.charges.reserve(charges.len());
        for &(label, epsilon) in charges {
            self.spent += epsilon;
            self.charges.push((label.to_string(), epsilon));
        }
        Ok(())
    }

    /// The ledger: (label, ε) per successful charge, in order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.charges
    }
}

/// A successful [`BudgetCell`] charge: what the budget looked like the
/// instant this charge committed, plus how contended the commit was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCharge {
    /// ε spent *before* this charge committed.
    pub spent_before: f64,
    /// ε spent *after* this charge committed (`spent_before + ε`, evaluated
    /// in f64 exactly as the cell stored it).
    pub spent_after: f64,
    /// Number of compare-and-swap retries the commit needed. Zero in the
    /// uncontended case; a serving layer surfaces the sum as a contention
    /// counter.
    pub retries: u64,
}

/// A *lock-free* ε-budget cell: the sharded counterpart of [`Accountant`].
///
/// The cell stores `spent` as an `f64` bit pattern in an [`AtomicU64`] and
/// commits every charge with a single compare-and-swap, so concurrent
/// charges never serialize on a lock — they serialize only on the cache line
/// holding the budget, which is exactly the shared state the semantics
/// require.
///
/// **Exact-charging invariant.** A successful CAS replaces `spent` with
/// `spent + ε` computed in f64, so after any interleaving of concurrent
/// charges the cell's `spent` is *exactly* the f64 left-fold of the
/// successful charges in their commit order — every committed ε is
/// accounted, none is lost or double-counted, and no refused charge moves
/// the value. When the charged values sum exactly in f64 (e.g. equal
/// power-of-two ε), `spent` equals their sum bit-for-bit in every
/// interleaving; tests and the tenant benchmark pin this.
///
/// The cell deliberately carries *no* ledger and *no* substream counter:
/// labels and noise-substream indices are session/tenant concerns layered on
/// top (see `r2t-service`). A refused charge returns before any side effect,
/// which is what lets a serving layer prove its refusal path draws no
/// randomness.
#[derive(Debug)]
pub struct BudgetCell {
    total: f64,
    spent_bits: AtomicU64,
    charges: AtomicU64,
}

impl BudgetCell {
    /// Creates a cell with the given total ε budget.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(total_epsilon >= 0.0, "budget must be non-negative");
        BudgetCell {
            total: total_epsilon,
            spent_bits: AtomicU64::new(0f64.to_bits()),
            charges: AtomicU64::new(0),
        }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far (a racy-but-exact snapshot: some committed charge
    /// produced exactly this value).
    pub fn spent(&self) -> f64 {
        f64::from_bits(self.spent_bits.load(Ordering::Acquire))
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent()).max(0.0)
    }

    /// Number of successful charge *operations* so far (a batch counts once).
    pub fn num_charges(&self) -> u64 {
        self.charges.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `epsilon`. Commits with one CAS; on refusal the
    /// cell is untouched and nothing observable happened. Uses the same
    /// `1e-12` slack as [`Accountant::charge`] so exact exhaustion is
    /// admitted and the first over-budget charge is not.
    pub fn try_charge(&self, epsilon: f64) -> Result<CellCharge, BudgetExceeded> {
        self.try_charge_sum(epsilon, 1)
    }

    /// Atomically reserves a pre-summed batch of `n` charges totalling
    /// `epsilon`: the whole amount commits in one CAS or none of it does.
    /// `n` only feeds the charge-operation counter.
    pub fn try_charge_sum(&self, epsilon: f64, n: u64) -> Result<CellCharge, BudgetExceeded> {
        assert!(epsilon >= 0.0, "charges must be non-negative");
        let mut retries = 0u64;
        let mut cur = self.spent_bits.load(Ordering::Relaxed);
        loop {
            let spent_before = f64::from_bits(cur);
            let spent_after = spent_before + epsilon;
            if spent_after > self.total + 1e-12 {
                return Err(BudgetExceeded {
                    requested: epsilon,
                    remaining: (self.total - spent_before).max(0.0),
                });
            }
            match self.spent_bits.compare_exchange_weak(
                cur,
                spent_after.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.charges.fetch_add(n.max(1), Ordering::Relaxed);
                    // Contention telemetry: how many CAS rounds this commit
                    // needed. DP-safe — retries depend on thread timing, not
                    // on any tuple value.
                    // Record only contended commits: on the uncontended fast
                    // path (retries == 0, the overwhelmingly common case) the
                    // record itself would be the most expensive step of the
                    // charge. Uncontended commits are countable as
                    // `service.charges` minus this histogram's count.
                    if retries > 0 {
                        r2t_obs::hist_record("core.budget.cas_retries", retries);
                    }
                    return Ok(CellCharge { spent_before, spent_after, retries });
                }
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Returns `epsilon` to the cell (CAS-subtract, floored at zero spend).
    /// For *reservation* flows only — e.g. admission control that reserves a
    /// quota slice and hands back the unused part. Refunding ε that was
    /// actually spent on a released answer would be a privacy violation; the
    /// caller owns that discipline.
    pub fn refund(&self, epsilon: f64) {
        assert!(epsilon >= 0.0, "refunds must be non-negative");
        let mut cur = self.spent_bits.load(Ordering::Relaxed);
        loop {
            let spent = f64::from_bits(cur);
            let new = (spent - epsilon).max(0.0);
            match self.spent_bits.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut a = Accountant::new(1.0);
        a.charge("q1", 0.4).expect("fits");
        a.charge("q2", 0.4).expect("fits");
        assert!((a.spent() - 0.8).abs() < 1e-12);
        assert!((a.remaining() - 0.2).abs() < 1e-12);
        assert_eq!(a.ledger().len(), 2);
    }

    #[test]
    fn over_budget_refused_without_spending() {
        let mut a = Accountant::new(1.0);
        a.charge("q1", 0.9).expect("fits");
        let err = a.charge("q2", 0.2).expect_err("over budget");
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert!((a.spent() - 0.9).abs() < 1e-12, "refused charge must not spend");
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let mut a = Accountant::new(0.5);
        a.charge("q", 0.5).expect("exact fit");
        assert_eq!(a.remaining(), 0.0);
        assert!(a.charge("q2", 1e-6).is_err());
    }

    #[test]
    fn zero_charges_always_fit() {
        let mut a = Accountant::new(0.0);
        a.charge("free", 0.0).expect("zero charge");
    }

    #[test]
    fn batch_commits_in_order() {
        let mut a = Accountant::new(1.0);
        a.charge_many(&[("q1", 0.25), ("q2", 0.5), ("q3", 0.25)]).expect("exact fit");
        assert!((a.spent() - 1.0).abs() < 1e-12);
        assert_eq!(a.num_charges(), 3);
        assert_eq!(a.ledger()[1], ("q2".to_string(), 0.5));
    }

    #[test]
    fn over_budget_batch_refused_atomically() {
        let mut a = Accountant::new(1.0);
        a.charge("warm", 0.5).expect("fits");
        // The first two entries alone would fit; the batch as a whole does
        // not, and none of it may spend.
        let err = a.charge_many(&[("q1", 0.2), ("q2", 0.2), ("q3", 0.2)]).expect_err("over");
        assert!((err.requested - 0.6).abs() < 1e-12);
        assert!((a.spent() - 0.5).abs() < 1e-12, "refused batch must not spend");
        assert_eq!(a.num_charges(), 1, "refused batch must not advance the ledger");
    }

    #[test]
    fn empty_batch_is_free() {
        let mut a = Accountant::new(0.0);
        a.charge_many(&[]).expect("empty batch");
        assert_eq!(a.num_charges(), 0);
    }

    #[test]
    fn cell_charges_and_refuses_like_the_accountant() {
        let c = BudgetCell::new(1.0);
        let first = c.try_charge(0.5).expect("fits");
        assert_eq!(first.spent_before, 0.0);
        assert_eq!(first.spent_after, 0.5);
        assert_eq!(first.retries, 0);
        c.try_charge(0.5).expect("exact exhaustion");
        assert_eq!(c.spent(), 1.0);
        assert_eq!(c.remaining(), 0.0);
        let err = c.try_charge(1e-6).expect_err("over budget");
        assert_eq!(err.requested, 1e-6);
        assert_eq!(c.spent(), 1.0, "refused charge must not move the cell");
        assert_eq!(c.num_charges(), 2, "refused charge must not count");
    }

    #[test]
    fn cell_batch_charge_is_all_or_nothing() {
        let c = BudgetCell::new(1.0);
        c.try_charge_sum(0.75, 3).expect("fits");
        assert!(c.try_charge_sum(0.5, 2).is_err(), "batch over budget");
        assert_eq!(c.spent(), 0.75);
        assert_eq!(c.num_charges(), 3);
    }

    #[test]
    fn cell_refund_returns_reserved_budget() {
        let c = BudgetCell::new(1.0);
        c.try_charge(1.0).expect("reserve all");
        c.refund(0.25);
        assert_eq!(c.spent(), 0.75);
        c.try_charge(0.25).expect("refunded budget is usable");
        c.refund(5.0);
        assert_eq!(c.spent(), 0.0, "refund floors at zero spend");
    }

    #[test]
    fn cell_concurrent_charges_are_exact() {
        use std::sync::Arc;
        // 16 threads race 64 charges of 1/128 each against a budget that
        // fits exactly half of them. Power-of-two ε: every partial sum is
        // exact in f64, so the invariant is bitwise, not approximate.
        let cell = Arc::new(BudgetCell::new(0.5));
        let eps = 1.0 / 128.0;
        let successes: usize = std::thread::scope(|scope| {
            (0..16)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || (0..64).filter(|_| cell.try_charge(eps).is_ok()).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        });
        assert_eq!(successes, 64, "exactly the budget's worth of charges");
        assert_eq!(cell.spent(), 0.5, "spent is the exact sum of successes");
        assert_eq!(cell.num_charges(), 64);
    }
}
