//! Privacy budget accounting (basic sequential composition).
//!
//! R2T itself spends a single ε per query; an analyst asking *many* queries
//! against the same primary private relation composes. [`Accountant`] tracks
//! a total pure-ε budget and refuses charges that would exceed it — the
//! standard discipline a deployment wraps around any DP mechanism (the
//! paper defers composition to "various DP composition theorems"; basic
//! composition is the one valid for pure ε-DP).

/// A pure ε-DP budget ledger under basic sequential composition.
#[derive(Debug, Clone)]
pub struct Accountant {
    total: f64,
    spent: f64,
    charges: Vec<(String, f64)>,
}

/// A charge was refused because it would exceed the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExceeded {
    /// Requested ε.
    pub requested: f64,
    /// Remaining ε.
    pub remaining: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested eps = {}, remaining = {}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl Accountant {
    /// Creates a ledger with the given total ε budget.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(total_epsilon >= 0.0, "budget must be non-negative");
        Accountant { total: total_epsilon, spent: 0.0, charges: Vec::new() }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Attempts to reserve `epsilon` for a query labelled `label`. On
    /// success the budget is committed *before* the caller runs the
    /// mechanism (a refused query must not observe the data).
    pub fn charge(&mut self, label: &str, epsilon: f64) -> Result<(), BudgetExceeded> {
        assert!(epsilon >= 0.0, "charges must be non-negative");
        if epsilon > self.remaining() + 1e-12 {
            return Err(BudgetExceeded { requested: epsilon, remaining: self.remaining() });
        }
        self.spent += epsilon;
        self.charges.push((label.to_string(), epsilon));
        Ok(())
    }

    /// Number of successful charges so far. (A serving layer uses this as
    /// the deterministic substream index of the *next* charge: refused
    /// charges never advance it.)
    pub fn num_charges(&self) -> usize {
        self.charges.len()
    }

    /// Atomically reserves a batch of charges: either every charge commits
    /// (appended to the ledger in input order) or none does and the budget is
    /// untouched. The all-or-nothing discipline keeps a concurrent batch from
    /// half-spending before discovering it cannot finish.
    pub fn charge_many(&mut self, charges: &[(&str, f64)]) -> Result<(), BudgetExceeded> {
        let mut total = 0.0;
        for &(_, epsilon) in charges {
            assert!(epsilon >= 0.0, "charges must be non-negative");
            total += epsilon;
        }
        if total > self.remaining() + 1e-12 {
            return Err(BudgetExceeded { requested: total, remaining: self.remaining() });
        }
        self.charges.reserve(charges.len());
        for &(label, epsilon) in charges {
            self.spent += epsilon;
            self.charges.push((label.to_string(), epsilon));
        }
        Ok(())
    }

    /// The ledger: (label, ε) per successful charge, in order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut a = Accountant::new(1.0);
        a.charge("q1", 0.4).expect("fits");
        a.charge("q2", 0.4).expect("fits");
        assert!((a.spent() - 0.8).abs() < 1e-12);
        assert!((a.remaining() - 0.2).abs() < 1e-12);
        assert_eq!(a.ledger().len(), 2);
    }

    #[test]
    fn over_budget_refused_without_spending() {
        let mut a = Accountant::new(1.0);
        a.charge("q1", 0.9).expect("fits");
        let err = a.charge("q2", 0.2).expect_err("over budget");
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert!((a.spent() - 0.9).abs() < 1e-12, "refused charge must not spend");
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let mut a = Accountant::new(0.5);
        a.charge("q", 0.5).expect("exact fit");
        assert_eq!(a.remaining(), 0.0);
        assert!(a.charge("q2", 1e-6).is_err());
    }

    #[test]
    fn zero_charges_always_fit() {
        let mut a = Accountant::new(0.0);
        a.charge("free", 0.0).expect("zero charge");
    }

    #[test]
    fn batch_commits_in_order() {
        let mut a = Accountant::new(1.0);
        a.charge_many(&[("q1", 0.25), ("q2", 0.5), ("q3", 0.25)]).expect("exact fit");
        assert!((a.spent() - 1.0).abs() < 1e-12);
        assert_eq!(a.num_charges(), 3);
        assert_eq!(a.ledger()[1], ("q2".to_string(), 0.5));
    }

    #[test]
    fn over_budget_batch_refused_atomically() {
        let mut a = Accountant::new(1.0);
        a.charge("warm", 0.5).expect("fits");
        // The first two entries alone would fit; the batch as a whole does
        // not, and none of it may spend.
        let err = a.charge_many(&[("q1", 0.2), ("q2", 0.2), ("q3", 0.2)]).expect_err("over");
        assert!((err.requested - 0.6).abs() < 1e-12);
        assert!((a.spent() - 0.5).abs() < 1e-12, "refused batch must not spend");
        assert_eq!(a.num_charges(), 1, "refused batch must not advance the ledger");
    }

    #[test]
    fn empty_batch_is_free() {
        let mut a = Accountant::new(0.0);
        a.charge_many(&[]).expect("empty batch");
        assert_eq!(a.num_charges(), 0);
    }
}
