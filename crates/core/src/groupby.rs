//! Group-by queries (the paper's Section 11 extension).
//!
//! A group-by SPJA query is answered by treating each group as its own SPJA
//! query (a predicate restricting to that group) and splitting the privacy
//! budget across the groups by basic composition: with `k` groups each runs
//! R2T at `ε/k`. The group *keys* released are those with a non-trivial
//! noisy answer; since R2T underestimates and every per-group run is DP, the
//! whole release is `ε`-DP by composition and post-processing.
//!
//! The paper notes a one-shot mechanism could do better for self-join-free
//! queries (high-dimensional mean estimation); that refinement is future
//! work in the paper as well.

use crate::noise::substream_rng;
use crate::r2t::{R2TConfig, R2T};
use r2t_engine::{QueryProfile, Tuple};
use rand::RngCore;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One released group: key, privatized answer, and the branch diagnostics.
#[derive(Debug, Clone)]
pub struct GroupAnswer {
    /// Group key values (from the GROUP BY columns).
    pub key: Tuple,
    /// Privatized aggregate for this group.
    pub answer: f64,
}

/// R2T over group-by queries via budget splitting.
#[derive(Debug, Clone, Default)]
pub struct GroupByR2T {
    /// Configuration; `epsilon` is the *total* budget across all groups.
    pub config: R2TConfig,
}

impl GroupByR2T {
    /// Creates the mechanism with a total budget configuration.
    pub fn new(config: R2TConfig) -> Self {
        GroupByR2T { config }
    }

    /// Answers one profile per group under a total budget of
    /// `config.epsilon` (each group gets `ε/k`). Returns one answer per
    /// input group, in input order.
    ///
    /// Groups are independent ε/k races, so they run concurrently — on up to
    /// [`std::thread::available_parallelism`] workers when
    /// [`R2TConfig::parallel`] is set, sequentially otherwise. One root draw
    /// from `rng` seeds a positionally pinned noise substream per group
    /// (group `i` always replays substream `i`), so answers are bit-identical
    /// for any worker count.
    pub fn run(&self, groups: &[(Tuple, QueryProfile)], rng: &mut dyn RngCore) -> Vec<GroupAnswer> {
        let workers = if self.config.parallel {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            1
        };
        self.run_with_workers(groups, rng, workers)
    }

    /// [`Self::run`] with an explicit worker count (≥ 1). Results are
    /// identical for every count.
    pub fn run_with_workers(
        &self,
        groups: &[(Tuple, QueryProfile)],
        rng: &mut dyn RngCore,
        workers: usize,
    ) -> Vec<GroupAnswer> {
        if groups.is_empty() {
            return Vec::new();
        }
        // The substream root is the only draw from the caller's stream; it
        // is fixed before any fan-out, like a batch charge's ledger indices.
        let root = rng.next_u64();
        let workers = workers.max(1).min(groups.len());
        let per_group = R2TConfig {
            epsilon: self.config.epsilon / groups.len() as f64,
            // Workers already saturate the machine when racing across
            // groups; nested branch parallelism would only oversubscribe
            // (per-branch results are worker-count independent either way).
            parallel: self.config.parallel && workers == 1,
            ..self.config.clone()
        };
        let r2t = R2T::new(per_group);
        let run_group = |i: usize| -> GroupAnswer {
            let (key, profile) = &groups[i];
            let mut rng = substream_rng(root, i as u64);
            GroupAnswer { key: key.clone(), answer: r2t.run_profile(profile, &mut rng).output }
        };
        if workers <= 1 {
            return (0..groups.len()).map(run_group).collect();
        }
        let mut results: Vec<Option<GroupAnswer>> = (0..groups.len()).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let computed: Vec<(usize, GroupAnswer)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..workers {
                let next = &next;
                let run_group = &run_group;
                let n = groups.len();
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, run_group(i)));
                    }
                    out
                }));
            }
            handles.into_iter().flat_map(|h| h.join().expect("group worker panicked")).collect()
        });
        for (i, a) in computed {
            results[i] = Some(a);
        }
        results.into_iter().map(|a| a.expect("every group answered")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::lineage::ProfileBuilder;
    use r2t_engine::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group(n_tuples: u64, per_tuple: usize) -> QueryProfile {
        let mut b: ProfileBuilder<u64> = ProfileBuilder::new();
        for t in 0..n_tuples {
            for _ in 0..per_tuple {
                b.add_result(1.0, [t]);
            }
        }
        b.build()
    }

    #[test]
    fn answers_every_group() {
        let groups = vec![
            (vec![Value::str("A")], group(100, 2)),
            (vec![Value::str("B")], group(50, 4)),
            (vec![Value::str("C")], group(10, 1)),
        ];
        let m = GroupByR2T::new(R2TConfig {
            epsilon: 3.0,
            beta: 0.1,
            gs: 64.0,
            early_stop: true,
            parallel: false,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let out = m.run(&groups, &mut rng);
        assert_eq!(out.len(), 3);
        for (got, (key, p)) in out.iter().zip(&groups) {
            assert_eq!(&got.key, key);
            // Underestimate w.h.p.; fixed seed makes this deterministic.
            assert!(got.answer <= p.query_result() + 1e-9);
        }
    }

    #[test]
    fn budget_splitting_hurts_with_more_groups() {
        // Same data split into 1 vs 8 groups: the per-group noise grows.
        let single = vec![(vec![Value::Int(0)], group(400, 2))];
        let many: Vec<(Tuple, QueryProfile)> =
            (0..8).map(|i| (vec![Value::Int(i)], group(50, 2))).collect();
        let cfg = R2TConfig {
            epsilon: 1.0,
            beta: 0.1,
            gs: 64.0,
            early_stop: true,
            parallel: false,
            ..Default::default()
        };
        let m = GroupByR2T::new(cfg);
        let runs = 12;
        let mut err_single = 0.0;
        let mut err_many = 0.0;
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(100 + r);
            let a = m.run(&single, &mut rng);
            err_single += (a[0].answer - 800.0).abs();
            let mut rng = StdRng::seed_from_u64(200 + r);
            let b = m.run(&many, &mut rng);
            let total: f64 = b.iter().map(|g| g.answer).sum();
            err_many += (total - 800.0).abs();
        }
        assert!(
            err_many > err_single,
            "splitting the budget across 8 groups should cost accuracy: {err_many} vs {err_single}"
        );
    }

    #[test]
    fn worker_count_does_not_change_answers() {
        let groups: Vec<(Tuple, QueryProfile)> =
            (0..7).map(|i| (vec![Value::Int(i)], group(30 + 10 * i as u64, 2))).collect();
        let m = GroupByR2T::new(R2TConfig {
            epsilon: 2.0,
            beta: 0.1,
            gs: 64.0,
            early_stop: true,
            parallel: false,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let sequential = m.run_with_workers(&groups, &mut rng, 1);
        for workers in [2, 3, 8, 64] {
            let mut rng = StdRng::seed_from_u64(5);
            let parallel = m.run_with_workers(&groups, &mut rng, workers);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.key, s.key);
                assert_eq!(p.answer.to_bits(), s.answer.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_config_matches_sequential_bitwise() {
        let groups: Vec<(Tuple, QueryProfile)> =
            (0..5).map(|i| (vec![Value::Int(i)], group(40, 3))).collect();
        let base = R2TConfig {
            epsilon: 1.5,
            beta: 0.1,
            gs: 64.0,
            early_stop: true,
            parallel: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let seq = GroupByR2T::new(base.clone()).run(&groups, &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let par = GroupByR2T::new(R2TConfig { parallel: true, ..base }).run(&groups, &mut rng);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.answer.to_bits(), s.answer.to_bits());
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let m = GroupByR2T::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.run(&[], &mut rng).is_empty());
    }
}
