//! Lineage-tracking pattern enumerators for the four evaluation queries.
//!
//! Each enumerator produces a [`QueryProfile`] under node-DP: every pattern
//! occurrence is one join result of weight 1 referencing the distinct nodes
//! it spans. Conventions (consistent with the SQL formulations in the paper,
//! Example 6.2):
//!
//! * **Edge** `Q1−`: each undirected edge once (`src < dst` predicate).
//! * **Path2** `Q2−`: each length-2 path `a–b–c` once (`a < c`, `a ≠ c`).
//! * **Triangle** `QΔ`: each triangle once (`a < b < c`).
//! * **Rectangle** `Q□`: each 4-cycle once (counted by its lexicographically
//!   smaller diagonal).
//!
//! [`Pattern::to_query`] returns the equivalent engine IR query so the
//! enumerators can be cross-checked against the generic join executor.

use crate::graph::Graph;
use r2t_engine::lineage::ProfileBuilder;
use r2t_engine::query::{atom, CmpOp, Predicate, Query};
use r2t_engine::QueryProfile;
use std::collections::HashMap;

/// The four graph pattern counting queries of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Edge counting `Q1−`.
    Edge,
    /// Length-2 path counting `Q2−`.
    Path2,
    /// Triangle counting `QΔ`.
    Triangle,
    /// Rectangle (4-cycle) counting `Q□`.
    Rectangle,
}

impl Pattern {
    /// All four patterns in the paper's order.
    pub const ALL: [Pattern; 4] =
        [Pattern::Edge, Pattern::Path2, Pattern::Triangle, Pattern::Rectangle];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Edge => "Q1-",
            Pattern::Path2 => "Q2-",
            Pattern::Triangle => "Qtri",
            Pattern::Rectangle => "Qrect",
        }
    }

    /// The global sensitivity implied by a public degree bound `D`
    /// (Section 10.1: `GS = D` for edges, `D²` for paths/triangles, `D³`
    /// for rectangles).
    pub fn global_sensitivity(&self, degree_bound: f64) -> f64 {
        match self {
            Pattern::Edge => degree_bound,
            Pattern::Path2 | Pattern::Triangle => degree_bound * degree_bound,
            Pattern::Rectangle => degree_bound * degree_bound * degree_bound,
        }
    }

    /// Counts occurrences (without lineage).
    pub fn count(&self, g: &Graph) -> u64 {
        match self {
            Pattern::Edge => g.num_edges() as u64,
            Pattern::Path2 => (0..g.num_vertices() as u32)
                .map(|b| {
                    let d = g.degree(b) as u64;
                    d * d.saturating_sub(1) / 2
                })
                .sum::<u64>(),
            Pattern::Triangle => {
                let mut count = 0u64;
                for (u, v) in g.edges() {
                    count += intersect_above(g.neighbors(u), g.neighbors(v), v);
                }
                count
            }
            Pattern::Rectangle => {
                // Σ over diagonals {u,w}: C(common, 2), each cycle counted
                // via two diagonals → halve by the min-diagonal rule. Here we
                // count all wedge pairs and divide by 2.
                let mut wedge: HashMap<(u32, u32), u64> = HashMap::new();
                for b in 0..g.num_vertices() as u32 {
                    let nb = g.neighbors(b);
                    for (i, &a) in nb.iter().enumerate() {
                        for &c in &nb[i + 1..] {
                            *wedge.entry((a, c)).or_insert(0) += 1;
                        }
                    }
                }
                wedge.values().map(|&w| w * (w - 1) / 2).sum::<u64>() / 2
            }
        }
    }

    /// Enumerates occurrences with node-DP lineage.
    pub fn profile(&self, g: &Graph) -> QueryProfile {
        let mut b: ProfileBuilder<u32> = ProfileBuilder::new();
        match self {
            Pattern::Edge => {
                for (u, v) in g.edges() {
                    b.add_result(1.0, [u, v]);
                }
            }
            Pattern::Path2 => {
                for c in 0..g.num_vertices() as u32 {
                    let nb = g.neighbors(c);
                    for (i, &a) in nb.iter().enumerate() {
                        for &d in &nb[i + 1..] {
                            b.add_result(1.0, [a, c, d]);
                        }
                    }
                }
            }
            Pattern::Triangle => {
                for (u, v) in g.edges() {
                    // Common neighbours above v give u < v < w.
                    let (nu, nv) = (g.neighbors(u), g.neighbors(v));
                    let mut i = nu.partition_point(|&x| x <= v);
                    let mut j = nv.partition_point(|&x| x <= v);
                    while i < nu.len() && j < nv.len() {
                        match nu[i].cmp(&nv[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                b.add_result(1.0, [u, v, nu[i]]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                }
            }
            Pattern::Rectangle => {
                // Wedges grouped by endpoints (a < c): centers list. Cycles
                // counted once via the lexicographically smaller diagonal.
                let mut wedge: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
                for center in 0..g.num_vertices() as u32 {
                    let nb = g.neighbors(center);
                    for (i, &a) in nb.iter().enumerate() {
                        for &c in &nb[i + 1..] {
                            wedge.entry((a, c)).or_default().push(center);
                        }
                    }
                }
                for (&(a, c), centers) in &wedge {
                    for (i, &u) in centers.iter().enumerate() {
                        for &w in &centers[i + 1..] {
                            // Diagonals {a,c} and {u,w}: count when
                            // min(a,c)=a < min(u,w).
                            if a < u.min(w) {
                                b.add_result(1.0, [a, c, u, w]);
                            }
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// The equivalent engine IR query over the node-DP graph schema
    /// ([`r2t_engine::schema::graph_schema_node_dp`]); edges must be stored
    /// in both directions in the `Edge` relation.
    pub fn to_query(&self) -> Query {
        match self {
            Pattern::Edge => Query::count(vec![atom("Edge", &[0, 1])])
                .with_predicate(Predicate::cmp_vars(0, CmpOp::Lt, 1)),
            Pattern::Path2 => {
                // a-b, b-c with a < c.
                Query::count(vec![atom("Edge", &[0, 1]), atom("Edge", &[1, 2])])
                    .with_predicate(Predicate::cmp_vars(0, CmpOp::Lt, 2))
            }
            Pattern::Triangle => Query::count(vec![
                atom("Edge", &[0, 1]),
                atom("Edge", &[1, 2]),
                atom("Edge", &[0, 2]),
            ])
            .with_predicate(Predicate::And(vec![
                Predicate::cmp_vars(0, CmpOp::Lt, 1),
                Predicate::cmp_vars(1, CmpOp::Lt, 2),
            ])),
            Pattern::Rectangle => {
                // Cycle a-u-c-w-a with distinctness; canonical: a smallest,
                // u < w breaks the remaining symmetry.
                Query::count(vec![
                    atom("Edge", &[0, 1]),
                    atom("Edge", &[1, 2]),
                    atom("Edge", &[2, 3]),
                    atom("Edge", &[3, 0]),
                ])
                .with_predicate(Predicate::And(vec![
                    Predicate::cmp_vars(0, CmpOp::Lt, 1),
                    Predicate::cmp_vars(0, CmpOp::Lt, 2),
                    Predicate::cmp_vars(0, CmpOp::Lt, 3),
                    Predicate::cmp_vars(1, CmpOp::Lt, 3),
                    Predicate::cmp_vars(1, CmpOp::Ne, 2),
                ]))
            }
        }
    }
}

/// Enumerates `k`-stars (a centre with `k` distinct chosen neighbours) with
/// node-DP lineage: each occurrence references the centre and its `k`
/// leaves. Used by the Example 6.2 style workloads; counts are `Σ_v C(d_v, k)`.
///
/// The profile size grows as `C(max degree, k)`; intended for small `k`
/// (2–4) and bounded-degree graphs.
pub fn star_profile(g: &Graph, k: usize) -> QueryProfile {
    assert!(k >= 1, "a star needs at least one leaf");
    let mut b: ProfileBuilder<u32> = ProfileBuilder::new();
    let mut combo: Vec<usize> = Vec::new();
    for center in 0..g.num_vertices() as u32 {
        let nb = g.neighbors(center);
        if nb.len() < k {
            continue;
        }
        // Iterate k-combinations of the neighbour list.
        combo.clear();
        combo.extend(0..k);
        loop {
            let mut refs: Vec<u32> = combo.iter().map(|&i| nb[i]).collect();
            refs.push(center);
            b.add_result(1.0, refs);
            // Next combination.
            let mut i = k;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if combo[i] != i + nb.len() - k {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    combo.clear();
                    break;
                }
            }
            if combo.is_empty() {
                break;
            }
        }
    }
    b.build()
}

/// Counts `k`-stars without lineage: `Σ_v C(d_v, k)`.
pub fn star_count(g: &Graph, k: usize) -> u64 {
    (0..g.num_vertices() as u32).map(|v| binomial(g.degree(v) as u64, k as u64)).sum()
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut out = 1u64;
    for i in 0..k {
        out = out * (n - i) / (i + 1);
    }
    out
}

/// Counts common elements of two sorted lists strictly greater than `above`.
fn intersect_above(a: &[u32], b: &[u32], above: u32) -> u64 {
    let mut i = a.partition_point(|&x| x <= above);
    let mut j = b.partition_point(|&x| x <= above);
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Converts a graph into an engine instance over the node-DP schema (edges
/// stored in both directions, as in the paper's SQL formulation).
pub fn to_instance(g: &Graph) -> r2t_engine::Instance {
    use r2t_engine::Value;
    let mut inst = r2t_engine::Instance::new();
    inst.insert_all("Node", (0..g.num_vertices() as i64).map(|i| vec![Value::Int(i)]));
    let mut edges = Vec::with_capacity(2 * g.num_edges());
    for (u, v) in g.edges() {
        edges.push(vec![Value::Int(u as i64), Value::Int(v as i64)]);
        edges.push(vec![Value::Int(v as i64), Value::Int(u as i64)]);
    }
    inst.insert_all("Edge", edges);
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, preferential_attachment};
    use r2t_engine::schema::graph_schema_node_dp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k4_plus_tail() -> Graph {
        // K4 on {0,1,2,3} plus tail 3-4-5.
        Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn counts_on_known_graph() {
        let g = k4_plus_tail();
        assert_eq!(Pattern::Edge.count(&g), 8);
        // Wedges: degrees 3,3,3,4,2,1 → 3·C(3,2) + C(4,2) + C(2,2) = 9+6+1.
        assert_eq!(Pattern::Path2.count(&g), 16);
        assert_eq!(Pattern::Triangle.count(&g), 4);
        // 4-cycles in K4: 3.
        assert_eq!(Pattern::Rectangle.count(&g), 3);
    }

    #[test]
    fn profile_totals_match_counts() {
        let g = k4_plus_tail();
        for p in Pattern::ALL {
            assert_eq!(p.profile(&g).query_result(), p.count(&g) as f64, "{p:?}");
        }
    }

    #[test]
    fn profiles_reference_pattern_nodes() {
        let g = k4_plus_tail();
        let p = Pattern::Triangle.profile(&g);
        assert!(p.results.iter().all(|r| r.refs.len() == 3));
        let p = Pattern::Rectangle.profile(&g);
        assert!(p.results.iter().all(|r| r.refs.len() == 4));
        // Every K4 node lies in 3 of the 4 triangles.
        let tri = Pattern::Triangle.profile(&g);
        assert_eq!(tri.max_sensitivity(), 3.0);
    }

    #[test]
    fn engine_agrees_on_random_graphs() {
        let schema = graph_schema_node_dp();
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos_renyi(14, 0.3, &mut rng);
            let inst = to_instance(&g);
            for p in Pattern::ALL {
                let direct = p.count(&g) as f64;
                let via_engine = r2t_engine::exec::evaluate(&schema, &inst, &p.to_query()).unwrap();
                assert_eq!(direct, via_engine, "{p:?} seed {seed}");
                // Lineage sensitivities agree too.
                let prof_direct = p.profile(&g);
                let prof_engine = r2t_engine::exec::profile(&schema, &inst, &p.to_query()).unwrap();
                let mut s1 = prof_direct.sensitivities();
                let mut s2 = prof_engine.sensitivities();
                s1.sort_by(|x, y| x.partial_cmp(y).unwrap());
                s2.sort_by(|x, y| x.partial_cmp(y).unwrap());
                // Unreferenced nodes don't get ids; compare non-zero tails.
                assert_eq!(s1, s2, "{p:?} seed {seed}");
            }
        }
    }

    #[test]
    fn gs_formulas() {
        assert_eq!(Pattern::Edge.global_sensitivity(16.0), 16.0);
        assert_eq!(Pattern::Path2.global_sensitivity(16.0), 256.0);
        assert_eq!(Pattern::Triangle.global_sensitivity(16.0), 256.0);
        assert_eq!(Pattern::Rectangle.global_sensitivity(16.0), 4096.0);
    }

    #[test]
    fn star_profile_matches_count() {
        let g = k4_plus_tail();
        for k in 1..=3 {
            let p = star_profile(&g, k);
            assert_eq!(p.query_result(), star_count(&g, k) as f64, "k = {k}");
            assert!(p.results.iter().all(|r| r.refs.len() == k + 1));
        }
        // 2-stars are exactly the wedges.
        assert_eq!(star_count(&g, 2), Pattern::Path2.count(&g));
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(4, 4), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn rectangle_counting_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = preferential_attachment(300, 3, &mut rng);
        let c = Pattern::Rectangle.count(&g);
        let p = Pattern::Rectangle.profile(&g);
        assert_eq!(p.query_result(), c as f64);
    }
}
