//! Simple undirected graphs.

use std::collections::HashSet;

/// A simple undirected graph on vertices `0..n` stored as sorted adjacency
/// lists (no self-loops, no parallel edges).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates an empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n] }
    }

    /// Builds a graph from an (unordered, possibly duplicated) edge list.
    /// Self-loops are dropped; vertex ids beyond the max endpoint extend `n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let max_v = edges.iter().map(|&(a, b)| a.max(b)).max().map_or(0, |m| m as usize + 1);
        let mut g = Graph::new(n.max(max_v));
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                g.adj[a as usize].push(b);
                g.adj[b as usize].push(a);
            }
        }
        for l in &mut g.adj {
            l.sort_unstable();
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Adds an undirected edge if not present (O(deg)).
    pub fn add_edge(&mut self, a: u32, b: u32) -> bool {
        if a == b || self.has_edge(a, b) {
            return false;
        }
        let m = self.adj.len().max(a.max(b) as usize + 1);
        self.adj.resize(m, Vec::new());
        let pa = self.adj[a as usize].partition_point(|&x| x < b);
        self.adj[a as usize].insert(pa, b);
        let pb = self.adj[b as usize].partition_point(|&x| x < a);
        self.adj[b as usize].insert(pb, a);
        true
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.adj.get(a as usize).is_some_and(|l| l.binary_search(&b).is_ok())
    }

    /// Sorted neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Iterates over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, l)| {
            let u = u as u32;
            l.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Returns a copy where every vertex keeps at most `cap` incident edges
    /// (excess edges removed deterministically, highest-degree partners
    /// first). Used to enforce the public degree bound `D` on generated
    /// datasets.
    pub fn cap_degree(&self, cap: usize) -> Graph {
        let mut keep: Vec<(u32, u32)> = Vec::new();
        let mut deg = vec![0usize; self.num_vertices()];
        // Greedy: process edges sorted by the max endpoint degree ascending,
        // keeping an edge if both endpoints have residual capacity.
        let mut edges: Vec<(u32, u32)> = self.edges().collect();
        edges.sort_by_key(|&(a, b)| self.degree(a).max(self.degree(b)));
        for (a, b) in edges {
            if deg[a as usize] < cap && deg[b as usize] < cap {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
                keep.push((a, b));
            }
        }
        Graph::from_edges(self.num_vertices(), &keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn add_edge_keeps_sorted_adjacency() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(3, 1));
        assert!(g.add_edge(3, 0));
        assert!(g.add_edge(3, 2));
        assert!(!g.add_edge(3, 1));
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
        assert_eq!(g.degree(3), 3);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edges_iterator_each_once() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2), (0, 2)]);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn cap_degree_enforces_bound() {
        // Star with 5 leaves capped at 2.
        let g = Graph::from_edges(0, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = g.cap_degree(2);
        assert!(c.max_degree() <= 2);
        assert_eq!(c.degree(0), 2);
    }
}
