//! # r2t-graph — graph substrate for node-DP pattern counting
//!
//! Graph pattern counting under node-DP is the paper's headline special case
//! of SPJA queries with FK constraints (Example 3.1: schema
//! `{Node(id), Edge(src,dst)}` with both edge endpoints referencing `Node`,
//! `Node` primary private). This crate provides:
//!
//! * [`graph::Graph`] — a simple undirected graph.
//! * [`generators`] — synthetic graph families standing in for the paper's
//!   SNAP datasets (preferential attachment for the social networks, a
//!   perturbed grid for the road networks); see DESIGN.md §2.
//! * [`datasets`] — the five named stand-in datasets with their degree
//!   bounds `D` from Table 1.
//! * [`patterns`] — lineage-tracking enumerators for the four evaluation
//!   queries (edges `Q1−`, length-2 paths `Q2−`, triangles `QΔ`,
//!   rectangles `Q□`), producing [`r2t_engine::QueryProfile`]s directly, plus
//!   the equivalent engine IR queries for cross-checking.
//! * [`baselines`] — graph-specific DP baselines: naive truncation with
//!   smooth sensitivity (NT), the smooth distance estimator (SDE), and a
//!   bounded recursive mechanism (RM).
//! * [`io`] — SNAP-format edge-list reading/writing, so the real datasets
//!   can be dropped in when available.
//! * [`stats`] — degree distributions and clustering, for comparing the
//!   stand-ins against Table 1 of the paper.

//! ```
//! use r2t_graph::{Graph, Pattern};
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
//! assert_eq!(Pattern::Triangle.count(&g), 1);
//! let profile = Pattern::Triangle.profile(&g); // node-DP lineage
//! assert_eq!(profile.query_result(), 1.0);
//! assert_eq!(profile.results[0].refs.len(), 3); // references its 3 nodes
//! ```

pub mod baselines;
pub mod datasets;
pub mod generators;
pub mod graph;
pub mod io;
pub mod patterns;
pub mod stats;

pub use graph::Graph;
pub use patterns::Pattern;
