//! SNAP-format edge-list I/O.
//!
//! The paper's datasets come from SNAP as whitespace-separated edge lists
//! with `#` comment lines. This module lets the real datasets be dropped in
//! for the benchmark harness when they are available locally.

use crate::graph::Graph;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a SNAP-style edge list: one `src dst` pair per line, `#` comments
/// skipped, duplicate/reversed edges and self-loops merged away. Vertex ids
/// are compacted to `0..n`.
pub fn read_edge_list<R: Read>(reader: R) -> std::io::Result<Graph> {
    let mut ids: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut line = String::new();
    let mut buf = BufReader::new(reader);
    let intern = |raw: u64, ids: &mut std::collections::HashMap<u64, u32>| -> u32 {
        let next = ids.len() as u32;
        *ids.entry(raw).or_insert(next)
    };
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad edge line: {t:?}"),
            ));
        };
        let a = intern(a, &mut ids);
        let b = intern(b, &mut ids);
        edges.push((a, b));
    }
    Ok(Graph::from_edges(ids.len(), &edges))
}

/// Writes a graph as a SNAP-style edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# Nodes: {} Edges: {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn comments_and_duplicates_handled() {
        let text = "# a comment\n5 7\n7 5\n5 5\n\n7 9\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_line_rejected() {
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
    }
}
