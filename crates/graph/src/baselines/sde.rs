//! SDE: smooth distance estimator (Blocki et al.).
//!
//! Projects the graph onto the family `H_θ` of graphs with maximum degree
//! ≤ θ (here: greedy removal of highest-degree nodes until the bound holds,
//! which upper-bounds the true node-removal distance), answers on the
//! projection, and adds noise proportional to a smoothed estimate of the
//! distance times the restricted sensitivity `C_Q(θ)`. The smoothing
//! `max_t e^{-βt}(d+t+1)` with Cauchy noise follows the standard recipe.
//!
//! On skewed graphs the distance estimate is large, which reproduces SDE's
//! characteristic blow-up in Table 2 of the paper.

use super::{cauchy, GraphMechanism};
use crate::graph::Graph;
use crate::patterns::Pattern;
use rand::RngCore;

/// The SDE baseline.
#[derive(Debug, Clone)]
pub struct SmoothDistanceEstimator {
    /// The pattern being counted.
    pub pattern: Pattern,
    /// Degree bound θ defining the projection family.
    pub theta: f64,
    /// Privacy budget ε.
    pub epsilon: f64,
}

impl SmoothDistanceEstimator {
    /// Greedy projection: repeatedly delete a maximum-degree node until the
    /// degree bound holds. Returns the projected graph and the number of
    /// deletions (an upper bound on the distance to `H_θ`).
    pub fn project(g: &Graph, theta: f64) -> (Graph, usize) {
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        let mut removed = 0usize;
        let mut alive = vec![true; g.num_vertices()];
        loop {
            let mut deg = vec![0usize; g.num_vertices()];
            for &(u, v) in &edges {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
            let worst = (0..g.num_vertices()).filter(|&v| alive[v]).max_by_key(|&v| deg[v]);
            match worst {
                Some(v) if deg[v] as f64 > theta => {
                    alive[v] = false;
                    removed += 1;
                    edges.retain(|&(a, b)| a as usize != v && b as usize != v);
                }
                _ => break,
            }
        }
        (Graph::from_edges(g.num_vertices(), &edges), removed)
    }

    fn smooth_distance(&self, distance: usize) -> f64 {
        let beta = self.epsilon / 6.0;
        // max_t e^{-βt}(d + t + 1): optimum at t = 1/β − (d+1), clamped ≥ 0.
        let d = distance as f64;
        let t_opt = (1.0 / beta - (d + 1.0)).max(0.0);
        (-beta * t_opt).exp() * (d + t_opt + 1.0)
    }
}

impl GraphMechanism for SmoothDistanceEstimator {
    fn name(&self) -> String {
        format!("SDE(theta={})", self.theta)
    }

    fn run(&self, g: &Graph, rng: &mut dyn RngCore) -> f64 {
        let (projected, distance) = Self::project(g, self.theta);
        let count = self.pattern.count(&projected) as f64;
        let scale = self.pattern.global_sensitivity(self.theta) * self.smooth_distance(distance);
        count + 2.0 * scale / self.epsilon * cauchy(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn projection_reaches_degree_bound() {
        let g = Graph::from_edges(0, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let (p, removed) = SmoothDistanceEstimator::project(&g, 2.0);
        assert!(p.max_degree() <= 2);
        assert_eq!(removed, 1); // removing the hub suffices
    }

    #[test]
    fn zero_distance_when_already_bounded() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2)]);
        let (_, removed) = SmoothDistanceEstimator::project(&g, 4.0);
        assert_eq!(removed, 0);
    }

    #[test]
    fn noise_scale_grows_with_distance() {
        let m = SmoothDistanceEstimator { pattern: Pattern::Edge, theta: 2.0, epsilon: 1.0 };
        assert!(m.smooth_distance(10) > m.smooth_distance(0));
    }

    #[test]
    fn near_exact_on_bounded_graph_with_huge_epsilon() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2), (2, 3)]);
        let m = SmoothDistanceEstimator { pattern: Pattern::Edge, theta: 4.0, epsilon: 1e12 };
        let mut rng = StdRng::seed_from_u64(3);
        assert!((m.run(&g, &mut rng) - 3.0).abs() < 1e-3);
    }
}
