//! NT: naive truncation with smooth sensitivity (Kasiviswanathan et al.).
//!
//! Given a degree threshold θ, the mechanism deletes every node whose degree
//! exceeds θ, counts the pattern on the truncated graph, and adds noise
//! scaled by a smooth upper bound on the truncated query's local
//! sensitivity. Our smooth bound uses the analytic envelope
//! `LS_t ≤ C_Q(θ)·(t+1)` where `C_Q(θ)` is the maximum number of patterns a
//! single node can join in a θ-degree-bounded graph (θ, θ², θ², θ³ for the
//! four queries), smoothed as `S* = max_t e^{-βt}·LS_t` with `β = ε/6`, and
//! Cauchy noise `2S*/ε·η` for pure ε-DP (the standard recipe).
//!
//! The two failure modes the paper measures are both preserved: a large
//! *bias* when θ cuts real nodes, and θ-polynomial *noise* when θ is large.

use super::{cauchy, GraphMechanism};
use crate::graph::Graph;
use crate::patterns::Pattern;
use rand::RngCore;

/// The NT baseline.
#[derive(Debug, Clone)]
pub struct NaiveTruncationSmooth {
    /// The pattern being counted.
    pub pattern: Pattern,
    /// Degree truncation threshold θ.
    pub theta: f64,
    /// Privacy budget ε.
    pub epsilon: f64,
}

impl NaiveTruncationSmooth {
    /// Removes all nodes with degree above θ (and their edges).
    pub fn truncate(g: &Graph, theta: f64) -> Graph {
        let keep: Vec<bool> =
            (0..g.num_vertices() as u32).map(|v| (g.degree(v) as f64) <= theta).collect();
        let edges: Vec<(u32, u32)> =
            g.edges().filter(|&(u, v)| keep[u as usize] && keep[v as usize]).collect();
        Graph::from_edges(g.num_vertices(), &edges)
    }

    /// The smooth upper bound `S* = max_{t≥0} e^{-βt}·C_Q(θ)·(t+1)`.
    pub fn smooth_bound(&self) -> f64 {
        let c = self.pattern.global_sensitivity(self.theta);
        let beta = self.epsilon / 6.0;
        // d/dt [e^{-βt}(t+1)] = 0 at t = 1/β − 1.
        let t_opt = (1.0 / beta - 1.0).max(0.0);
        c * (-beta * t_opt).exp() * (t_opt + 1.0)
    }
}

impl GraphMechanism for NaiveTruncationSmooth {
    fn name(&self) -> String {
        format!("NT(theta={})", self.theta)
    }

    fn run(&self, g: &Graph, rng: &mut dyn RngCore) -> f64 {
        let truncated = Self::truncate(g, self.theta);
        let count = self.pattern.count(&truncated) as f64;
        count + 2.0 * self.smooth_bound() / self.epsilon * cauchy(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truncation_removes_high_degree_nodes() {
        // Star with 5 leaves plus a triangle.
        let g =
            Graph::from_edges(0, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (6, 7), (7, 8), (6, 8)]);
        let t = NaiveTruncationSmooth::truncate(&g, 2.0);
        // Node 0 (degree 5) removed; the triangle stays.
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.degree(0), 0);
    }

    #[test]
    fn smooth_bound_grows_with_theta() {
        let mk = |theta| NaiveTruncationSmooth { pattern: Pattern::Triangle, theta, epsilon: 1.0 };
        assert!(mk(8.0).smooth_bound() < mk(64.0).smooth_bound());
    }

    #[test]
    fn unbiased_when_theta_above_max_degree() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2), (0, 2)]);
        let m = NaiveTruncationSmooth { pattern: Pattern::Edge, theta: 10.0, epsilon: 1e12 };
        let mut rng = StdRng::seed_from_u64(1);
        // With an enormous ε the noise vanishes and the answer is exact.
        assert!((m.run(&g, &mut rng) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn biased_when_theta_cuts_nodes() {
        // The star: truncating at θ=2 removes all its edges.
        let g = Graph::from_edges(0, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let m = NaiveTruncationSmooth { pattern: Pattern::Edge, theta: 2.0, epsilon: 1e12 };
        let mut rng = StdRng::seed_from_u64(2);
        assert!(m.run(&g, &mut rng).abs() < 1e-3); // everything truncated
    }
}
