//! RM: a recursive-mechanism stand-in (Chen & Zhou).
//!
//! The original recursive mechanism is a deep recursion over noisy maxima
//! whose cost kept it from finishing on 17 of the paper's 20 test cells
//! (6-hour limit). We implement an *inverse-sensitivity-style* stand-in that
//! matches its qualitative profile — very accurate when the instance is
//! stable under deletions, very costly on large skewed graphs:
//!
//! 1. Greedily delete the currently highest-sensitivity node, producing a
//!    monotone chain of counts `Q = o_0 ≥ o_1 ≥ … ≥ o_R` where `o_r` is the
//!    count after `r` deletions (the deletion distance to achieve `o_r`).
//! 2. Release `o_r` sampled by the exponential mechanism with utility `−r`
//!    (distance sensitivity 1 under node neighbours), i.e.
//!    `Pr[r] ∝ exp(−ε·r/2)`.
//!
//! On deletion-stable instances (road networks) `o_0` wins with overwhelming
//! probability and the error is near zero — matching RM's reported cells.

use super::GraphMechanism;
use crate::graph::Graph;
use crate::patterns::Pattern;
use r2t_core::noise::uniform01;
use rand::RngCore;

/// The RM stand-in.
#[derive(Debug, Clone)]
pub struct RecursiveMechanismLite {
    /// The pattern being counted.
    pub pattern: Pattern,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Maximum deletion-chain length (depth cap; the stand-in's concession
    /// to the original's unbounded recursion).
    pub max_depth: usize,
}

impl RecursiveMechanismLite {
    /// Builds the monotone deletion chain `o_0 ≥ o_1 ≥ …`.
    pub fn deletion_chain(&self, g: &Graph) -> Vec<f64> {
        let mut chain = Vec::with_capacity(self.max_depth + 1);
        let mut current = g.clone();
        chain.push(self.pattern.count(&current) as f64);
        for _ in 0..self.max_depth {
            if chain.last() == Some(&0.0) {
                break;
            }
            // Delete the maximum-degree node — a cheap, deterministic proxy
            // for the node participating in the most patterns.
            let Some(victim) =
                (0..current.num_vertices() as u32).max_by_key(|&v| current.degree(v))
            else {
                break;
            };
            let edges: Vec<(u32, u32)> =
                current.edges().filter(|&(u, v)| u != victim && v != victim).collect();
            current = Graph::from_edges(current.num_vertices(), &edges);
            chain.push(self.pattern.count(&current) as f64);
        }
        chain
    }
}

impl GraphMechanism for RecursiveMechanismLite {
    fn name(&self) -> String {
        "RM".to_string()
    }

    fn run(&self, g: &Graph, rng: &mut dyn RngCore) -> f64 {
        let chain = self.deletion_chain(g);
        // Exponential mechanism over chain indices with utility -r: sample
        // via inverse CDF of the geometric-like distribution.
        let lambda = self.epsilon / 2.0;
        let weights: Vec<f64> = (0..chain.len()).map(|r| (-lambda * r as f64).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut target = uniform01(rng) * total;
        for (r, w) in weights.iter().enumerate() {
            if target < *w || r == chain.len() - 1 {
                return chain[r];
            }
            target -= w;
        }
        *chain.last().expect("chain nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_is_monotone_decreasing() {
        let g = Graph::from_edges(0, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let m = RecursiveMechanismLite { pattern: Pattern::Triangle, epsilon: 1.0, max_depth: 8 };
        let chain = m.deletion_chain(&g);
        assert_eq!(chain[0], 4.0);
        for w in chain.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(*chain.last().unwrap(), 0.0);
    }

    #[test]
    fn accurate_on_stable_instances() {
        // A long path: deleting any node barely changes the edge count, and
        // the exponential mechanism picks r=0 with high probability.
        let edges: Vec<(u32, u32)> = (0..200).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(0, &edges);
        let m = RecursiveMechanismLite { pattern: Pattern::Edge, epsilon: 2.0, max_depth: 16 };
        let mut rng = StdRng::seed_from_u64(1);
        let runs = 40;
        let mean: f64 = (0..runs).map(|_| m.run(&g, &mut rng)).sum::<f64>() / runs as f64;
        assert!((mean - 200.0).abs() < 8.0, "{mean}");
    }

    #[test]
    fn depth_cap_respected() {
        let edges: Vec<(u32, u32)> = (0..50).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(0, &edges);
        let m = RecursiveMechanismLite { pattern: Pattern::Edge, epsilon: 1.0, max_depth: 3 };
        assert!(m.deletion_chain(&g).len() <= 4);
    }
}
