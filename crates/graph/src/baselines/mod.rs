//! Graph-specific node-DP baselines from the paper's evaluation (Table 2):
//! NT (naive truncation + smooth sensitivity), SDE (smooth distance
//! estimator), and RM (recursive-mechanism stand-in). See DESIGN.md §2 for
//! the documented simplifications relative to the original papers.

mod nt;
mod rm;
mod sde;

pub use nt::NaiveTruncationSmooth;
pub use rm::RecursiveMechanismLite;
pub use sde::SmoothDistanceEstimator;

use crate::graph::Graph;
use rand::RngCore;

/// A node-DP mechanism answering a graph pattern counting query directly on
/// the graph (unlike `r2t_core::Mechanism`, which consumes query profiles).
pub trait GraphMechanism {
    /// Display name.
    fn name(&self) -> String;

    /// Runs the mechanism on a graph.
    fn run(&self, g: &Graph, rng: &mut dyn RngCore) -> f64;
}

/// Samples from a standard Cauchy distribution (used by smooth-sensitivity
/// mechanisms for pure ε-DP).
pub(crate) fn cauchy(rng: &mut dyn RngCore) -> f64 {
    let u = r2t_core::noise::uniform01(rng);
    (std::f64::consts::PI * (u - 0.5)).tan()
}
