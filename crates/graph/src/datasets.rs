//! Synthetic stand-ins for the paper's five SNAP datasets (Table 1).
//!
//! The real datasets are not bundled (SNAP is an online source); these
//! generators reproduce the *structural contrast* the evaluation depends on:
//! three heavy-tailed social/co-purchase networks with degree bound
//! `D = 1024`, and two near-planar road networks with `D = 16`. Node counts
//! are scaled down (~300×) so the truncation LPs stay laptop-sized on a single core; pass a
//! larger `scale` to grow them. Real data can be loaded with
//! [`crate::io::read_edge_list`] and wrapped in a [`Dataset`] manually.

use crate::generators::{perturbed_grid, preferential_attachment};
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named benchmark dataset: a graph plus its public degree bound `D`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name (matching the paper's dataset it stands in for).
    pub name: &'static str,
    /// Public degree upper bound `D` (Table 1); determines `GS_Q`.
    pub degree_bound: f64,
    /// The graph.
    pub graph: Graph,
}

impl Dataset {
    /// Convenience: basic statistics string (nodes / edges / max degree).
    pub fn stats(&self) -> String {
        format!(
            "{}: {} nodes, {} edges, max degree {}",
            self.name,
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.graph.max_degree()
        )
    }
}

/// Deezer stand-in: social friendship network (heavy-tailed, D = 1024).
pub fn deezer_like(scale: f64) -> Dataset {
    let n = (440.0 * scale) as usize;
    let mut rng = StdRng::seed_from_u64(0xDEE2E1);
    let graph = preferential_attachment(n.max(8), 4, &mut rng).cap_degree(420);
    Dataset { name: "Deezer-like", degree_bound: 1024.0, graph }
}

/// Amazon1 stand-in: co-purchase network (heavy-tailed, sparser, D = 1024).
pub fn amazon1_like(scale: f64) -> Dataset {
    let n = (800.0 * scale) as usize;
    let mut rng = StdRng::seed_from_u64(0xA3A201);
    let graph = preferential_attachment(n.max(8), 3, &mut rng).cap_degree(420);
    Dataset { name: "Amazon1-like", degree_bound: 1024.0, graph }
}

/// Amazon2 stand-in: second co-purchase network (D = 1024).
pub fn amazon2_like(scale: f64) -> Dataset {
    let n = (1000.0 * scale) as usize;
    let mut rng = StdRng::seed_from_u64(0xA3A202);
    let graph = preferential_attachment(n.max(8), 3, &mut rng).cap_degree(549);
    Dataset { name: "Amazon2-like", degree_bound: 1024.0, graph }
}

/// RoadnetPA stand-in: near-planar road network (max degree ≤ 9, D = 16).
pub fn roadnet_pa_like(scale: f64) -> Dataset {
    let side = (33.0 * scale.sqrt()) as usize;
    let mut rng = StdRng::seed_from_u64(0x80AD9A);
    let graph = perturbed_grid(side.max(4), side.max(4), 0.10, 0.06, &mut rng);
    Dataset { name: "RoadnetPA-like", degree_bound: 16.0, graph }
}

/// RoadnetCA stand-in: larger road network (max degree ≤ 12, D = 16).
pub fn roadnet_ca_like(scale: f64) -> Dataset {
    let side = (44.0 * scale.sqrt()) as usize;
    let mut rng = StdRng::seed_from_u64(0x80ADCA);
    let graph = perturbed_grid(side.max(4), side.max(4), 0.08, 0.04, &mut rng);
    Dataset { name: "RoadnetCA-like", degree_bound: 16.0, graph }
}

/// All five datasets at the given scale (1.0 = the default laptop scale).
pub fn all(scale: f64) -> Vec<Dataset> {
    vec![
        deezer_like(scale),
        amazon1_like(scale),
        amazon2_like(scale),
        roadnet_pa_like(scale),
        roadnet_ca_like(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_bounds_hold() {
        for d in all(0.5) {
            assert!(
                (d.graph.max_degree() as f64) <= d.degree_bound,
                "{}: max degree {} exceeds D {}",
                d.name,
                d.graph.max_degree(),
                d.degree_bound
            );
        }
    }

    #[test]
    fn social_vs_road_contrast() {
        let social = deezer_like(1.0);
        let road = roadnet_pa_like(1.0);
        assert!(social.graph.max_degree() > 8 * road.graph.max_degree());
    }

    #[test]
    fn scaling_grows_graphs() {
        let small = amazon1_like(0.5);
        let big = amazon1_like(1.5);
        assert!(big.graph.num_vertices() > 2 * small.graph.num_vertices());
    }
}
