//! Graph statistics: degree distributions, clustering, and the Table-1-style
//! dataset summary used to compare the synthetic stand-ins against the
//! paper's SNAP datasets.

use crate::graph::Graph;
use crate::patterns::Pattern;

/// Summary statistics for a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// 99th-percentile degree.
    pub p99_degree: usize,
    /// Global clustering coefficient `3·triangles / wedges` (0 if no wedges).
    pub clustering: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn of(g: &Graph) -> GraphStats {
        let nodes = g.num_vertices();
        let edges = g.num_edges();
        let mut degrees: Vec<usize> = (0..nodes as u32).map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let max_degree = degrees.last().copied().unwrap_or(0);
        let mean_degree = if nodes == 0 { 0.0 } else { 2.0 * edges as f64 / nodes as f64 };
        let p99_degree = if nodes == 0 { 0 } else { degrees[(nodes - 1) * 99 / 100] };
        let wedges = Pattern::Path2.count(g);
        let triangles = Pattern::Triangle.count(g);
        let clustering = if wedges == 0 { 0.0 } else { 3.0 * triangles as f64 / wedges as f64 };
        GraphStats { nodes, edges, max_degree, mean_degree, p99_degree, clustering }
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() as u32 {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{perturbed_grid, preferential_attachment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_graph_stats() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert!((s.clustering - 1.0).abs() < 1e-12, "a triangle is fully clustered");
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(300, 2, &mut rng);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 300);
        assert_eq!(h.len(), g.max_degree() + 1);
    }

    #[test]
    fn social_more_clustered_and_skewed_than_road() {
        let mut rng = StdRng::seed_from_u64(4);
        let social = GraphStats::of(&preferential_attachment(800, 3, &mut rng));
        let road = GraphStats::of(&perturbed_grid(28, 28, 0.05, 0.05, &mut rng));
        assert!(social.max_degree > 4 * road.max_degree);
        assert!(social.p99_degree > road.p99_degree);
    }

    #[test]
    fn empty_graph() {
        let s = GraphStats::of(&Graph::new(0));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.clustering, 0.0);
    }
}
