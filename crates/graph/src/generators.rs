//! Synthetic graph generators.
//!
//! These produce the qualitative graph families of the paper's evaluation:
//! preferential attachment (heavy-tailed degree distributions like the
//! Deezer/Amazon social and co-purchase networks) and perturbed grids
//! (near-constant low degree like the road networks). All generators are
//! deterministic given the RNG.

use crate::graph::Graph;
use rand::Rng;

/// Barabási–Albert preferential attachment: each new vertex attaches to `m`
/// existing vertices sampled proportionally to their degree (via the
/// repeated-endpoints trick). Produces a heavy-tailed degree distribution.
pub fn preferential_attachment<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // endpoint pool: every edge contributes both endpoints, so sampling a
    // uniform pool element is degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique on m+1 vertices.
    for a in 0..=(m as u32) {
        for b in (a + 1)..=(m as u32) {
            edges.push((a, b));
            pool.push(a);
            pool.push(b);
        }
    }
    for v in (m + 1)..n {
        let v = v as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let t = pool[rng.random_range(0..pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.random::<f64>() < p {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A road-network-like graph: a `rows × cols` grid where each node connects
/// to its right and down neighbours, plus random diagonal shortcuts with
/// probability `diag_p`, and a fraction `drop_p` of grid edges removed.
/// Degrees stay small (≤ 8), mimicking RoadnetPA/CA.
pub fn perturbed_grid<R: Rng>(
    rows: usize,
    cols: usize,
    diag_p: f64,
    drop_p: f64,
    rng: &mut R,
) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.random::<f64>() >= drop_p {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows && rng.random::<f64>() >= drop_p {
                edges.push((id(r, c), id(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols && rng.random::<f64>() < diag_p {
                edges.push((id(r, c), id(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// An approximately `d`-regular graph via `d/2` superimposed random
/// Hamiltonian-style cycles (requires even `d`).
pub fn near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d.is_multiple_of(2), "near_regular requires even degree");
    let mut edges = Vec::new();
    for _ in 0..d / 2 {
        // A random cyclic permutation contributes degree 2 to every vertex.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for i in 0..n {
            edges.push((perm[i], perm[(i + 1) % n]));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = preferential_attachment(2000, 3, &mut rng);
        assert_eq!(g.num_vertices(), 2000);
        // Roughly m edges per non-seed vertex.
        assert!(g.num_edges() > 2000 * 2 && g.num_edges() < 2000 * 4);
        // Hub degree far above the mean (heavy tail).
        let mean = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!(g.max_degree() as f64 > 5.0 * mean, "max {} mean {mean}", g.max_degree());
    }

    #[test]
    fn perturbed_grid_has_low_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = perturbed_grid(40, 40, 0.1, 0.05, &mut rng);
        assert_eq!(g.num_vertices(), 1600);
        assert!(g.max_degree() <= 8, "max degree {}", g.max_degree());
        // About 2 edges per node.
        assert!(g.num_edges() > 2500);
    }

    #[test]
    fn near_regular_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = near_regular(500, 4, &mut rng);
        // Cycles can collide, so allow a little slack below 4.
        let avg = 2.0 * g.num_edges() as f64 / 500.0;
        assert!(avg > 3.5 && avg <= 4.0, "avg {avg}");
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn erdos_renyi_edge_count_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi(300, 0.05, &mut rng);
        let expected = 0.05 * 300.0 * 299.0 / 2.0;
        assert!((g.num_edges() as f64 - expected).abs() < expected * 0.25);
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = preferential_attachment(200, 2, &mut StdRng::seed_from_u64(9));
        let g2 = preferential_attachment(200, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }
}
