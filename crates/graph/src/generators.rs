//! Synthetic graph generators.
//!
//! These produce the qualitative graph families of the paper's evaluation:
//! preferential attachment (heavy-tailed degree distributions like the
//! Deezer/Amazon social and co-purchase networks) and perturbed grids
//! (near-constant low degree like the road networks). All generators are
//! deterministic given the RNG.

use crate::graph::Graph;
use rand::Rng;

/// Barabási–Albert preferential attachment: each new vertex attaches to `m`
/// existing vertices sampled proportionally to their degree (via the
/// repeated-endpoints trick). Produces a heavy-tailed degree distribution.
pub fn preferential_attachment<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // endpoint pool: every edge contributes both endpoints, so sampling a
    // uniform pool element is degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique on m+1 vertices.
    for a in 0..=(m as u32) {
        for b in (a + 1)..=(m as u32) {
            edges.push((a, b));
            pool.push(a);
            pool.push(b);
        }
    }
    for v in (m + 1)..n {
        let v = v as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let t = pool[rng.random_range(0..pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.random::<f64>() < p {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Sparse Erdős–Rényi `G(n, p)` via geometric skip sampling
/// (Batagelj–Brandes): instead of `C(n, 2)` Bernoulli draws, jump straight
/// to the next present edge with a geometrically distributed skip, so the
/// cost is `O(n + m)`. This is what makes ER graphs with hundreds of
/// thousands of edges (the WCOJ benchmark scales) affordable as benchmark
/// *setup*; [`erdos_renyi`] stays untouched so existing seeds keep producing
/// byte-identical graphs (the two draw different random streams).
pub fn erdos_renyi_sparse<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    if p > 0.0 && n > 1 {
        let lq = (1.0 - p.min(1.0 - 1e-12)).ln();
        // Walk the linear index over all pairs (b, a) with a < b.
        let mut b = 1u64;
        let mut a = -1i64;
        let n = n as u64;
        loop {
            let r: f64 = rng.random::<f64>();
            let skip = ((1.0 - r).ln() / lq).floor() as i64;
            a += 1 + skip.max(0);
            while a >= b as i64 && b < n {
                a -= b as i64;
                b += 1;
            }
            if b >= n {
                break;
            }
            edges.push((a as u32, b as u32));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Planted-clique graph: a sparse ER background (`background_p`) plus
/// `num_cliques` vertex subsets of size `clique_size` completed into
/// cliques. Random sparse graphs at benchmark scale contain essentially no
/// 4-cliques (the expected count `C(n,4)·p⁶` vanishes), so this is how the
/// clique workloads of BENCH_wcoj get a nonzero, output-bounded result set
/// whose size is controlled by `num_cliques · C(clique_size, 4)` rather than
/// by luck. Deterministic given the RNG.
pub fn planted_cliques<R: Rng>(
    n: usize,
    background_p: f64,
    clique_size: usize,
    num_cliques: usize,
    rng: &mut R,
) -> Graph {
    assert!(clique_size >= 2 && n >= clique_size, "need n >= clique_size >= 2");
    let mut g = erdos_renyi_sparse(n, background_p, rng);
    let mut members: Vec<u32> = Vec::with_capacity(clique_size);
    for _ in 0..num_cliques {
        members.clear();
        while members.len() < clique_size {
            let v = rng.random_range(0..n) as u32;
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                g.add_edge(members[i], members[j]);
            }
        }
    }
    g
}

/// A road-network-like graph: a `rows × cols` grid where each node connects
/// to its right and down neighbours, plus random diagonal shortcuts with
/// probability `diag_p`, and a fraction `drop_p` of grid edges removed.
/// Degrees stay small (≤ 8), mimicking RoadnetPA/CA.
pub fn perturbed_grid<R: Rng>(
    rows: usize,
    cols: usize,
    diag_p: f64,
    drop_p: f64,
    rng: &mut R,
) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.random::<f64>() >= drop_p {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows && rng.random::<f64>() >= drop_p {
                edges.push((id(r, c), id(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols && rng.random::<f64>() < diag_p {
                edges.push((id(r, c), id(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// An approximately `d`-regular graph via `d/2` superimposed random
/// Hamiltonian-style cycles (requires even `d`).
pub fn near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d.is_multiple_of(2), "near_regular requires even degree");
    let mut edges = Vec::new();
    for _ in 0..d / 2 {
        // A random cyclic permutation contributes degree 2 to every vertex.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for i in 0..n {
            edges.push((perm[i], perm[(i + 1) % n]));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = preferential_attachment(2000, 3, &mut rng);
        assert_eq!(g.num_vertices(), 2000);
        // Roughly m edges per non-seed vertex.
        assert!(g.num_edges() > 2000 * 2 && g.num_edges() < 2000 * 4);
        // Hub degree far above the mean (heavy tail).
        let mean = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!(g.max_degree() as f64 > 5.0 * mean, "max {} mean {mean}", g.max_degree());
    }

    #[test]
    fn perturbed_grid_has_low_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = perturbed_grid(40, 40, 0.1, 0.05, &mut rng);
        assert_eq!(g.num_vertices(), 1600);
        assert!(g.max_degree() <= 8, "max degree {}", g.max_degree());
        // About 2 edges per node.
        assert!(g.num_edges() > 2500);
    }

    #[test]
    fn near_regular_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = near_regular(500, 4, &mut rng);
        // Cycles can collide, so allow a little slack below 4.
        let avg = 2.0 * g.num_edges() as f64 / 500.0;
        assert!(avg > 3.5 && avg <= 4.0, "avg {avg}");
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn erdos_renyi_edge_count_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi(300, 0.05, &mut rng);
        let expected = 0.05 * 300.0 * 299.0 / 2.0;
        assert!((g.num_edges() as f64 - expected).abs() < expected * 0.25);
    }

    #[test]
    fn erdos_renyi_sparse_edge_count_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        // ~200k edges: the WCOJ benchmark scale the O(n²) generator can't do.
        let (n, p) = (70_000usize, 8.0 / 70_000.0);
        let g = erdos_renyi_sparse(n, p, &mut rng);
        let expected = p * (n as f64) * (n as f64 - 1.0) / 2.0;
        assert!((g.num_edges() as f64 - expected).abs() < expected * 0.05, "{}", g.num_edges());
        assert_eq!(g.num_vertices(), n);
    }

    #[test]
    fn erdos_renyi_sparse_edge_cases() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(erdos_renyi_sparse(100, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi_sparse(1, 0.5, &mut rng).num_edges(), 0);
        // p = 1 yields the complete graph.
        assert_eq!(erdos_renyi_sparse(20, 1.0, &mut rng).num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn planted_cliques_contain_their_cliques() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = planted_cliques(5_000, 2.0 / 5_000.0, 6, 10, &mut rng);
        // Each planted 6-clique contributes C(6,3) = 20 triangles; overlaps
        // and the sparse background can only add more.
        let mut triangles = 0usize;
        for u in 0..g.num_vertices() as u32 {
            let nu = g.neighbors(u);
            for (i, &v) in nu.iter().enumerate() {
                if v <= u {
                    continue;
                }
                for &w in &nu[i + 1..] {
                    if g.has_edge(v, w) {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(triangles >= 10 * 20 - 40, "triangles {triangles}");
        let g2 = planted_cliques(5_000, 2.0 / 5_000.0, 6, 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = preferential_attachment(200, 2, &mut StdRng::seed_from_u64(9));
        let g2 = preferential_attachment(200, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }
}
