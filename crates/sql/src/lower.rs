//! Lowering: SQL AST → engine query IR.
//!
//! Each `(alias, column)` pair gets a join variable; top-level conjunctive
//! `col = col` predicates are folded into shared variables (union–find), so
//! the executor hash-joins on them. All other conditions become the filter
//! predicate, and the aggregate head maps onto COUNT / SUM / projection.

use crate::parser::{parse, AggAst, ColRef, CondAst, ExprAst};
use crate::SqlError;
use r2t_engine::query::{Aggregate, Atom, CmpOp, Expr, Predicate, Query, Var};
use r2t_engine::{Schema, Value};

struct Lowerer<'a> {
    schema: &'a Schema,
    /// (alias, relation name) in FROM order.
    from: Vec<(String, String)>,
    /// var id per (from index, column index).
    var_of: Vec<Vec<Var>>,
    /// union–find over variables.
    parent: Vec<Var>,
}

impl<'a> Lowerer<'a> {
    fn find(&mut self, v: Var) -> Var {
        let p = self.parent[v as usize];
        if p == v {
            v
        } else {
            let r = self.find(p);
            self.parent[v as usize] = r;
            r
        }
    }

    fn union(&mut self, a: Var, b: Var) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller id as the representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }

    /// Resolves a column reference to its variable.
    fn resolve(&mut self, c: &ColRef) -> Result<Var, SqlError> {
        let mut matches: Vec<(usize, usize)> = Vec::new();
        for (fi, (alias, rel)) in self.from.iter().enumerate() {
            if let Some(a) = &c.alias {
                if a != alias {
                    continue;
                }
            }
            let rel = self.schema.relation(rel).map_err(|e| SqlError::Semantic(e.to_string()))?;
            if let Some(ci) = rel.columns.iter().position(|col| col.eq_ignore_ascii_case(&c.column))
            {
                matches.push((fi, ci));
            }
        }
        match matches.len() {
            0 => Err(SqlError::Semantic(format!("column {} not found", display_col(c)))),
            1 => Ok(self.var_of[matches[0].0][matches[0].1]),
            _ => Err(SqlError::Semantic(format!(
                "column {} is ambiguous across {} tables",
                display_col(c),
                matches.len()
            ))),
        }
    }

    fn lower_expr(&mut self, e: &ExprAst) -> Result<Expr, SqlError> {
        Ok(match e {
            ExprAst::Col(c) => Expr::Var(self.resolve(c)?),
            ExprAst::Int(v) => Expr::Const(Value::Int(*v)),
            ExprAst::Float(v) => Expr::Const(Value::Float(*v)),
            ExprAst::Str(s) => Expr::Const(Value::str(s)),
            ExprAst::Bin(op, a, b) => {
                let (a, b) = (Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?));
                match op {
                    '+' => Expr::Add(a, b),
                    '-' => Expr::Sub(a, b),
                    '*' => Expr::Mul(a, b),
                    other => return Err(SqlError::Semantic(format!("operator {other:?}"))),
                }
            }
        })
    }

    fn lower_cond(&mut self, c: &CondAst) -> Result<Predicate, SqlError> {
        Ok(match c {
            CondAst::Cmp(op, a, b) => {
                let op = match *op {
                    "=" => CmpOp::Eq,
                    "<>" => CmpOp::Ne,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                Predicate::Cmp(op, self.lower_expr(a)?, self.lower_expr(b)?)
            }
            CondAst::And(a, b) => Predicate::And(vec![self.lower_cond(a)?, self.lower_cond(b)?]),
            CondAst::Or(a, b) => Predicate::Or(vec![self.lower_cond(a)?, self.lower_cond(b)?]),
            CondAst::Not(a) => Predicate::Not(Box::new(self.lower_cond(a)?)),
        })
    }
}

fn display_col(c: &ColRef) -> String {
    match &c.alias {
        Some(a) => format!("{a}.{}", c.column),
        None => c.column.clone(),
    }
}

/// Splits a condition into its top-level conjuncts.
fn conjuncts(c: CondAst, out: &mut Vec<CondAst>) {
    match c {
        CondAst::And(a, b) => {
            conjuncts(*a, out);
            conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// A lowered statement: the engine query plus the GROUP BY variables
/// (empty for plain queries). Grouped queries are evaluated with
/// `r2t_engine::exec::profile_grouped` and answered under DP with
/// `r2t_core::groupby::GroupByR2T` (the paper's Section 11 extension).
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredQuery {
    /// The SPJA query.
    pub query: Query,
    /// GROUP BY join variables.
    pub group_by: Vec<Var>,
}

/// Parses `sql` against `schema` into an engine [`Query`], rejecting
/// GROUP BY (use [`parse_statement`] for grouped queries).
pub fn parse_query(sql: &str, schema: &Schema) -> Result<Query, SqlError> {
    let lowered = parse_statement(sql, schema)?;
    if !lowered.group_by.is_empty() {
        return Err(SqlError::Semantic(
            "GROUP BY requires parse_statement + profile_grouped".to_string(),
        ));
    }
    Ok(lowered.query)
}

/// Parses `sql` (optionally with GROUP BY) against `schema`.
pub fn parse_statement(sql: &str, schema: &Schema) -> Result<LoweredQuery, SqlError> {
    let ast = parse(sql)?;
    // Allocate variables.
    let mut from = Vec::new();
    let mut var_of: Vec<Vec<Var>> = Vec::new();
    let mut next: Var = 0;
    for (table, alias) in &ast.from {
        let rel = schema.relation(table).map_err(|e| SqlError::Semantic(e.to_string()))?;
        let vars: Vec<Var> = (0..rel.arity())
            .map(|_| {
                let v = next;
                next += 1;
                v
            })
            .collect();
        var_of.push(vars);
        from.push((alias.clone(), table.clone()));
    }
    let mut lw = Lowerer { schema, from, var_of, parent: (0..next).collect() };

    // Partition top-level conjuncts: col=col equalities become unions.
    let mut filters: Vec<CondAst> = Vec::new();
    if let Some(w) = ast.where_clause {
        let mut parts = Vec::new();
        conjuncts(w, &mut parts);
        for p in parts {
            if let CondAst::Cmp("=", ExprAst::Col(a), ExprAst::Col(b)) = &p {
                let (va, vb) = (lw.resolve(a)?, lw.resolve(b)?);
                lw.union(va, vb);
            } else {
                filters.push(p);
            }
        }
    }

    // Canonicalize all variables through the union–find and compact ids.
    let mut canon: Vec<Var> = (0..next).map(|v| lw.find(v)).collect();
    let mut remap = vec![Var::MAX; next as usize];
    let mut compact: Var = 0;
    #[allow(clippy::needless_range_loop)] // v indexes two parallel arrays
    for v in 0..next as usize {
        let root = canon[v] as usize;
        if remap[root] == Var::MAX {
            remap[root] = compact;
            compact += 1;
        }
        canon[v] = remap[root];
    }

    let atoms: Vec<Atom> = lw
        .from
        .iter()
        .enumerate()
        .map(|(fi, (_, rel))| Atom {
            relation: rel.clone(),
            vars: lw.var_of[fi].iter().map(|&v| canon[v as usize]).collect(),
        })
        .collect();

    // Lower the aggregate and filters with canonical variables by wrapping
    // resolve: easiest is to lower first, then remap vars in the results.
    let remap_expr = |e: Expr| -> Expr { remap_expr_vars(e, &canon) };
    let aggregate = match &ast.agg {
        AggAst::CountStar => Aggregate::Count,
        AggAst::Sum(e) => Aggregate::Sum(remap_expr(lw.lower_expr(e)?)),
        AggAst::Distinct(_) => Aggregate::Count,
    };
    let projection = match &ast.agg {
        AggAst::Distinct(cols) => {
            let mut vars = Vec::new();
            for c in cols {
                vars.push(canon[lw.resolve(c)? as usize]);
            }
            Some(vars)
        }
        _ => None,
    };
    let mut preds = Vec::new();
    for f in &filters {
        preds.push(remap_pred_vars(lw.lower_cond(f)?, &canon));
    }
    let predicate = match preds.len() {
        0 => Predicate::True,
        1 => preds.pop().expect("len checked"),
        _ => Predicate::And(preds),
    };

    let mut group_by = Vec::new();
    for c in &ast.group_by {
        group_by.push(canon[lw.resolve(c)? as usize]);
    }

    Ok(LoweredQuery { query: Query { atoms, predicate, aggregate, projection }, group_by })
}

fn remap_expr_vars(e: Expr, canon: &[Var]) -> Expr {
    match e {
        Expr::Var(v) => Expr::Var(canon[v as usize]),
        Expr::Const(c) => Expr::Const(c),
        Expr::Add(a, b) => {
            Expr::Add(Box::new(remap_expr_vars(*a, canon)), Box::new(remap_expr_vars(*b, canon)))
        }
        Expr::Sub(a, b) => {
            Expr::Sub(Box::new(remap_expr_vars(*a, canon)), Box::new(remap_expr_vars(*b, canon)))
        }
        Expr::Mul(a, b) => {
            Expr::Mul(Box::new(remap_expr_vars(*a, canon)), Box::new(remap_expr_vars(*b, canon)))
        }
    }
}

fn remap_pred_vars(p: Predicate, canon: &[Var]) -> Predicate {
    match p {
        Predicate::True => Predicate::True,
        Predicate::Cmp(op, a, b) => {
            Predicate::Cmp(op, remap_expr_vars(a, canon), remap_expr_vars(b, canon))
        }
        Predicate::And(ps) => {
            Predicate::And(ps.into_iter().map(|q| remap_pred_vars(q, canon)).collect())
        }
        Predicate::Or(ps) => {
            Predicate::Or(ps.into_iter().map(|q| remap_pred_vars(q, canon)).collect())
        }
        Predicate::Not(q) => Predicate::Not(Box::new(remap_pred_vars(*q, canon))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2t_engine::schema::graph_schema_node_dp;
    use r2t_engine::{exec, Instance, Value};

    fn tiny_graph() -> Instance {
        let mut inst = Instance::new();
        inst.insert_all("Node", (0..4).map(|i| vec![Value::Int(i)]));
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            edges.push(vec![Value::Int(a), Value::Int(b)]);
            edges.push(vec![Value::Int(b), Value::Int(a)]);
        }
        inst.insert_all("Edge", edges);
        inst
    }

    #[test]
    fn edge_counting_sql() {
        let s = graph_schema_node_dp();
        let q = parse_query(
            "SELECT COUNT(*) FROM Node AS n1, Node AS n2, Edge \
             WHERE Edge.src = n1.id AND Edge.dst = n2.id AND n1.id < n2.id",
            &s,
        )
        .unwrap();
        let inst = tiny_graph();
        assert_eq!(exec::evaluate(&s, &inst, &q).unwrap(), 4.0);
    }

    #[test]
    fn equality_becomes_shared_variable() {
        let s = graph_schema_node_dp();
        let q =
            parse_query("SELECT COUNT(*) FROM Edge AS e1, Edge AS e2 WHERE e1.dst = e2.src", &s)
                .unwrap();
        // e1.dst and e2.src collapse into one variable.
        assert_eq!(q.atoms[0].vars[1], q.atoms[1].vars[0]);
    }

    #[test]
    fn distinct_lowered_to_projection() {
        let s = graph_schema_node_dp();
        let q = parse_query("SELECT DISTINCT Edge.src FROM Edge", &s).unwrap();
        assert!(q.projection.is_some());
        let inst = tiny_graph();
        // All 4 nodes appear as a source (edges are bidirectional).
        assert_eq!(exec::evaluate(&s, &inst, &q).unwrap(), 4.0);
    }

    #[test]
    fn sum_aggregate_lowered() {
        let s = graph_schema_node_dp();
        let q = parse_query("SELECT SUM(Edge.dst) FROM Edge WHERE Edge.src = 0", &s).unwrap();
        let inst = tiny_graph();
        // Edges from node 0: to 1 and 2 → sum = 3.
        assert_eq!(exec::evaluate(&s, &inst, &q).unwrap(), 3.0);
    }

    #[test]
    fn unknown_column_rejected() {
        let s = graph_schema_node_dp();
        assert!(matches!(
            parse_query("SELECT COUNT(*) FROM Edge WHERE Edge.nope = 1", &s),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let s = graph_schema_node_dp();
        assert!(matches!(
            parse_query("SELECT COUNT(*) FROM Node AS a, Node AS b WHERE id = 1", &s),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn triangle_sql_matches_pattern() {
        let s = graph_schema_node_dp();
        let q = parse_query(
            "SELECT COUNT(*) FROM Edge AS e1, Edge AS e2, Edge AS e3 \
             WHERE e1.dst = e2.src AND e2.dst = e3.dst AND e1.src = e3.src \
             AND e1.src < e1.dst AND e2.src < e2.dst",
            &s,
        )
        .unwrap();
        let inst = tiny_graph();
        // Triangles with a < b < c: exactly {0,1,2}.
        assert_eq!(exec::evaluate(&s, &inst, &q).unwrap(), 1.0);
    }
}

#[cfg(test)]
mod group_by_tests {
    use super::*;
    use r2t_engine::schema::graph_schema_node_dp;

    #[test]
    fn group_by_lowered_to_vars() {
        let s = graph_schema_node_dp();
        let q = parse_statement("SELECT COUNT(*) FROM Edge GROUP BY Edge.src", &s).unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.group_by[0], q.query.atoms[0].vars[0]);
    }

    #[test]
    fn parse_query_rejects_group_by() {
        let s = graph_schema_node_dp();
        assert!(matches!(
            parse_query("SELECT COUNT(*) FROM Edge GROUP BY Edge.src", &s),
            Err(SqlError::Semantic(_))
        ));
    }
}
