//! # r2t-sql — SQL front end
//!
//! A parser for the SQL subset the R2T prototype accepts (Section 9 of the
//! paper: SPJA queries with COUNT/SUM aggregation), lowering to the
//! `r2t-engine` query IR:
//!
//! ```sql
//! SELECT COUNT(*) | SUM(expr) | DISTINCT col [, col ...]
//! FROM table [AS alias] [, table [AS alias] ...]
//! [WHERE condition]
//! ```
//!
//! * `expr` — arithmetic (`+ - *`) over columns and numeric literals.
//! * `condition` — comparisons (`= <> < <= > >=`) combined with
//!   `AND` / `OR` / `NOT` and parentheses; string literals in single quotes.
//! * `SELECT DISTINCT c1, c2` counts distinct projected tuples (an SPJA
//!   query with projection).
//!
//! Top-level column-equality conjuncts become shared join variables (hash
//! joins); everything else stays a filter predicate. Self-joins arise
//! naturally from repeating a table with different aliases.
//!
//! ```
//! use r2t_sql::parse_query;
//! let schema = r2t_engine::schema::graph_schema_node_dp();
//! let q = parse_query(
//!     "SELECT COUNT(*) FROM Edge AS e1, Edge AS e2 \
//!      WHERE e1.dst = e2.src AND e1.src < e2.dst",
//!     &schema,
//! ).unwrap();
//! assert_eq!(q.atoms.len(), 2);
//! ```

mod lexer;
mod lower;
mod normalize;
mod parser;

pub use lexer::{tokenize, Token};
pub use lower::{parse_query, parse_statement, LoweredQuery};
pub use normalize::normalize;
pub use parser::{parse, AggAst, ColRef, CondAst, ExprAst, SelectAst};

/// Errors from parsing or lowering SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with position.
    Lex { position: usize, message: String },
    /// Syntax error.
    Parse(String),
    /// Name-resolution / semantic error.
    Semantic(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}
