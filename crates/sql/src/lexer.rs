//! SQL tokenizer.

use crate::SqlError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by the
    /// parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator: `( ) , . * + - = <> < <= > >=`.
    Sym(&'static str),
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '=' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    _ => "=",
                }));
                i += 1;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push(Token::Sym("<>"));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                position: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    out.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad float literal {text:?}"),
                    })?));
                } else {
                    let text = &input[start..i];
                    out.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad integer literal {text:?}"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT COUNT(*) FROM t WHERE a.b >= 3.5 AND c <> 'x''y'").unwrap();
        assert!(t.contains(&Token::Sym(">=")));
        assert!(t.contains(&Token::Float(3.5)));
        assert!(t.contains(&Token::Str("x'y".into())));
        assert!(t.contains(&Token::Sym("<>")));
    }

    #[test]
    fn bang_equals_normalized() {
        let t = tokenize("a != b").unwrap();
        assert_eq!(t[1], Token::Sym("<>"));
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn ints_and_dots() {
        let t = tokenize("t.c1 = 42").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("t".into()),
                Token::Sym("."),
                Token::Ident("c1".into()),
                Token::Sym("="),
                Token::Int(42)
            ]
        );
    }

    #[test]
    fn keyword_check_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
    }
}
