//! Recursive-descent parser for the SQL subset.

use crate::lexer::{tokenize, Token};
use crate::SqlError;

/// A possibly-qualified column reference `alias.column` or `column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table alias, if qualified.
    pub alias: Option<String>,
    /// Column name.
    pub column: String,
}

/// Scalar expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Column reference.
    Col(ColRef),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Binary arithmetic: `+`, `-`, `*`.
    Bin(char, Box<ExprAst>, Box<ExprAst>),
}

/// Condition AST.
#[derive(Debug, Clone, PartialEq)]
pub enum CondAst {
    /// Comparison; op ∈ {"=", "<>", "<", "<=", ">", ">="}.
    Cmp(&'static str, ExprAst, ExprAst),
    /// Conjunction.
    And(Box<CondAst>, Box<CondAst>),
    /// Disjunction.
    Or(Box<CondAst>, Box<CondAst>),
    /// Negation.
    Not(Box<CondAst>),
}

/// The SELECT head.
#[derive(Debug, Clone, PartialEq)]
pub enum AggAst {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(expr)`.
    Sum(ExprAst),
    /// `DISTINCT c1, c2, …` (count of distinct projected tuples).
    Distinct(Vec<ColRef>),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectAst {
    /// Aggregate head.
    pub agg: AggAst,
    /// FROM list: (table, alias) — alias defaults to the table name.
    pub from: Vec<(String, String)>,
    /// WHERE condition, if present.
    pub where_clause: Option<CondAst>,
    /// GROUP BY columns (empty if absent).
    pub group_by: Vec<ColRef>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t.is_kw(kw) => Ok(()),
            other => Err(SqlError::Parse(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Sym(s)) if s == sym => Ok(()),
            other => Err(SqlError::Parse(format!("expected {sym:?}, got {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, got {other:?}"))),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let column = self.ident()?;
            Ok(ColRef { alias: Some(first), column })
        } else {
            Ok(ColRef { alias: None, column: first })
        }
    }

    // expr := term (('+'|'-') term)* ; term := factor ('*' factor)*
    fn expr(&mut self) -> Result<ExprAst, SqlError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_sym("+") {
                lhs = ExprAst::Bin('+', Box::new(lhs), Box::new(self.term()?));
            } else if self.eat_sym("-") {
                lhs = ExprAst::Bin('-', Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<ExprAst, SqlError> {
        let mut lhs = self.factor()?;
        while self.eat_sym("*") {
            lhs = ExprAst::Bin('*', Box::new(lhs), Box::new(self.factor()?));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<ExprAst, SqlError> {
        match self.peek().cloned() {
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Sym("-")) => {
                self.pos += 1;
                let e = self.factor()?;
                Ok(ExprAst::Bin('-', Box::new(ExprAst::Int(0)), Box::new(e)))
            }
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(ExprAst::Int(v))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(ExprAst::Float(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(ExprAst::Str(s))
            }
            Some(Token::Ident(_)) => Ok(ExprAst::Col(self.col_ref()?)),
            other => Err(SqlError::Parse(format!("expected expression, got {other:?}"))),
        }
    }

    // cond := or_cond ; or := and ('OR' and)* ; and := unit ('AND' unit)*
    fn cond(&mut self) -> Result<CondAst, SqlError> {
        let mut lhs = self.and_cond()?;
        while self.eat_kw("OR") {
            lhs = CondAst::Or(Box::new(lhs), Box::new(self.and_cond()?));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<CondAst, SqlError> {
        let mut lhs = self.unit_cond()?;
        while self.eat_kw("AND") {
            lhs = CondAst::And(Box::new(lhs), Box::new(self.unit_cond()?));
        }
        Ok(lhs)
    }

    fn unit_cond(&mut self) -> Result<CondAst, SqlError> {
        if self.eat_kw("NOT") {
            return Ok(CondAst::Not(Box::new(self.unit_cond()?)));
        }
        if matches!(self.peek(), Some(Token::Sym("("))) {
            // Could be a parenthesized condition or expression; try the
            // condition first (backtracking on failure).
            let save = self.pos;
            self.pos += 1;
            if let Ok(c) = self.cond() {
                if self.eat_sym(")") {
                    return Ok(c);
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(Token::Sym(s @ ("=" | "<>" | "<" | "<=" | ">" | ">="))) => s,
            other => return Err(SqlError::Parse(format!("expected comparison, got {other:?}"))),
        };
        let rhs = self.expr()?;
        Ok(CondAst::Cmp(op, lhs, rhs))
    }

    fn select(&mut self) -> Result<SelectAst, SqlError> {
        self.expect_kw("SELECT")?;
        let agg = if self.eat_kw("COUNT") {
            self.expect_sym("(")?;
            self.expect_sym("*")?;
            self.expect_sym(")")?;
            AggAst::CountStar
        } else if self.eat_kw("SUM") {
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            AggAst::Sum(e)
        } else if self.eat_kw("DISTINCT") {
            let mut cols = vec![self.col_ref()?];
            while self.eat_sym(",") {
                cols.push(self.col_ref()?);
            }
            AggAst::Distinct(cols)
        } else {
            return Err(SqlError::Parse(
                "SELECT must be COUNT(*), SUM(expr), or DISTINCT cols".into(),
            ));
        };
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            let explicit_as = self.eat_kw("AS");
            // A bare alias must not be a clause keyword.
            let bare_alias = matches!(
                self.peek(),
                Some(Token::Ident(s))
                    if !s.eq_ignore_ascii_case("WHERE") && !s.eq_ignore_ascii_case("GROUP")
            );
            let alias = if explicit_as || bare_alias { self.ident()? } else { table.clone() };
            from.push((table, alias));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.cond()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.col_ref()?);
            while self.eat_sym(",") {
                group_by.push(self.col_ref()?);
            }
        }
        if self.pos != self.tokens.len() {
            return Err(SqlError::Parse(format!("trailing tokens starting at {:?}", self.peek())));
        }
        Ok(SelectAst { agg, from, where_clause, group_by })
    }
}

/// Parses a SELECT statement into an AST.
pub fn parse(sql: &str) -> Result<SelectAst, SqlError> {
    let tokens = tokenize(sql)?;
    Parser { tokens, pos: 0 }.select()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_star() {
        let ast = parse("SELECT COUNT(*) FROM Edge").unwrap();
        assert_eq!(ast.agg, AggAst::CountStar);
        assert_eq!(ast.from, vec![("Edge".into(), "Edge".into())]);
        assert!(ast.where_clause.is_none());
    }

    #[test]
    fn sum_with_arithmetic() {
        let ast = parse("SELECT SUM(price * (1 - discount)) FROM lineitem").unwrap();
        match ast.agg {
            AggAst::Sum(ExprAst::Bin('*', _, _)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn aliases_and_self_join() {
        let ast = parse(
            "SELECT COUNT(*) FROM Node AS n1, Node n2, Edge WHERE Edge.src = n1.id AND Edge.dst = n2.id",
        )
        .unwrap();
        assert_eq!(ast.from.len(), 3);
        assert_eq!(ast.from[1], ("Node".into(), "n2".into()));
    }

    #[test]
    fn distinct_projection() {
        let ast = parse("SELECT DISTINCT c.ck, c.nk FROM customer AS c").unwrap();
        match ast.agg {
            AggAst::Distinct(cols) => assert_eq!(cols.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn boolean_precedence() {
        // a OR b AND c parses as a OR (b AND c).
        let ast = parse("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match ast.where_clause.unwrap() {
            CondAst::Or(_, rhs) => assert!(matches!(*rhs, CondAst::And(_, _))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parenthesized_condition() {
        let ast = parse("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND NOT c > 3").unwrap();
        assert!(matches!(ast.where_clause.unwrap(), CondAst::And(_, _)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT COUNT(*) FROM t LIMIT 5").is_err());
    }

    #[test]
    fn group_by_parsed() {
        let ast = parse("SELECT COUNT(*) FROM t GROUP BY t.a, b").unwrap();
        assert_eq!(ast.group_by.len(), 2);
        assert_eq!(ast.group_by[1].column, "b");
    }

    #[test]
    fn string_comparison() {
        let ast = parse("SELECT COUNT(*) FROM c WHERE seg = 'BUILDING'").unwrap();
        match ast.where_clause.unwrap() {
            CondAst::Cmp("=", _, ExprAst::Str(s)) => assert_eq!(s, "BUILDING"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
