//! Canonical query text, used as the profile-cache key by the serving layer.
//!
//! Two spellings of the same statement — extra whitespace, lower-case
//! keywords, `!=` for `<>` — must map to one cache entry, and the canonical
//! text must itself parse back to the same statement (the serving layer
//! executes what it caches). [`normalize`] therefore re-renders the token
//! stream instead of rewriting the input string:
//!
//! * reserved words (`SELECT`, `FROM`, `AND`, …) are upper-cased; all other
//!   identifiers keep their original spelling — relation names are matched
//!   case-sensitively against the schema, so changing their case would
//!   change meaning;
//! * numeric literals are re-rendered in shortest round-trip decimal form
//!   (`3.50` → `3.5`) and string literals re-quoted with `''` escaping;
//! * one space between tokens, except around `.`, before `,` / `)`, after
//!   `(`, and between an aggregate head (`COUNT` / `SUM`) and its `(`.
//!
//! Normalization is purely lexical: it never consults a schema and accepts
//! any token stream the lexer does, so unparseable input still normalizes
//! (and fails later, at parse time, with the real error).

use crate::lexer::{tokenize, Token};
use crate::SqlError;

/// The reserved words of the SQL subset. An identifier spelled like one of
/// these (in any case) is treated as the keyword everywhere, so relations
/// cannot be named after them — the parser could not resolve such a query
/// in the first place.
const KEYWORDS: &[&str] = &[
    "SELECT", "COUNT", "SUM", "DISTINCT", "FROM", "AS", "WHERE", "AND", "OR", "NOT", "GROUP", "BY",
];

fn keyword_of(ident: &str) -> Option<&'static str> {
    KEYWORDS.iter().copied().find(|kw| ident.eq_ignore_ascii_case(kw))
}

/// Renders a float in a form the lexer accepts (`digits.digits`, never
/// scientific notation) that parses back to the same `f64`.
fn render_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Normalizes a statement to canonical text. Idempotent:
/// `normalize(normalize(s)?) == normalize(s)`.
///
/// ```
/// let n = r2t_sql::normalize("select count( * ) from  orders o where o.x!=3.50").unwrap();
/// assert_eq!(n, "SELECT COUNT(*) FROM orders o WHERE o.x <> 3.5");
/// ```
pub fn normalize(sql: &str) -> Result<String, SqlError> {
    let tokens = tokenize(sql)?;
    let mut out = String::with_capacity(sql.len());
    let mut prev: Option<&Token> = None;
    for t in &tokens {
        let glue_left = match t {
            Token::Sym("." | "," | ")") => true,
            Token::Sym("(") => {
                matches!(prev, Some(Token::Ident(s)) if s.eq_ignore_ascii_case("COUNT") || s.eq_ignore_ascii_case("SUM"))
            }
            _ => matches!(prev, Some(Token::Sym("(" | "."))),
        };
        if prev.is_some() && !glue_left {
            out.push(' ');
        }
        match t {
            Token::Ident(s) => match keyword_of(s) {
                Some(kw) => out.push_str(kw),
                None => out.push_str(s),
            },
            Token::Int(v) => out.push_str(&v.to_string()),
            Token::Float(v) => out.push_str(&render_float(*v)),
            Token::Str(s) => {
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            Token::Sym(s) => out.push_str(s),
        }
        prev = Some(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn whitespace_and_case_collapse() {
        let a =
            normalize("select  COUNT( * )\n from customer,orders WHERE orders.o_ck=customer.ck")
                .unwrap();
        let b = normalize("SELECT COUNT(*) FROM customer, orders WHERE orders.o_ck = customer.ck")
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "SELECT COUNT(*) FROM customer, orders WHERE orders.o_ck = customer.ck");
    }

    #[test]
    fn identifier_case_preserved() {
        let n = normalize("select count(*) from Edge as E1 where E1.src < 3").unwrap();
        assert_eq!(n, "SELECT COUNT(*) FROM Edge AS E1 WHERE E1.src < 3");
    }

    #[test]
    fn operators_and_literals_canonicalized() {
        let n =
            normalize("select sum(x.a*2.50) from t x where x.b != 'it''s' and x.c>=010").unwrap();
        assert_eq!(n, "SELECT SUM(x.a * 2.5) FROM t x WHERE x.b <> 'it''s' AND x.c >= 10");
    }

    #[test]
    fn idempotent() {
        for sql in [
            "select count(*) from t",
            "SELECT DISTINCT c.ck , c.nk FROM customer c WHERE ( c.x = 1 OR NOT c.y > 0.5 )",
            "select sum(a - -3) from t group by t.g , h",
        ] {
            let once = normalize(sql).unwrap();
            assert_eq!(normalize(&once).unwrap(), once, "not idempotent on {sql:?}");
        }
    }

    #[test]
    fn round_trips_through_the_parser() {
        for sql in [
            "select count(*) from Edge e1, Edge e2 where e1.dst = e2.src and e1.src<e2.dst",
            "SELECT SUM(price * ( 1 - discount )) FROM lineitem WHERE shipmode = 'AIR'",
            "select distinct c.ck from customer as c group by c.mktsegment",
        ] {
            let n = normalize(sql).unwrap();
            assert_eq!(parse(&n).unwrap(), parse(sql).unwrap(), "AST changed for {sql:?}");
        }
    }

    #[test]
    fn lex_errors_propagate() {
        assert!(matches!(normalize("select 'oops"), Err(SqlError::Lex { .. })));
    }
}
