//! MPS (Mathematical Programming System) reading and writing.
//!
//! The fixed-form-ish MPS dialect supported here covers what the truncation
//! LPs need and what most tools emit: `NAME`, `ROWS` (`N`/`L`/`G`/`E`),
//! `COLUMNS`, `RHS`, `BOUNDS` (`UP`/`LO`/`FX`/`FR`/`BV`-less), `ENDATA`.
//! Fields are whitespace-separated (free form). This makes the solver
//! interoperable: truncation LPs can be exported and cross-checked against
//! an external solver, and external models can be fed to ours.

use crate::problem::{Problem, RowBounds, Sense, VarBounds};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while parsing MPS input.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MPS parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MpsError {}

/// Writes `problem` in free-form MPS. Variables are named `X0, X1, …` and
/// rows `R0, R1, …`; the objective row is `COST` (maximization is recorded
/// with an `OBJSENSE` section, which most modern readers accept).
pub fn write_mps<W: Write>(problem: &Problem, name: &str, mut w: W) -> std::io::Result<()> {
    writeln!(w, "NAME          {name}")?;
    writeln!(w, "OBJSENSE")?;
    writeln!(
        w,
        "    {}",
        match problem.sense() {
            Sense::Maximize => "MAX",
            Sense::Minimize => "MIN",
        }
    )?;
    writeln!(w, "ROWS")?;
    writeln!(w, " N  COST")?;
    let mut row_kind = Vec::with_capacity(problem.num_rows());
    for i in 0..problem.num_rows() {
        let b = problem.row_bounds(i);
        // Ranged rows are emitted as L with a RANGES entry-free fallback:
        // we pick the tighter single-sided representation when one side is
        // infinite, and E when the bounds coincide.
        let kind = if b.lower == b.upper {
            'E'
        } else if b.upper.is_finite() {
            'L'
        } else {
            'G'
        };
        row_kind.push(kind);
        writeln!(w, " {kind}  R{i}")?;
    }
    writeln!(w, "COLUMNS")?;
    let mat = problem
        .freeze()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    for j in 0..problem.num_vars() {
        let c = problem.objective_coefficient(j);
        if c != 0.0 {
            writeln!(w, "    X{j}  COST  {c}")?;
        }
        for (i, v) in mat.col(j) {
            writeln!(w, "    X{j}  R{i}  {v}")?;
        }
    }
    writeln!(w, "RHS")?;
    for (i, &kind) in row_kind.iter().enumerate() {
        let b = problem.row_bounds(i);
        let rhs = match kind {
            'L' => b.upper,
            'G' => b.lower,
            _ => b.lower,
        };
        if rhs != 0.0 {
            writeln!(w, "    RHS  R{i}  {rhs}")?;
        }
    }
    writeln!(w, "BOUNDS")?;
    for j in 0..problem.num_vars() {
        let b = problem.var_bounds(j);
        if b.lower == b.upper {
            writeln!(w, " FX BND  X{j}  {}", b.lower)?;
            continue;
        }
        if b.lower.is_infinite() && b.upper.is_infinite() {
            writeln!(w, " FR BND  X{j}")?;
            continue;
        }
        if b.lower != 0.0 {
            if b.lower.is_infinite() {
                writeln!(w, " MI BND  X{j}")?;
            } else {
                writeln!(w, " LO BND  X{j}  {}", b.lower)?;
            }
        }
        if b.upper.is_finite() {
            writeln!(w, " UP BND  X{j}  {}", b.upper)?;
        }
    }
    writeln!(w, "ENDATA")?;
    Ok(())
}

#[derive(PartialEq)]
enum Section {
    None,
    ObjSense,
    Rows,
    Columns,
    Rhs,
    Bounds,
    Done,
}

/// Reads a free-form MPS model. Returns the problem plus the variable and
/// row names in index order.
pub fn read_mps<R: Read>(reader: R) -> Result<(Problem, Vec<String>, Vec<String>), MpsError> {
    let mut problem = Problem::new();
    let mut section = Section::None;
    let mut obj_row: Option<String> = None;
    // name -> (kind, index into problem rows); objective handled separately.
    let mut rows: HashMap<String, (char, usize)> = HashMap::new();
    let mut row_names: Vec<String> = Vec::new();
    let mut cols: HashMap<String, usize> = HashMap::new();
    let mut col_names: Vec<String> = Vec::new();
    let mut objective: HashMap<usize, f64> = HashMap::new();
    let mut explicit_bounds: HashMap<usize, VarBounds> = HashMap::new();

    let err = |line: usize, message: String| MpsError { line, message };
    let parse_num = |s: &str, line: usize| -> Result<f64, MpsError> {
        s.parse::<f64>().map_err(|_| err(line, format!("bad number {s:?}")))
    };

    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| err(lineno, e.to_string()))?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        let is_header = !trimmed.starts_with(' ') && !trimmed.starts_with('\t');
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if is_header {
            section = match fields[0].to_ascii_uppercase().as_str() {
                "NAME" => Section::None,
                "OBJSENSE" => Section::ObjSense,
                "ROWS" => Section::Rows,
                "COLUMNS" => Section::Columns,
                "RHS" => Section::Rhs,
                "RANGES" => return Err(err(lineno, "RANGES sections are not supported".into())),
                "BOUNDS" => Section::Bounds,
                "ENDATA" => Section::Done,
                other => return Err(err(lineno, format!("unknown section {other:?}"))),
            };
            continue;
        }
        match section {
            Section::None | Section::Done => {}
            Section::ObjSense => match fields[0].to_ascii_uppercase().as_str() {
                "MAX" | "MAXIMIZE" => problem.set_sense(Sense::Maximize),
                "MIN" | "MINIMIZE" => problem.set_sense(Sense::Minimize),
                other => return Err(err(lineno, format!("bad OBJSENSE {other:?}"))),
            },
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(err(lineno, "ROWS lines need `kind name`".into()));
                }
                let kind = fields[0].to_ascii_uppercase().chars().next().expect("nonempty");
                let name = fields[1].to_string();
                if kind == 'N' {
                    if obj_row.is_none() {
                        obj_row = Some(name);
                    }
                    // Extra free rows are ignored, as is conventional.
                } else if matches!(kind, 'L' | 'G' | 'E') {
                    let bounds = match kind {
                        'L' => RowBounds::at_most(0.0),
                        'G' => RowBounds::at_least(0.0),
                        _ => RowBounds::equal(0.0),
                    };
                    let idx = problem.add_row(bounds, &[]);
                    rows.insert(name.clone(), (kind, idx));
                    row_names.push(name);
                } else {
                    return Err(err(lineno, format!("bad row kind {kind:?}")));
                }
            }
            Section::Columns => {
                // `col row val [row val]`
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(err(lineno, "COLUMNS lines need col row val [row val]".into()));
                }
                let col = fields[0].to_string();
                let j = *cols.entry(col.clone()).or_insert_with(|| {
                    col_names.push(col);
                    problem.add_var(0.0, VarBounds::non_negative())
                });
                for pair in fields[1..].chunks(2) {
                    let v = parse_num(pair[1], lineno)?;
                    if Some(pair[0]) == obj_row.as_deref() {
                        *objective.entry(j).or_insert(0.0) += v;
                    } else {
                        let &(_, idx) = rows
                            .get(pair[0])
                            .ok_or_else(|| err(lineno, format!("unknown row {:?}", pair[0])))?;
                        problem.add_coefficient(idx, j, v);
                    }
                }
            }
            Section::Rhs => {
                // `rhsname row val [row val]`
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(err(lineno, "RHS lines need set row val [row val]".into()));
                }
                for pair in fields[1..].chunks(2) {
                    let &(kind, idx) = rows
                        .get(pair[0])
                        .ok_or_else(|| err(lineno, format!("unknown row {:?}", pair[0])))?;
                    let v = parse_num(pair[1], lineno)?;
                    let b = match kind {
                        'L' => RowBounds::at_most(v),
                        'G' => RowBounds::at_least(v),
                        _ => RowBounds::equal(v),
                    };
                    problem.set_row_bounds(idx, b);
                }
            }
            Section::Bounds => {
                // `kind set col [val]`
                if fields.len() < 3 {
                    return Err(err(lineno, "BOUNDS lines need kind set col [val]".into()));
                }
                let kind = fields[0].to_ascii_uppercase();
                let &j = cols
                    .get(fields[2])
                    .ok_or_else(|| err(lineno, format!("unknown column {:?}", fields[2])))?;
                let cur = explicit_bounds.entry(j).or_insert(VarBounds::non_negative());
                match kind.as_str() {
                    "UP" => cur.upper = parse_num(fields[3], lineno)?,
                    "LO" => cur.lower = parse_num(fields[3], lineno)?,
                    "FX" => {
                        let v = parse_num(fields[3], lineno)?;
                        *cur = VarBounds::fixed(v);
                    }
                    "FR" => *cur = VarBounds::free(),
                    "MI" => cur.lower = f64::NEG_INFINITY,
                    "PL" => cur.upper = f64::INFINITY,
                    other => return Err(err(lineno, format!("bad bound kind {other:?}"))),
                }
            }
        }
    }
    if section != Section::Done {
        return Err(err(0, "missing ENDATA".into()));
    }
    for (j, c) in objective {
        problem.set_objective_coefficient(j, c);
    }
    for (j, b) in explicit_bounds {
        problem.set_var_bounds(j, b);
    }
    problem.freeze().map_err(|e| err(0, e.to_string()))?;
    Ok((problem, col_names, row_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RevisedSimplex, Status};

    fn sample_problem() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 2.0));
        let y = p.add_var(3.0, VarBounds::new(0.5, f64::INFINITY));
        let z = p.add_var(-1.0, VarBounds::free());
        p.add_row(RowBounds::at_most(4.0), &[(x, 1.0), (y, 2.0)]);
        p.add_row(RowBounds::at_least(-1.0), &[(y, 1.0), (z, -1.0)]);
        p.add_row(RowBounds::equal(1.5), &[(x, 1.0), (z, 1.0)]);
        p
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let p = sample_problem();
        let mut buf = Vec::new();
        write_mps(&p, "SAMPLE", &mut buf).expect("write");
        let (q, cols, rows) = read_mps(&buf[..]).expect("parse");
        assert_eq!(cols.len(), p.num_vars());
        assert_eq!(rows.len(), p.num_rows());
        let a = RevisedSimplex::new().solve(&p).expect("solve original");
        let b = RevisedSimplex::new().solve(&q).expect("solve round-trip");
        assert_eq!(a.status, b.status);
        if a.status == Status::Optimal {
            assert!((a.objective - b.objective).abs() < 1e-9, "{} vs {}", a.objective, b.objective);
        }
    }

    #[test]
    fn parses_handwritten_mps() {
        let text = "\
NAME          TINY
ROWS
 N  COST
 L  LIM1
 G  LIM2
COLUMNS
    X1  COST  1.0  LIM1  1.0
    X1  LIM2  1.0
    X2  COST  2.0  LIM1  1.0
RHS
    RHS  LIM1  4.0  LIM2  1.0
BOUNDS
 UP BND  X1  3.0
ENDATA
";
        let (p, cols, _) = read_mps(text.as_bytes()).expect("parse");
        assert_eq!(cols, vec!["X1", "X2"]);
        // Default objective sense is maximize in our reader unless OBJSENSE
        // says otherwise; the LP is max x1 + 2 x2 s.t. x1+x2 <= 4, x1 >= 1.
        let s = RevisedSimplex::new().solve(&p).expect("solve");
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn rejects_ranges_and_bad_rows() {
        assert!(read_mps("ROWS\n X  R1\nENDATA\n".as_bytes()).is_err());
        assert!(read_mps("RANGES\nENDATA\n".as_bytes()).is_err());
        assert!(read_mps("ROWS\n N COST\n".as_bytes()).is_err()); // no ENDATA
    }

    #[test]
    fn objsense_min() {
        let text = "\
NAME T
OBJSENSE
    MIN
ROWS
 N  C
 G  R1
COLUMNS
    X  C  1.0  R1  1.0
RHS
    RHS  R1  2.0
ENDATA
";
        let (p, _, _) = read_mps(text.as_bytes()).expect("parse");
        let s = RevisedSimplex::new().solve(&p).expect("solve");
        assert!((s.objective - 2.0).abs() < 1e-9);
    }
}
