//! Compressed sparse column (CSC) matrices.
//!
//! The constraint matrices of R2T's truncation LPs are extremely sparse (each
//! join result touches only the private tuples it references), so all solver
//! machinery works on CSC storage.

/// An immutable sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMatrix {
    rows: usize,
    cols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes the entries of column `j`.
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl ColMatrix {
    /// Builds a CSC matrix from `(row, col, value)` triplets. Duplicate
    /// entries are summed; explicit zeros (after summing) are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(rows <= u32::MAX as usize, "row count exceeds u32 range");
        // Count entries per column.
        let mut counts = vec![0usize; cols + 1];
        for &(_, c, _) in triplets {
            counts[c + 1] += 1;
        }
        for j in 0..cols {
            counts[j + 1] += counts[j];
        }
        let mut row_idx = vec![0u32; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[c];
            row_idx[slot] = r as u32;
            values[slot] = v;
            next[c] += 1;
        }
        // Sort within each column by row, then merge duplicates and drop zeros.
        let mut out_ptr = vec![0usize; cols + 1];
        let mut out_rows: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut out_vals: Vec<f64> = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for j in 0..cols {
            scratch.clear();
            scratch.extend(
                row_idx[counts[j]..counts[j + 1]]
                    .iter()
                    .copied()
                    .zip(values[counts[j]..counts[j + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let r = scratch[k].0;
                let mut v = scratch[k].1;
                k += 1;
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    out_rows.push(r);
                    out_vals.push(v);
                }
            }
            out_ptr[j + 1] = out_rows.len();
        }
        ColMatrix { rows, cols, col_ptr: out_ptr, row_idx: out_rows, values: out_vals }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(row, value)` entries of column `j`, sorted by row.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&r, &v)| (r as usize, v))
    }

    /// Number of nonzeros in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Computes `y = A x` densely.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj != 0.0 {
                for (i, v) in self.col(j) {
                    y[i] += v * xj;
                }
            }
        }
        y
    }

    /// Computes the dot product of column `j` with a dense vector `y`
    /// (i.e. one entry of `Aᵀ y`).
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        self.col(j).map(|(i, v)| v * y[i]).sum()
    }

    /// Extracts the leading `rows × cols` submatrix. Because entries within
    /// each column are stored sorted by row, each column's surviving slice is
    /// a prefix found by binary search — no re-sorting or triplet round trip.
    /// This is the workhorse of the sweep layer, where each τ's reduced LP is
    /// a prefix of one globally permuted matrix.
    pub fn prefix(&self, rows: usize, cols: usize) -> ColMatrix {
        assert!(rows <= self.rows && cols <= self.cols, "prefix exceeds matrix shape");
        let r = rows as u32;
        let mut col_ptr = Vec::with_capacity(cols + 1);
        col_ptr.push(0usize);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for j in 0..cols {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            let keep = self.row_idx[lo..hi].partition_point(|&i| i < r);
            row_idx.extend_from_slice(&self.row_idx[lo..lo + keep]);
            values.extend_from_slice(&self.values[lo..lo + keep]);
            col_ptr.push(row_idx.len());
        }
        ColMatrix { rows, cols, col_ptr, row_idx, values }
    }

    /// Extracts the submatrix of `kept_cols` (in the given order), remapping
    /// row indices through `row_map` (`u32::MAX` marks a dropped row).
    /// `row_map` must be monotone over the kept rows so that per-column
    /// sortedness is preserved. This is the workhorse of the sweep layer,
    /// which keeps the reduced LP in original row/column order.
    pub fn gather(&self, kept_cols: &[u32], row_map: &[u32], rows: usize) -> ColMatrix {
        assert_eq!(row_map.len(), self.rows, "row_map must cover every row");
        let mut col_ptr = Vec::with_capacity(kept_cols.len() + 1);
        col_ptr.push(0usize);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for &j in kept_cols {
            let lo = self.col_ptr[j as usize];
            let hi = self.col_ptr[j as usize + 1];
            for t in lo..hi {
                let r = row_map[self.row_idx[t] as usize];
                if r != u32::MAX {
                    row_idx.push(r);
                    values.push(self.values[t]);
                }
            }
            col_ptr.push(row_idx.len());
        }
        ColMatrix { rows, cols: kept_cols.len(), col_ptr, row_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_round_trip() {
        let m = ColMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 0, 3.0), (1, 1, -2.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, -2.0)]);
    }

    #[test]
    fn duplicates_summed_and_zeros_dropped() {
        let m = ColMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (0, 0, -1.0), (1, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(1, 2.0)]);
    }

    #[test]
    fn mat_vec_matches_dense() {
        let m = ColMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 4.0)]);
        let y = m.mat_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 8.0]);
    }

    #[test]
    fn col_dot_matches_transpose_product() {
        let m = ColMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 5.0)]);
        let y = [3.0, -1.0];
        assert_eq!(m.col_dot(0, &y), 1.0);
        assert_eq!(m.col_dot(1, &y), -5.0);
    }

    #[test]
    fn prefix_extracts_leading_submatrix() {
        let m = ColMatrix::from_triplets(
            4,
            3,
            &[(0, 0, 1.0), (2, 0, 2.0), (3, 0, 9.0), (1, 1, 4.0), (3, 2, 5.0)],
        );
        let p = m.prefix(3, 2);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 2);
        assert_eq!(p.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(p.col(1).collect::<Vec<_>>(), vec![(1, 4.0)]);
        // Full-shape prefix is the identity operation.
        assert_eq!(m.prefix(4, 3), m);
    }

    #[test]
    fn unsorted_triplets_are_sorted_per_column() {
        let m = ColMatrix::from_triplets(4, 1, &[(3, 0, 3.0), (0, 0, 1.0), (2, 0, 2.0)]);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0), (3, 3.0)]);
    }
}
