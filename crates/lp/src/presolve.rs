//! Presolve: redundant-row and implied-fixed-column elimination.
//!
//! For R2T's truncation LPs this is the single most effective optimization:
//! every private tuple whose *total* sensitivity `Σ_{k∈C_j} ψ(q_k)` is
//! already ≤ τ yields a constraint row that can never bind, and once those
//! rows are gone, every join result all of whose constraints were dropped
//! can be fixed at its full weight `ψ(q_k)`. On sparse instances (e.g. road
//! networks) this routinely eliminates more than 99% of the LP.
//!
//! The reductions are *exact* (no relaxation): a row is dropped only when the
//! extreme activities implied by the variable bounds prove it redundant, and
//! a column is removed only when it appears in no remaining row, pinning it
//! at its objective-optimal bound.

use crate::problem::{Problem, RowBounds, VarBounds};

/// Result of presolving: a smaller, equivalent problem plus the mappings
/// needed to reconstruct a full solution.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced problem.
    pub reduced: Problem,
    /// reduced variable index -> original variable index.
    kept_vars: Vec<usize>,
    /// reduced row index -> original row index.
    kept_rows: Vec<usize>,
    /// Values for variables removed from the problem, indexed by original
    /// variable (NaN for kept variables).
    fixed_values: Vec<f64>,
    /// Objective contribution of the removed variables (stated sense).
    fixed_objective: f64,
    n_original: usize,
    m_original: usize,
}

impl Presolved {
    /// Objective contribution (in the problem's stated sense) of the
    /// variables eliminated by presolve. Add this to the reduced problem's
    /// objective to obtain the original objective.
    pub fn fixed_objective(&self) -> f64 {
        self.fixed_objective
    }

    /// Number of variables eliminated.
    pub fn vars_removed(&self) -> usize {
        self.n_original - self.kept_vars.len()
    }

    /// Number of rows eliminated.
    pub fn rows_removed(&self) -> usize {
        self.m_original - self.kept_rows.len()
    }

    /// Expands a solution of the reduced problem to the original space.
    pub fn postsolve(&self, x_reduced: &[f64]) -> Vec<f64> {
        let mut x = self.fixed_values.clone();
        for (r, &j) in self.kept_vars.iter().enumerate() {
            x[j] = x_reduced[r];
        }
        x
    }

    /// Expands reduced-problem row duals to the original rows (dropped rows
    /// get zero duals — they are strictly slack at optimality).
    pub fn postsolve_duals(&self, y_reduced: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m_original];
        for (r, &i) in self.kept_rows.iter().enumerate() {
            y[i] = y_reduced[r];
        }
        y
    }
}

/// Runs presolve on `problem`. The reductions preserve the optimal objective
/// exactly (up to `fixed_objective`).
pub fn presolve(problem: &Problem) -> Presolved {
    let mat = problem.freeze().expect("presolve requires a valid problem");
    let n = problem.num_vars();
    let m = problem.num_rows();

    // Row-wise extreme activities under the variable bounds.
    let mut min_act = vec![0.0f64; m];
    let mut max_act = vec![0.0f64; m];
    for j in 0..n {
        let b = problem.var_bounds(j);
        for (i, a) in mat.col(j) {
            let lo = if a >= 0.0 { a * b.lower } else { a * b.upper };
            let hi = if a >= 0.0 { a * b.upper } else { a * b.lower };
            min_act[i] += lo;
            max_act[i] += hi;
        }
    }

    let tol = 1e-9;
    let mut row_kept = vec![true; m];
    for i in 0..m {
        let b = problem.row_bounds(i);
        let lo_ok = b.lower.is_infinite() || min_act[i] >= b.lower - tol * (1.0 + b.lower.abs());
        let hi_ok = b.upper.is_infinite() || max_act[i] <= b.upper + tol * (1.0 + b.upper.abs());
        if lo_ok && hi_ok {
            row_kept[i] = false;
        }
    }

    // Variables that appear in no kept row can be pinned at their best bound
    // (if finite). Others stay.
    let mut var_kept = vec![true; n];
    let mut fixed_values = vec![f64::NAN; n];
    let mut fixed_objective = 0.0f64;
    for j in 0..n {
        let touches_kept = mat.col(j).any(|(i, _)| row_kept[i]);
        if touches_kept {
            continue;
        }
        let b = problem.var_bounds(j);
        let c = problem.max_objective(j);
        // c < 0 wants the lower bound; c == 0 takes any finite bound.
        let v = if c > 0.0 {
            b.upper
        } else if c < 0.0 || b.lower.is_finite() {
            b.lower
        } else if b.upper.is_finite() {
            b.upper
        } else {
            0.0
        };
        if v.is_finite() {
            var_kept[j] = false;
            fixed_values[j] = v;
            // Objective bookkeeping in the stated sense.
            fixed_objective += match problem.sense() {
                crate::problem::Sense::Maximize => c * v,
                crate::problem::Sense::Minimize => -c * v,
            };
        }
        // If the best bound is infinite the variable is left in the reduced
        // problem; the solver will report unboundedness if it matters.
    }

    // Build the reduced problem.
    let mut reduced = Problem::new();
    reduced.set_sense(problem.sense());
    let mut var_map = vec![usize::MAX; n];
    let mut kept_vars = Vec::new();
    for j in 0..n {
        if var_kept[j] {
            let c = match problem.sense() {
                crate::problem::Sense::Maximize => problem.max_objective(j),
                crate::problem::Sense::Minimize => -problem.max_objective(j),
            };
            let b = problem.var_bounds(j);
            var_map[j] = reduced.add_var(c, VarBounds::new(b.lower, b.upper));
            kept_vars.push(j);
        }
    }
    let mut kept_rows = Vec::new();
    let mut row_map = vec![usize::MAX; m];
    for i in 0..m {
        if row_kept[i] {
            let b = problem.row_bounds(i);
            row_map[i] = reduced.add_row(RowBounds::range(b.lower, b.upper), &[]);
            kept_rows.push(i);
        }
    }
    for j in 0..n {
        if var_kept[j] {
            for (i, a) in mat.col(j) {
                if row_kept[i] {
                    reduced.add_coefficient(row_map[i], var_map[j], a);
                }
            }
        }
        // Removed variables cannot touch kept rows by construction, so their
        // coefficients need no rhs adjustment.
    }

    Presolved {
        reduced,
        kept_vars,
        kept_rows,
        fixed_values,
        fixed_objective,
        n_original: n,
        m_original: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSimplex;
    use crate::problem::RowBounds;

    #[test]
    fn redundant_row_dropped_and_var_fixed() {
        // max u1 + u2, u1 + u2 <= 5 with u in [0,1]^2: row can never bind.
        let mut p = Problem::new();
        let a = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        let b = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(5.0), &[(a, 1.0), (b, 1.0)]);
        let pre = presolve(&p);
        assert_eq!(pre.rows_removed(), 1);
        assert_eq!(pre.vars_removed(), 2);
        assert!((pre.fixed_objective() - 2.0).abs() < 1e-12);
        let x = pre.postsolve(&[]);
        assert_eq!(x, vec![1.0, 1.0]);
    }

    #[test]
    fn binding_row_kept() {
        let mut p = Problem::new();
        let a = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        let b = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(1.0), &[(a, 1.0), (b, 1.0)]);
        let pre = presolve(&p);
        assert_eq!(pre.rows_removed(), 0);
        assert_eq!(pre.vars_removed(), 0);
    }

    #[test]
    fn mixed_problem_objective_preserved() {
        // One redundant row over (a,b), one binding row over (c,d).
        let mut p = Problem::new();
        let a = p.add_var(2.0, VarBounds::new(0.0, 3.0));
        let b = p.add_var(1.0, VarBounds::new(0.0, 2.0));
        let c = p.add_var(1.0, VarBounds::new(0.0, 4.0));
        let d = p.add_var(1.0, VarBounds::new(0.0, 4.0));
        p.add_row(RowBounds::at_most(100.0), &[(a, 1.0), (b, 1.0)]);
        p.add_row(RowBounds::at_most(5.0), &[(c, 1.0), (d, 1.0)]);
        let pre = presolve(&p);
        assert_eq!(pre.rows_removed(), 1);
        assert_eq!(pre.vars_removed(), 2);
        let sol = DenseSimplex::new().solve(&pre.reduced).unwrap();
        let full = pre.postsolve(&sol.x);
        let total = pre.fixed_objective() + sol.objective;
        // Direct solve for comparison.
        let direct = DenseSimplex::new().solve(&p).unwrap();
        assert!((total - direct.objective).abs() < 1e-7);
        assert!(p.max_violation(&full) <= 1e-7);
    }

    #[test]
    fn negative_coefficients_handled() {
        // Row -x <= -0: min activity of -x over [0,1] is -1, max is 0, so
        // the row (upper bound 0) is redundant.
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(0.0), &[(x, -1.0)]);
        let pre = presolve(&p);
        assert_eq!(pre.rows_removed(), 1);
        assert_eq!(pre.vars_removed(), 1);
        assert_eq!(pre.postsolve(&[]), vec![1.0]);
    }

    #[test]
    fn duals_postsolved_with_zeros() {
        let mut p = Problem::new();
        let a = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(9.0), &[(a, 1.0)]); // redundant
        p.add_row(RowBounds::at_most(0.5), &[(a, 1.0)]); // binding
        let pre = presolve(&p);
        assert_eq!(pre.rows_removed(), 1);
        let y = pre.postsolve_duals(&[1.0]);
        assert_eq!(y, vec![0.0, 1.0]);
    }
}
