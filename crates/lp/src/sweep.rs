//! Branch-sweep solver layer: one LP structure shared across R2T's τ-race.
//!
//! R2T (Algorithm 1) solves `log₂ GS` truncation LPs that are **identical
//! except for the right-hand side** of the truncation rows: branch `j` uses
//! `τ = 2^j`. The naive implementation rebuilds, re-presolves and cold-starts
//! every branch. This module amortizes all of that:
//!
//! * **Shared structure.** [`SweepProblem`] freezes the constraint matrix,
//!   variable bounds and objective once. Each branch re-parameterizes only
//!   the sweep rows' upper bounds and gathers the surviving rows/columns —
//!   no `Problem` round trip, no activity recomputation.
//! * **Monotone presolve.** A truncation row `Σ_{k∈C} u_k ≤ τ` is redundant
//!   when its maximum activity is `≤ τ`, and the set of redundant rows at `τ`
//!   is a **superset** of the set at `τ/2`: redundancy is monotone in τ. Row
//!   activities and per-variable elimination thresholds are computed once;
//!   each branch's reduced LP is then a threshold cut over precomputed
//!   arrays (the frontier itself is a binary search, see
//!   [`SweepProblem::reduced_dims`]). The reductions agree with
//!   [`crate::presolve`] by construction, and the reduced LP keeps the
//!   **original row/column order** and the original fixed-objective
//!   summation order — so a cold solve inside a session follows the exact
//!   pivot trajectory of the stateless presolve-then-solve path, never a
//!   permuted (and potentially slower) one.
//! * **Warm starts.** Because the kept sets are nested as τ shrinks, the
//!   optimal basis at one τ translates into the space of any smaller τ
//!   through rank maps (old reduced index → new reduced index); newly
//!   revealed variables enter nonbasic at their fixed-value bound and newly
//!   revealed rows enter with their logicals basic. The translated basis is
//!   *exactly dual feasible* — new rows get zero duals, so old reduced costs
//!   are unchanged — so a handful of dual-simplex pivots restore primal
//!   feasibility instead of a full cold solve. A singular, stalled or
//!   predictably unprofitable warm basis silently falls back to a cold start
//!   of the same already-assembled LP, so results are always identical (to
//!   tolerance) to solving from scratch.
//!
//! The intended driver is one [`SweepSession`] per racing worker thread: the
//! session owns the solver workspace and the chain of bases, and the race in
//! `r2t-core` feeds it branches in descending-τ order.

use crate::flow::{self, ClosedFormKernel, FlowProblem, FlowSession, KernelClass};
use crate::problem::{Problem, Sense};
use crate::revised::{
    RawLp, RevisedSimplex, SolveStats, SolverContext, SolverEvent, VarState, WarmStart,
};
use crate::sparse::ColMatrix;
use crate::{LpError, Status};

/// Relative tolerance for "row is redundant at τ" — matches
/// [`crate::presolve`] so sweep reductions agree with the one-shot presolve.
const ELIM_TOL: f64 = 1e-9;

/// A τ-parameterized family of LPs sharing one frozen structure.
///
/// Built once from a maximize-sense [`Problem`] plus the list of *sweep rows*
/// (the rows whose upper bound is the truncation threshold τ). All other
/// ("static") rows keep their stated bounds in every branch. Sweep rows must
/// be upper-bounded only (`lower = -inf`), which is how the truncation LPs
/// build them.
#[derive(Debug)]
pub struct SweepProblem {
    /// Frozen matrix in original row/column order.
    mat: ColMatrix,
    /// Whether each row is a sweep (truncation) row.
    is_sweep: Vec<bool>,
    /// Per-row keep threshold: max activity for sweep rows, `+inf` for
    /// static rows (which are kept in every branch).
    row_act: Vec<f64>,
    /// Per-variable elimination threshold: the variable is kept at τ iff
    /// `threshold > τ` (up to tolerance). `+inf` when the variable touches a
    /// static row or has no finite fixed bound.
    var_threshold: Vec<f64>,
    /// Value each variable is fixed at once eliminated (NaN when it never
    /// can be).
    fixed_val: Vec<f64>,
    var_lower: Vec<f64>,
    var_upper: Vec<f64>,
    obj: Vec<f64>,
    /// Stated row bounds (sweep rows' upper bound is replaced by τ).
    row_lower: Vec<f64>,
    row_upper: Vec<f64>,
    n_static: usize,
    /// Sweep-row activities sorted descending — the elimination frontier for
    /// [`Self::reduced_dims`] is a binary search over this.
    sorted_acts: Vec<f64>,
    /// Variable thresholds sorted descending, same purpose.
    sorted_thresholds: Vec<f64>,
    /// Which solver backend the structure admits (see [`crate::flow`]).
    kernel: KernelClass,
    /// Double-cover flow network, built when the class is `Matching`.
    flow: Option<FlowProblem>,
    /// Per-node closed form, built when the class is `ClosedForm`.
    closed: Option<ClosedFormKernel>,
}

/// Value a variable is fixed at when every row containing it is redundant
/// (the bound that maximizes its objective term). `None` when that bound is
/// infinite — such a variable can never be eliminated.
fn fixed_value(c: f64, lo: f64, hi: f64) -> Option<f64> {
    let v = if c > 0.0 {
        hi
    } else if c < 0.0 || lo.is_finite() {
        lo
    } else if hi.is_finite() {
        hi
    } else {
        0.0
    };
    v.is_finite().then_some(v)
}

impl SweepProblem {
    /// Builds the shared sweep structure. `sweep_rows` lists the rows whose
    /// upper bound becomes τ in each branch (their stated upper bound is
    /// ignored; their lower bound must be `-inf`).
    ///
    /// # Panics
    ///
    /// Panics if the problem is not maximize-sense, a sweep row index is out
    /// of range or repeated, or a sweep row has a finite lower bound.
    pub fn new(problem: &Problem, sweep_rows: &[usize]) -> Result<Self, LpError> {
        assert_eq!(problem.sense(), Sense::Maximize, "sweep problems are maximize-sense");
        let mat = problem.freeze()?;
        let n = mat.cols();
        let m = mat.rows();
        let mut is_sweep = vec![false; m];
        for &i in sweep_rows {
            assert!(i < m, "sweep row {i} out of range");
            assert!(!is_sweep[i], "sweep row {i} repeated");
            assert_eq!(
                problem.row_bounds(i).lower,
                f64::NEG_INFINITY,
                "sweep rows must be at-most rows"
            );
            is_sweep[i] = true;
        }

        let var_lower: Vec<f64> = (0..n).map(|j| problem.var_bounds(j).lower).collect();
        let var_upper: Vec<f64> = (0..n).map(|j| problem.var_bounds(j).upper).collect();
        let obj: Vec<f64> = (0..n).map(|j| problem.max_objective(j)).collect();

        // Max activity of every row under the variable bounds; static rows
        // get +inf so the per-branch keep test is uniform.
        let mut max_act = vec![0.0f64; m];
        for j in 0..n {
            for (i, a) in mat.col(j) {
                max_act[i] += if a > 0.0 { a * var_upper[j] } else { a * var_lower[j] };
            }
        }
        let row_act: Vec<f64> =
            (0..m).map(|i| if is_sweep[i] { max_act[i] } else { f64::INFINITY }).collect();
        let n_static = is_sweep.iter().filter(|&&s| !s).count();

        // Variable elimination thresholds: a variable leaves the LP once all
        // rows containing it are redundant, fixed at its best bound. Touching
        // a static row (or having an infinite best bound) pins it forever.
        let mut var_threshold = vec![f64::NEG_INFINITY; n];
        let mut fixed_val = vec![f64::NAN; n];
        for j in 0..n {
            match fixed_value(obj[j], var_lower[j], var_upper[j]) {
                Some(v) => fixed_val[j] = v,
                None => {
                    var_threshold[j] = f64::INFINITY;
                    continue;
                }
            }
            for (i, _) in mat.col(j) {
                if is_sweep[i] {
                    var_threshold[j] = var_threshold[j].max(max_act[i]);
                } else {
                    var_threshold[j] = f64::INFINITY;
                    break;
                }
            }
        }

        let mut sorted_acts: Vec<f64> =
            (0..m).filter(|&i| is_sweep[i]).map(|i| max_act[i]).collect();
        sorted_acts.sort_by(|a, b| b.total_cmp(a));
        let mut sorted_thresholds = var_threshold.clone();
        sorted_thresholds.sort_by(|a, b| b.total_cmp(a));

        let row_lower: Vec<f64> = (0..m).map(|i| problem.row_bounds(i).lower).collect();
        let row_upper: Vec<f64> = (0..m).map(|i| problem.row_bounds(i).upper).collect();

        // Classify the structure once; when every column touches ≤ 2 sweep
        // rows with unit data this also builds the combinatorial kernel.
        // With no static rows, node k of the network is exactly row k.
        let kernels = flow::build_kernels(&mat, n_static, &obj, &var_lower, &var_upper);

        Ok(SweepProblem {
            mat,
            is_sweep,
            row_act,
            var_threshold,
            fixed_val,
            var_lower,
            var_upper,
            obj,
            row_lower,
            row_upper,
            n_static,
            sorted_acts,
            sorted_thresholds,
            kernel: kernels.class,
            flow: kernels.flow,
            closed: kernels.closed,
        })
    }

    /// The elimination cut for τ: rows/variables with threshold above it
    /// survive. Matches [`crate::presolve`]'s redundancy tolerance.
    fn cut(tau: f64) -> f64 {
        tau + ELIM_TOL * (1.0 + tau.abs())
    }

    /// `(kept_vars, kept_rows)` of the reduced LP at this τ. Both counts are
    /// non-increasing in τ (the elimination frontier is monotone); each is a
    /// binary search over the activity/threshold arrays sorted at build time.
    pub fn reduced_dims(&self, tau: f64) -> (usize, usize) {
        let cut = Self::cut(tau);
        let kept_sweep = self.sorted_acts.partition_point(|&a| a > cut);
        let kept_vars = self.sorted_thresholds.partition_point(|&t| t > cut);
        (kept_vars, self.n_static + kept_sweep)
    }

    /// Total number of variables / rows of the full problem.
    pub fn dims(&self) -> (usize, usize) {
        (self.mat.cols(), self.mat.rows())
    }

    /// Starts a solving session (one per worker thread) with the given
    /// solver configuration.
    pub fn session(&self, solver: RevisedSimplex) -> SweepSession<'_> {
        SweepSession { problem: self, solver, ctx: SolverContext::new(), saved: None }
    }

    /// Which solver backend this structure admits.
    pub fn kernel_class(&self) -> KernelClass {
        self.kernel
    }

    /// The double-cover flow network, when the class is
    /// [`KernelClass::Matching`].
    pub fn flow_problem(&self) -> Option<&FlowProblem> {
        self.flow.as_ref()
    }

    /// A worker-local max-flow session, when the class is
    /// [`KernelClass::Matching`].
    pub fn flow_session(&self) -> Option<FlowSession<'_>> {
        self.flow.as_ref().map(FlowProblem::session)
    }

    /// The per-node closed form, when the class is
    /// [`KernelClass::ClosedForm`].
    pub fn closed_form(&self) -> Option<&ClosedFormKernel> {
        self.closed.as_ref()
    }
}

/// Result of one branch solve: the objective of the *full* LP (reduced
/// optimum plus the fixed contribution of eliminated variables).
#[derive(Debug, Clone, Copy)]
pub struct SweepSolve {
    /// Terminal status of the reduced solve.
    pub status: Status,
    /// Full objective (maximize sense). Only meaningful for
    /// [`Status::Optimal`]; a `Stopped` racing solve carries no usable value.
    pub objective: f64,
}

/// An optimal basis together with the kept-set (original indices) of the
/// branch that produced it, so it can be rank-mapped into later branches.
#[derive(Debug)]
struct SavedBasis {
    ws: WarmStart,
    /// Original variable index per reduced column.
    kept_vars: Vec<u32>,
    /// Original row index per reduced row.
    kept_rows: Vec<u32>,
}

/// A worker-local solving session over a [`SweepProblem`]: owns the reusable
/// solver workspace and the chain of warm-start bases. Feed it branches in
/// **descending τ** order to benefit from warm starts; ascending branches
/// simply cold-start (the basis of a larger space cannot shrink).
#[derive(Debug)]
pub struct SweepSession<'a> {
    problem: &'a SweepProblem,
    solver: RevisedSimplex,
    ctx: SolverContext,
    /// Basis of the most recent optimal solve, with its kept sets.
    saved: Option<SavedBasis>,
}

impl<'a> SweepSession<'a> {
    /// Solves the branch at `tau` to optimality. Progress events are
    /// suppressed for the duration — computing the dual bound they carry
    /// costs a BTRAN plus a full pricing pass each time, which only a racing
    /// caller ([`Self::solve_racing`]) has any use for.
    pub fn solve(&mut self, tau: f64) -> Result<SweepSolve, LpError> {
        let every = self.solver.options.event_every;
        self.solver.options.event_every = 0;
        let out = self.solve_racing(tau, |_| true);
        self.solver.options.event_every = every;
        out
    }

    /// Solves the branch at `tau`, reporting progress through `cb` (see
    /// [`RevisedSimplex::solve_with_callback`]); `cb` receiving the *full*
    /// objective bounds (fixed contribution included). Returning `false`
    /// aborts with [`Status::Stopped`].
    pub fn solve_racing<F>(&mut self, tau: f64, mut cb: F) -> Result<SweepSolve, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let p = self.problem;
        let (n, m) = p.dims();
        let cut = SweepProblem::cut(tau);

        // Kept rows, in original order.
        let mut row_map = vec![u32::MAX; m];
        let mut kept_rows: Vec<u32> = Vec::new();
        for i in 0..m {
            if p.row_act[i] > cut {
                row_map[i] = kept_rows.len() as u32;
                kept_rows.push(i as u32);
            }
        }
        // Kept variables plus the fixed objective of the eliminated ones,
        // accumulated in original order — the same summation order as
        // `crate::presolve`, so values agree exactly with the stateless path.
        let mut var_map = vec![u32::MAX; n];
        let mut kept_vars: Vec<u32> = Vec::new();
        let mut fixed = 0.0f64;
        for j in 0..n {
            if p.var_threshold[j] > cut {
                var_map[j] = kept_vars.len() as u32;
                kept_vars.push(j as u32);
            } else if p.obj[j] != 0.0 {
                fixed += p.obj[j] * p.fixed_val[j];
            }
        }
        let (k, r) = (kept_vars.len(), kept_rows.len());
        r2t_obs::counter_add("lp.sweep.branches", 1);
        r2t_obs::counter_add("lp.sweep.rows_eliminated", (m - r) as u64);
        r2t_obs::counter_add("lp.sweep.vars_eliminated", (n - k) as u64);
        if k == 0 && r == 0 {
            // Everything eliminated: the closed-form fixed objective.
            r2t_obs::counter_add("lp.sweep.closed_form", 1);
            return Ok(SweepSolve { status: Status::Optimal, objective: fixed });
        }

        let mat = p.mat.gather(&kept_vars, &row_map, r);
        let var_lower: Vec<f64> = kept_vars.iter().map(|&j| p.var_lower[j as usize]).collect();
        let var_upper: Vec<f64> = kept_vars.iter().map(|&j| p.var_upper[j as usize]).collect();
        let obj: Vec<f64> = kept_vars.iter().map(|&j| p.obj[j as usize]).collect();
        let mut row_lower = Vec::with_capacity(r);
        let mut row_upper = Vec::with_capacity(r);
        for &i in &kept_rows {
            let i = i as usize;
            if p.is_sweep[i] {
                row_lower.push(f64::NEG_INFINITY);
                row_upper.push(tau);
            } else {
                row_lower.push(p.row_lower[i]);
                row_upper.push(p.row_upper[i]);
            }
        }
        let raw = RawLp {
            mat: &mat,
            var_lower: &var_lower,
            var_upper: &var_upper,
            obj: &obj,
            row_lower: &row_lower,
            row_upper: &row_upper,
        };

        // Rank-map the previous optimal basis into this branch's kept sets;
        // bases from branches with a larger kept set (ascending τ) drop out.
        // A large τ-drop reveals many rows at once; each revealed sweep row
        // enters with a basic logical whose value is the (over-τ) row
        // activity, so the revealed count predicts the dual-repair effort.
        // Skip translation entirely when it exceeds the solver's own
        // acceptance threshold — this avoids paying a full factorization of
        // the translated basis just to have the solver reject it.
        let warm = self
            .saved
            .as_ref()
            .filter(|s| r.saturating_sub(s.ws.num_rows()) <= (r / 8).max(16))
            .and_then(|s| translate_basis(s, &var_map, &row_map, &kept_vars, p));
        if warm.is_some() {
            r2t_obs::counter_add("lp.sweep.warm_translated", 1);
        }
        if r2t_obs::enabled(r2t_obs::Level::Full) {
            r2t_obs::event(
                "lp.sweep.branch",
                &[
                    ("tau", r2t_obs::Attr::F64(tau)),
                    ("kept_vars", r2t_obs::Attr::U64(k as u64)),
                    ("kept_rows", r2t_obs::Attr::U64(r as u64)),
                    ("warm", r2t_obs::Attr::Bool(warm.is_some())),
                ],
            );
        }
        let sol = {
            let _solve_ns = r2t_obs::hist_time("lp.solve.ns");
            self.solver.solve_raw(&raw, warm.as_ref(), Some(&mut self.ctx), |mut ev| {
                ev.primal_objective += fixed;
                ev.dual_bound += fixed;
                cb(ev)
            })?
        };
        if let Some(ws) = self.ctx.take_basis() {
            self.saved = Some(SavedBasis { ws, kept_vars, kept_rows });
        }
        Ok(SweepSolve { status: sol.status, objective: sol.objective + fixed })
    }

    /// Counters across all solves of this session.
    pub fn stats(&self) -> SolveStats {
        self.ctx.stats
    }
}

/// Translates the optimal basis of an earlier branch into the kept sets of
/// the current one: surviving variables and rows are rank-mapped (old
/// reduced index → new reduced index), newly revealed variables enter
/// nonbasic at their fixed-value bound, and newly revealed rows enter with
/// their logicals basic. The result is exactly dual feasible for the new LP
/// (new rows take zero duals). Returns `None` when the old kept set is not a
/// subset of the new one.
fn translate_basis(
    saved: &SavedBasis,
    var_map: &[u32],
    row_map: &[u32],
    new_kept_vars: &[u32],
    p: &SweepProblem,
) -> Option<WarmStart> {
    let ws = &saved.ws;
    let (k_old, r_old) = (ws.num_vars(), ws.num_rows());
    let (k, r) = (new_kept_vars.len(), row_map.iter().filter(|&&s| s != u32::MAX).count());
    if k_old > k || r_old > r {
        return None;
    }
    let mut vmap = Vec::with_capacity(k_old);
    for &j in &saved.kept_vars {
        let t = var_map[j as usize];
        if t == u32::MAX {
            return None;
        }
        vmap.push(t as usize);
    }
    let mut rmap = Vec::with_capacity(r_old);
    for &i in &saved.kept_rows {
        let s = row_map[i as usize];
        if s == u32::MAX {
            return None;
        }
        rmap.push(s as usize);
    }

    // Default states: revealed variables nonbasic at the bound their
    // objective sign dictates (their reduced cost under zero new-row duals
    // is exactly their objective coefficient), revealed rows' logicals
    // basic. Mapped entries are then overwritten from the old basis.
    let mut state = Vec::with_capacity(k + r);
    for &j in new_kept_vars {
        let j = j as usize;
        let c = p.obj[j];
        let st = if c > 0.0 {
            VarState::AtUpper
        } else if c < 0.0 || p.var_lower[j].is_finite() {
            VarState::AtLower
        } else if p.var_upper[j].is_finite() {
            VarState::AtUpper
        } else {
            VarState::AtZero
        };
        state.push(st);
    }
    state.extend(std::iter::repeat_n(VarState::Basic, r));
    for (t_old, &t_new) in vmap.iter().enumerate() {
        state[t_new] = ws.state[t_old];
    }
    for (s_old, &s_new) in rmap.iter().enumerate() {
        state[k + s_new] = ws.state[k_old + s_old];
    }
    let mut basis: Vec<usize> = (0..r).map(|s| k + s).collect();
    for (s_old, &s_new) in rmap.iter().enumerate() {
        let bj = ws.basis[s_old];
        basis[s_new] = if bj < k_old { vmap[bj] } else { k + rmap[bj - k_old] };
    }
    Some(WarmStart::from_parts(k, r, basis, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, VarBounds};

    /// A packing LP shaped like the SJA truncation LPs: unit objective,
    /// weights as var upper bounds, at-most rows with unit coefficients.
    fn packing(n: usize, m: usize) -> (Problem, Vec<usize>) {
        let mut p = Problem::new();
        let mut s = 0xc0ffee_u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for j in 0..n {
            p.add_var(1.0, VarBounds::new(0.0, 1.0 + (j % 4) as f64));
        }
        let mut sweep = Vec::new();
        for _ in 0..m {
            let kk = 2 + next() % 6;
            let mut terms: Vec<(usize, f64)> = (0..kk).map(|_| (next() % n, 1.0)).collect();
            terms.sort_unstable_by_key(|&(j, _)| j);
            terms.dedup_by_key(|&mut (j, _)| j);
            sweep.push(p.add_row(RowBounds::at_most(f64::INFINITY), &terms));
        }
        (p, sweep)
    }

    fn solve_direct(p: &mut Problem, sweep: &[usize], tau: f64) -> f64 {
        for &i in sweep {
            p.set_row_bounds(i, RowBounds::at_most(tau));
        }
        RevisedSimplex::new().solve(p).unwrap().objective
    }

    #[test]
    fn sweep_matches_direct_solves_across_taus() {
        let (mut p, sweep) = packing(80, 30);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.session(RevisedSimplex::new());
        for tau in [64.0, 32.0, 16.0, 8.0, 4.0, 2.0, 1.0] {
            let got = sess.solve(tau).unwrap();
            assert_eq!(got.status, Status::Optimal, "tau={tau}");
            let want = solve_direct(&mut p, &sweep, tau);
            assert!(
                (got.objective - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "tau={tau}: sweep {} direct {}",
                got.objective,
                want
            );
        }
        let st = sess.stats();
        assert!(st.warm_accepted > 0, "descending chain should warm-start: {st:?}");
    }

    #[test]
    fn frontier_is_monotone_in_tau() {
        let (p, sweep) = packing(60, 25);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut prev = (usize::MAX, usize::MAX);
        for tau in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 1e6] {
            let d = sp.reduced_dims(tau);
            assert!(d.0 <= prev.0 && d.1 <= prev.1, "dims grew with tau: {d:?} after {prev:?}");
            prev = d;
        }
        // At τ far above every activity, everything is eliminated.
        assert_eq!(prev, (0, 0));
    }

    #[test]
    fn large_tau_branch_matches_closed_form() {
        let (mut p, sweep) = packing(40, 12);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.session(RevisedSimplex::new());
        let got = sess.solve(1e9).unwrap();
        let want = solve_direct(&mut p, &sweep, 1e9);
        assert_eq!(got.status, Status::Optimal);
        assert!((got.objective - want).abs() <= 1e-9 * (1.0 + want.abs()));
    }

    #[test]
    fn static_rows_keep_their_bounds() {
        // Projected-style structure: group variables capped by static rows.
        let mut p = Problem::new();
        let u: Vec<usize> = (0..6).map(|_| p.add_var(0.0, VarBounds::new(0.0, 2.0))).collect();
        let v1 = p.add_var(1.0, VarBounds::new(0.0, 3.0));
        let v2 = p.add_var(1.0, VarBounds::new(0.0, 3.0));
        // v_l <= sum of its members (static rows).
        let mut t1 = vec![(v1, 1.0)];
        t1.extend(u[..3].iter().map(|&j| (j, -1.0)));
        p.add_row(RowBounds::at_most(0.0), &t1);
        let mut t2 = vec![(v2, 1.0)];
        t2.extend(u[3..].iter().map(|&j| (j, -1.0)));
        p.add_row(RowBounds::at_most(0.0), &t2);
        // Sweep rows: per-tuple capacity over u vars.
        let sweep = vec![
            p.add_row(RowBounds::at_most(f64::INFINITY), &[(u[0], 1.0), (u[3], 1.0)]),
            p.add_row(RowBounds::at_most(f64::INFINITY), &[(u[1], 1.0), (u[4], 1.0), (u[5], 1.0)]),
            p.add_row(RowBounds::at_most(f64::INFINITY), &[(u[2], 1.0)]),
        ];

        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.session(RevisedSimplex::new());
        for tau in [8.0, 4.0, 2.0, 1.0, 0.5] {
            let got = sess.solve(tau).unwrap();
            let want = solve_direct(&mut p, &sweep, tau);
            assert_eq!(got.status, Status::Optimal, "tau={tau}");
            assert!(
                (got.objective - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "tau={tau}: sweep {} direct {}",
                got.objective,
                want
            );
        }
    }

    #[test]
    fn racing_callback_can_stop_a_branch() {
        let (p, sweep) = packing(200, 80);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut solver = RevisedSimplex::new();
        solver.options.event_every = 1;
        let mut sess = sp.session(solver);
        let got = sess.solve_racing(2.0, |_| false).unwrap();
        assert_eq!(got.status, Status::Stopped);
        // A later full solve still works (and may cold-start).
        let got = sess.solve(1.0).unwrap();
        assert_eq!(got.status, Status::Optimal);
    }

    #[test]
    fn ascending_taus_fall_back_to_cold_but_stay_correct() {
        let (mut p, sweep) = packing(50, 20);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.session(RevisedSimplex::new());
        for tau in [2.0, 8.0, 4.0, 32.0] {
            let got = sess.solve(tau).unwrap();
            let want = solve_direct(&mut p, &sweep, tau);
            assert_eq!(got.status, Status::Optimal, "tau={tau}");
            assert!((got.objective - want).abs() <= 1e-9 * (1.0 + want.abs()), "tau={tau}");
        }
    }
}
