//! # r2t-lp — a from-scratch linear programming toolkit
//!
//! This crate provides everything the R2T system needs from an LP solver,
//! implemented from first principles (the paper uses CPLEX; mature LP solver
//! crates are thin on the Rust side, so we build our own):
//!
//! * [`Problem`] — a builder for LPs in the general bounded form
//!   `maximize cᵀx  s.t.  L_r ≤ Ax ≤ U_r,  l ≤ x ≤ u`.
//! * [`dense::DenseSimplex`] — a textbook two-phase tableau simplex used as a
//!   correctness oracle in tests and for tiny problems.
//! * [`revised::RevisedSimplex`] — the production solver: bounded-variable
//!   revised simplex with a sparse LU-factorized basis, product-form (eta)
//!   updates, periodic refactorization, and an anti-cycling fallback.
//! * [`dual_bound::lagrangian_bound`] — a weak-duality upper bound valid for
//!   *any* dual vector, which powers the paper's "early stop" optimization
//!   (Algorithm 1): each LP in the race is abandoned as soon as its upper
//!   bound plus its pre-drawn noise cannot beat the current winner.
//! * [`certify`] — KKT-style optimality certificates for candidate
//!   solutions (primal feasibility, dual signs, complementarity, gap).
//! * [`mps`] — free-form MPS reading/writing for interoperability with
//!   external solvers.
//! * [`presolve`] — redundant-row / implied-free-column elimination with full
//!   postsolve. The truncation LPs of R2T shrink dramatically under it: every
//!   private tuple whose total sensitivity is below τ yields a redundant row.
//!
//! The truncation LPs solved by R2T (Sections 6 and 7 of the paper) are pure
//! packing LPs — `max Σ u_k` subject to `Σ_{k∈C_j} u_k ≤ τ` and box bounds —
//! so the all-logical starting basis is primal feasible and Phase 1 is never
//! entered on the hot path; it exists (and is tested) for generality.
//!
//! ```
//! use r2t_lp::{Problem, RevisedSimplex, RowBounds, VarBounds, Status};
//!
//! // max x + y  s.t.  x + y ≤ 1.5,  x, y ∈ [0, 1]
//! let mut p = Problem::new();
//! let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
//! let y = p.add_var(1.0, VarBounds::new(0.0, 1.0));
//! p.add_row(RowBounds::at_most(1.5), &[(x, 1.0), (y, 1.0)]);
//! let s = RevisedSimplex::new().solve(&p).unwrap();
//! assert_eq!(s.status, Status::Optimal);
//! assert!((s.objective - 1.5).abs() < 1e-9);
//! ```

// Dense numerical kernels index several parallel arrays at once; iterator
// adapters obscure them more than they help.
#![allow(clippy::needless_range_loop)]

pub mod certify;
pub mod dense;
pub mod dual_bound;
pub mod flow;
pub mod mps;
pub mod presolve;
pub mod problem;
pub mod revised;
pub mod sparse;
pub mod sweep;

pub use dense::DenseSimplex;
pub use dual_bound::lagrangian_bound;
pub use flow::{ClosedFormKernel, FallbackReason, FlowProblem, FlowSession, KernelClass, MinCut};
pub use problem::{Problem, RowBounds, Sense, VarBounds};
pub use revised::{
    RevisedSimplex, SolveOptions, SolveStats, SolverContext, SolverEvent, WarmStart,
};
pub use sparse::ColMatrix;
pub use sweep::{SweepProblem, SweepSession, SweepSolve};

/// Floating-point tolerance used to decide primal feasibility.
pub const FEAS_TOL: f64 = 1e-7;
/// Floating-point tolerance used to decide dual feasibility / optimality.
pub const OPT_TOL: f64 = 1e-7;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The problem has no feasible point.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
    /// The iteration limit was reached before optimality.
    IterationLimit,
    /// A user callback requested an early stop.
    Stopped,
}

/// The result of a solve: status, objective, primal values, and row duals.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value of the returned primal point (in the *maximize* sense).
    pub objective: f64,
    /// Primal values for the structural variables.
    pub x: Vec<f64>,
    /// Dual multipliers for the rows (sign convention: `y_i ≥ 0` for active
    /// upper row bounds, `y_i ≤ 0` for active lower row bounds).
    pub y: Vec<f64>,
    /// Number of simplex iterations performed.
    pub iterations: usize,
}

impl Solution {
    /// A solution representing an infeasible problem.
    pub fn infeasible(n: usize, m: usize, iterations: usize) -> Self {
        Solution {
            status: Status::Infeasible,
            objective: f64::NEG_INFINITY,
            x: vec![0.0; n],
            y: vec![0.0; m],
            iterations,
        }
    }
}

/// Errors raised while building or solving a problem.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable or row index was out of range.
    BadIndex { what: &'static str, index: usize, len: usize },
    /// A bound pair had `lower > upper`.
    InvertedBounds { what: &'static str, index: usize, lower: f64, upper: f64 },
    /// A coefficient, bound, or objective entry was NaN.
    NotFinite { what: &'static str, index: usize },
    /// The basis matrix became numerically singular and could not be repaired.
    SingularBasis,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::BadIndex { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            LpError::InvertedBounds { what, index, lower, upper } => {
                write!(f, "{what} {index} has inverted bounds [{lower}, {upper}]")
            }
            LpError::NotFinite { what, index } => write!(f, "{what} {index} is NaN"),
            LpError::SingularBasis => write!(f, "basis matrix is numerically singular"),
        }
    }
}

impl std::error::Error for LpError {}
