//! LP problem representation and builder.
//!
//! Problems are stated in the general bounded form
//!
//! ```text
//! maximize    cᵀ x
//! subject to  L_r ≤ A x ≤ U_r      (row bounds, entries may be ±∞)
//!             l   ≤   x ≤ u        (variable bounds, entries may be ±∞)
//! ```
//!
//! which subsumes `≤`, `≥`, `=`, and ranged constraints without any
//! transformation on the caller's side.

use crate::sparse::ColMatrix;
use crate::LpError;

/// Whether the objective is maximized or minimized.
///
/// Internally everything is solved as maximization; [`Problem::set_sense`]
/// with [`Sense::Minimize`] simply negates the objective on the way in and
/// the reported objective on the way out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Maximize the objective (default — the truncation LPs maximize).
    #[default]
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Lower/upper bound pair for a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarBounds {
    /// Lower bound (may be `-inf`).
    pub lower: f64,
    /// Upper bound (may be `+inf`).
    pub upper: f64,
}

impl VarBounds {
    /// A variable confined to `[lower, upper]`.
    pub fn new(lower: f64, upper: f64) -> Self {
        VarBounds { lower, upper }
    }
    /// A non-negative variable `[0, +inf)`.
    pub fn non_negative() -> Self {
        VarBounds { lower: 0.0, upper: f64::INFINITY }
    }
    /// A free variable `(-inf, +inf)`.
    pub fn free() -> Self {
        VarBounds { lower: f64::NEG_INFINITY, upper: f64::INFINITY }
    }
    /// A variable fixed at `v`.
    pub fn fixed(v: f64) -> Self {
        VarBounds { lower: v, upper: v }
    }
}

/// Lower/upper bound pair for a row activity `a_i · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowBounds {
    /// Lower bound on the activity (may be `-inf`).
    pub lower: f64,
    /// Upper bound on the activity (may be `+inf`).
    pub upper: f64,
}

impl RowBounds {
    /// `a_i · x ≤ rhs`.
    pub fn at_most(rhs: f64) -> Self {
        RowBounds { lower: f64::NEG_INFINITY, upper: rhs }
    }
    /// `a_i · x ≥ rhs`.
    pub fn at_least(rhs: f64) -> Self {
        RowBounds { lower: rhs, upper: f64::INFINITY }
    }
    /// `a_i · x = rhs`.
    pub fn equal(rhs: f64) -> Self {
        RowBounds { lower: rhs, upper: rhs }
    }
    /// `lo ≤ a_i · x ≤ hi`.
    pub fn range(lo: f64, hi: f64) -> Self {
        RowBounds { lower: lo, upper: hi }
    }
}

/// A linear program under construction (and the immutable input to solvers).
#[derive(Debug, Clone, Default)]
pub struct Problem {
    sense: Sense,
    /// Objective coefficients, one per variable (in the stated sense).
    pub(crate) objective: Vec<f64>,
    /// Variable bounds.
    pub(crate) var_bounds: Vec<VarBounds>,
    /// Row bounds.
    pub(crate) row_bounds: Vec<RowBounds>,
    /// Constraint coefficients in triplet form until frozen.
    triplets: Vec<(usize, usize, f64)>,
}

impl Problem {
    /// Creates an empty maximization problem.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Sets the objective sense. Call before reading solutions.
    pub fn set_sense(&mut self, sense: Sense) {
        self.sense = sense;
    }

    /// The objective sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with the given objective coefficient and bounds,
    /// returning its index.
    pub fn add_var(&mut self, obj: f64, bounds: VarBounds) -> usize {
        self.objective.push(obj);
        self.var_bounds.push(bounds);
        self.objective.len() - 1
    }

    /// Adds a constraint row `bounds.lower ≤ Σ coef·x ≤ bounds.upper`,
    /// returning its index. Duplicate variable entries are summed.
    pub fn add_row(&mut self, bounds: RowBounds, terms: &[(usize, f64)]) -> usize {
        let row = self.row_bounds.len();
        self.row_bounds.push(bounds);
        for &(var, coef) in terms {
            self.triplets.push((row, var, coef));
        }
        row
    }

    /// Adds a coefficient to an existing row.
    pub fn add_coefficient(&mut self, row: usize, var: usize, coef: f64) {
        self.triplets.push((row, var, coef));
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.row_bounds.len()
    }

    /// Objective coefficient of variable `j`, in the *maximize* sense.
    pub(crate) fn max_objective(&self, j: usize) -> f64 {
        match self.sense {
            Sense::Maximize => self.objective[j],
            Sense::Minimize => -self.objective[j],
        }
    }

    /// Converts an internal maximize-sense objective value to the stated sense.
    #[allow(dead_code)] // retained for solver implementations and tests
    pub(crate) fn externalize_objective(&self, obj: f64) -> f64 {
        match self.sense {
            Sense::Maximize => obj,
            Sense::Minimize => -obj,
        }
    }

    /// Objective coefficient of variable `j` (stated sense).
    pub fn objective_coefficient(&self, j: usize) -> f64 {
        self.objective[j]
    }

    /// Overwrites the objective coefficient of variable `j` (stated sense).
    pub fn set_objective_coefficient(&mut self, j: usize, c: f64) {
        self.objective[j] = c;
    }

    /// Overwrites the bounds of variable `j`.
    pub fn set_var_bounds(&mut self, j: usize, b: VarBounds) {
        self.var_bounds[j] = b;
    }

    /// Overwrites the bounds of row `i`.
    pub fn set_row_bounds(&mut self, i: usize, b: RowBounds) {
        self.row_bounds[i] = b;
    }

    /// Bounds of variable `j`.
    pub fn var_bounds(&self, j: usize) -> VarBounds {
        self.var_bounds[j]
    }

    /// Bounds of row `i`.
    pub fn row_bounds(&self, i: usize) -> RowBounds {
        self.row_bounds[i]
    }

    /// Validates indices, bounds, and finiteness; returns the frozen
    /// column-major constraint matrix.
    pub fn freeze(&self) -> Result<ColMatrix, LpError> {
        let n = self.num_vars();
        let m = self.num_rows();
        for (j, b) in self.var_bounds.iter().enumerate() {
            if b.lower.is_nan() || b.upper.is_nan() {
                return Err(LpError::NotFinite { what: "variable bound", index: j });
            }
            if b.lower > b.upper {
                return Err(LpError::InvertedBounds {
                    what: "variable",
                    index: j,
                    lower: b.lower,
                    upper: b.upper,
                });
            }
        }
        for (i, b) in self.row_bounds.iter().enumerate() {
            if b.lower.is_nan() || b.upper.is_nan() {
                return Err(LpError::NotFinite { what: "row bound", index: i });
            }
            if b.lower > b.upper {
                return Err(LpError::InvertedBounds {
                    what: "row",
                    index: i,
                    lower: b.lower,
                    upper: b.upper,
                });
            }
        }
        for (idx, &(r, c, v)) in self.triplets.iter().enumerate() {
            if r >= m {
                return Err(LpError::BadIndex { what: "row", index: r, len: m });
            }
            if c >= n {
                return Err(LpError::BadIndex { what: "variable", index: c, len: n });
            }
            if !v.is_finite() {
                return Err(LpError::NotFinite { what: "coefficient", index: idx });
            }
        }
        for (j, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NotFinite { what: "objective", index: j });
            }
        }
        Ok(ColMatrix::from_triplets(m, n, &self.triplets))
    }

    /// Evaluates the objective (in the stated sense) at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within `tol` (absolute, with a
    /// relative term for large activities). Returns the largest violation.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mat = ColMatrix::from_triplets(self.num_rows(), self.num_vars(), &self.triplets);
        let mut act = vec![0.0; self.num_rows()];
        for j in 0..self.num_vars() {
            for (i, v) in mat.col(j) {
                act[i] += v * x[j];
            }
        }
        let mut worst: f64 = 0.0;
        for (j, b) in self.var_bounds.iter().enumerate() {
            worst = worst.max(b.lower - x[j]).max(x[j] - b.upper);
        }
        for (i, b) in self.row_bounds.iter().enumerate() {
            worst = worst.max(b.lower - act[i]).max(act[i] - b.upper);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 2.0));
        let y = p.add_var(2.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_most(3.0), &[(x, 1.0), (y, 1.0)]);
        let mat = p.freeze().unwrap();
        assert_eq!(mat.rows(), 1);
        assert_eq!(mat.cols(), 2);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 1);
    }

    #[test]
    fn inverted_bounds_rejected() {
        let mut p = Problem::new();
        p.add_var(1.0, VarBounds::new(2.0, 1.0));
        assert!(matches!(p.freeze(), Err(LpError::InvertedBounds { .. })));
    }

    #[test]
    fn bad_index_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_most(1.0), &[(x + 5, 1.0)]);
        assert!(matches!(p.freeze(), Err(LpError::BadIndex { .. })));
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0), (x, 2.0)]);
        let mat = p.freeze().unwrap();
        let col: Vec<_> = mat.col(0).collect();
        assert_eq!(col, vec![(0, 3.0)]);
    }

    #[test]
    fn minimize_sense_flips_internal_objective() {
        let mut p = Problem::new();
        let x = p.add_var(5.0, VarBounds::non_negative());
        p.set_sense(Sense::Minimize);
        assert_eq!(p.max_objective(x), -5.0);
        assert_eq!(p.externalize_objective(-3.0), 3.0);
    }

    #[test]
    fn max_violation_reports_worst() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(0.5), &[(x, 1.0)]);
        assert!((p.max_violation(&[1.0]) - 0.5).abs() < 1e-12);
        assert!(p.max_violation(&[0.25]) <= 0.0);
    }
}
