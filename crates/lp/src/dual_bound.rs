//! Weak-duality (Lagrangian) upper bounds.
//!
//! For a maximization problem `max cᵀx, L_r ≤ Ax ≤ U_r, l ≤ x ≤ u` and *any*
//! multiplier vector `y`, Lagrangian relaxation of the rows gives
//!
//! ```text
//! OPT ≤ Σ_i max(y_i·L_i, y_i·U_i) + Σ_j max((c−Aᵀy)_j·l_j, (c−Aᵀy)_j·u_j)
//! ```
//!
//! with the convention `0·±∞ = 0`. The bound is finite whenever the signs of
//! `y` respect the finite row bounds and the reduced costs respect the finite
//! variable bounds; otherwise it degrades gracefully to `+∞` (still valid).
//!
//! This is how the R2T "early stop" optimization (Algorithm 1 in the paper)
//! observes a decreasing upper bound while the primal simplex races upward:
//! the solver's running duals `y` are plugged in as-is, no dual solve needed.
//! To keep the bound finite even for sign-infeasible `y`, [`lagrangian_bound`]
//! first projects `y` onto the sign-feasible orthant for one-sided rows.

use crate::problem::Problem;

/// Multiplies a dual value by a (possibly infinite) bound with the
/// `0 · ±∞ = 0` convention.
#[inline]
fn mul_bound(y: f64, b: f64) -> f64 {
    if y == 0.0 {
        0.0
    } else {
        y * b
    }
}

/// Raw Lagrangian bound at the given multipliers (maximize sense of the
/// underlying problem; for [`crate::Sense::Minimize`] problems the returned
/// value bounds the *negated* objective).
pub fn lagrangian_bound_parts(problem: &Problem, y: &[f64]) -> f64 {
    let Ok(mat) = problem.freeze() else {
        return f64::INFINITY;
    };
    let m = problem.num_rows();
    let n = problem.num_vars();
    debug_assert_eq!(y.len(), m);
    let mut total = 0.0f64;
    for i in 0..m {
        let b = problem.row_bounds(i);
        let v = mul_bound(y[i], b.lower).max(mul_bound(y[i], b.upper));
        total += v;
        if total.is_nan() {
            return f64::INFINITY;
        }
    }
    for j in 0..n {
        let d = problem.max_objective(j) - mat.col_dot(j, y);
        let b = problem.var_bounds(j);
        let d = if d.abs() < 1e-11 { 0.0 } else { d };
        let v = mul_bound(d, b.lower).max(mul_bound(d, b.upper));
        total += v;
        if total.is_nan() {
            return f64::INFINITY;
        }
    }
    total
}

/// Lagrangian upper bound with `y` first projected onto the sign-feasible
/// orthant: rows with only a finite upper bound require `y_i ≥ 0`, rows with
/// only a finite lower bound require `y_i ≤ 0` (equality / ranged rows are
/// unrestricted). Projection keeps the bound valid and usually finite.
pub fn lagrangian_bound(problem: &Problem, y: &[f64]) -> f64 {
    let mut yp = y.to_vec();
    for (i, v) in yp.iter_mut().enumerate() {
        let b = problem.row_bounds(i);
        if b.upper.is_infinite() && *v > 0.0 {
            *v = 0.0;
        }
        if b.lower.is_infinite() && *v < 0.0 {
            *v = 0.0;
        }
    }
    lagrangian_bound_parts(problem, &yp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, VarBounds};

    fn packing_problem() -> Problem {
        // max x + y, x + y <= 1, x,y in [0,1]. OPT = 1.
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        let y = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0), (y, 1.0)]);
        p
    }

    #[test]
    fn zero_duals_give_box_bound() {
        let p = packing_problem();
        // y = 0: bound = sum of c_j * u_j = 2 ≥ OPT.
        assert!((lagrangian_bound(&p, &[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_duals_are_tight() {
        let p = packing_problem();
        // y = 1 is the optimal dual: bound = 1·1 + 0 + 0 = 1 = OPT.
        assert!((lagrangian_bound(&p, &[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn any_duals_upper_bound_opt() {
        let p = packing_problem();
        for y in [-3.0, -0.5, 0.0, 0.3, 0.9, 1.0, 2.0, 10.0] {
            assert!(lagrangian_bound(&p, &[y]) >= 1.0 - 1e-9, "y={y}");
        }
    }

    #[test]
    fn sign_infeasible_duals_projected() {
        // Row is `>=`-only; positive dual would blow up to +inf without the
        // projection because the row's upper bound is +inf.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, VarBounds::new(0.0, 5.0));
        p.add_row(RowBounds::at_least(1.0), &[(x, 1.0)]);
        // OPT = -1 (x=1). Projection of y=+2 to 0 gives box bound 0 ≥ -1.
        let b = lagrangian_bound(&p, &[2.0]);
        assert!(b.is_finite() && b >= -1.0);
    }
}
