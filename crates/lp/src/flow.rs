//! Combinatorial kernels for matching-structured truncation LPs.
//!
//! On the paper's graph workloads (Section 10: edge counting with `Node` as
//! the primary private relation) every join result references at most two
//! private tuples with unit coefficients, so the truncation LP
//!
//! ```text
//! maximize   Σ_j u_j
//! subject to Σ_{j ∋ k} u_j ≤ τ    for every private tuple k
//!            0 ≤ u_j ≤ ψ_j
//! ```
//!
//! is a *fractional b-matching* LP: private tuples are nodes with uniform
//! capacity τ, results are edges (two references) or pendant half-edges (one
//! reference) with capacity ψ_j. Such LPs are solved exactly — no simplex —
//! by max-flow on the **bipartite double cover**:
//!
//! * every node `k` splits into `k⁺` (fed by `s → k⁺`, capacity τ) and `k⁻`
//!   (drained by `k⁻ → t`, capacity τ);
//! * an edge `j = {a, b}` becomes the arc pair `a⁺ → b⁻` and `b⁺ → a⁻`, each
//!   with capacity ψ_j;
//! * a pendant result `j = {a}` becomes `a⁺ → t` and `s → a⁻`, each ψ_j.
//!
//! Any feasible `u` pushes `u_j` along both of `j`'s arcs (flow `2 Σ u_j`),
//! and conversely `u_j := (f_j¹ + f_j²)/2` of any flow is feasible: summing
//! the `k⁺` out-capacity and `k⁻` in-capacity constraints gives
//! `2 Σ_{j∋k} u_j ≤ 2τ` exactly. So `max-flow = 2 · LP-opt`, for *arbitrary
//! real* τ and ψ — no integrality needed — and when τ and every ψ_j are
//! integral, an integral max-flow (which Dinic's returns on integral input)
//! yields the classic **half-integral** optimal vertex. The min cut at
//! termination certifies optimality and equals the LP dual bound the
//! early-stop race consumes, with zero gap.
//!
//! The τ-race solves this family at `τ = 2, 4, …, GS`. Source/sink
//! capacities grow monotonically with τ while every other capacity is fixed,
//! so a retained max-flow at τ stays feasible at any τ' > τ and only needs
//! *augmenting* to optimality: [`FlowSession`] sweeps the grid ascending,
//! memoizing each branch value, and the whole race costs roughly one
//! max-flow on the largest branch. Level graphs here have depth ≤ 3
//! (`s → k⁺ → k⁻ → t`), so Dinic's finishes every τ in at most a handful of
//! phases — the near-linear behaviour the classifier is gating on.
//!
//! A second, even cheaper shape is handled first: when every column touches
//! **at most one** sweep row the LP separates per node into fractional
//! knapsacks with the closed form `Σ_k min(τ, Σ_{j∋k} ψ_j)`
//! ([`ClosedFormKernel`]). Everything else falls back to the revised simplex
//! with an explicit [`FallbackReason`].

use crate::sparse::ColMatrix;
use std::collections::HashMap;

/// Which solver backend a [`crate::SweepProblem`]'s structure admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Every column touches ≤ 1 sweep row with a unit coefficient: the LP
    /// separates into per-node fractional knapsacks with a closed form.
    ClosedForm,
    /// Every column touches ≤ 2 sweep rows with unit coefficients: a
    /// fractional b-matching LP, solved by max-flow on the double cover.
    Matching,
    /// No special structure detected — solve with the revised simplex.
    Simplex(FallbackReason),
}

impl KernelClass {
    /// The fallback reason, when the class is [`KernelClass::Simplex`].
    pub fn fallback(&self) -> Option<FallbackReason> {
        match self {
            KernelClass::Simplex(r) => Some(*r),
            _ => None,
        }
    }
}

/// Why a sweep structure was routed to the simplex instead of a
/// combinatorial kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The problem has rows that do not sweep with τ (e.g. the `v_l ≤ Σ u_k`
    /// group rows of the projected SPJA LP).
    StaticRows,
    /// Some column touches more than two sweep rows (a join result
    /// referencing ≥ 3 private tuples, e.g. path counting).
    TooManyRefs,
    /// Some constraint coefficient differs from 1 (e.g. a result referencing
    /// the same private tuple twice).
    NonUnitCoefficient,
    /// Some objective coefficient differs from 1.
    NonUnitObjective,
    /// Some variable has a nonzero lower bound.
    NonZeroLower,
    /// Some variable has an infinite or negative upper bound.
    UnboundedColumn,
}

impl FallbackReason {
    /// Stable counter-name suffix for observability.
    pub fn as_str(&self) -> &'static str {
        match self {
            FallbackReason::StaticRows => "static_rows",
            FallbackReason::TooManyRefs => "too_many_refs",
            FallbackReason::NonUnitCoefficient => "non_unit_coefficient",
            FallbackReason::NonUnitObjective => "non_unit_objective",
            FallbackReason::NonZeroLower => "non_zero_lower",
            FallbackReason::UnboundedColumn => "unbounded_column",
        }
    }

    fn counter(&self) -> &'static str {
        match self {
            FallbackReason::StaticRows => "lp.kernel.fallback.static_rows",
            FallbackReason::TooManyRefs => "lp.kernel.fallback.too_many_refs",
            FallbackReason::NonUnitCoefficient => "lp.kernel.fallback.non_unit_coefficient",
            FallbackReason::NonUnitObjective => "lp.kernel.fallback.non_unit_objective",
            FallbackReason::NonZeroLower => "lp.kernel.fallback.non_zero_lower",
            FallbackReason::UnboundedColumn => "lp.kernel.fallback.unbounded_column",
        }
    }
}

/// Classifier output: the class plus the kernel built for it (if any).
pub(crate) struct BuiltKernels {
    pub class: KernelClass,
    pub flow: Option<FlowProblem>,
    pub closed: Option<ClosedFormKernel>,
}

/// Classifies the sweep structure and builds the matching kernel when the
/// structure admits one. `O(nnz)`, run once per [`crate::SweepProblem`].
pub(crate) fn build_kernels(
    mat: &ColMatrix,
    n_static: usize,
    obj: &[f64],
    var_lower: &[f64],
    var_upper: &[f64],
) -> BuiltKernels {
    let class = classify(mat, n_static, obj, var_lower, var_upper);
    match class {
        KernelClass::ClosedForm => {
            r2t_obs::counter_add("lp.kernel.class.closed_form", 1);
            BuiltKernels {
                class,
                flow: None,
                closed: Some(ClosedFormKernel::build(mat, var_upper)),
            }
        }
        KernelClass::Matching => {
            r2t_obs::counter_add("lp.kernel.class.matching", 1);
            BuiltKernels { class, flow: Some(FlowProblem::build(mat, var_upper)), closed: None }
        }
        KernelClass::Simplex(reason) => {
            r2t_obs::counter_add(reason.counter(), 1);
            BuiltKernels { class, flow: None, closed: None }
        }
    }
}

fn classify(
    mat: &ColMatrix,
    n_static: usize,
    obj: &[f64],
    var_lower: &[f64],
    var_upper: &[f64],
) -> KernelClass {
    if n_static > 0 {
        return KernelClass::Simplex(FallbackReason::StaticRows);
    }
    let mut max_refs = 0usize;
    for j in 0..mat.cols() {
        if obj[j] != 1.0 {
            return KernelClass::Simplex(FallbackReason::NonUnitObjective);
        }
        if var_lower[j] != 0.0 {
            return KernelClass::Simplex(FallbackReason::NonZeroLower);
        }
        if !var_upper[j].is_finite() || var_upper[j] < 0.0 {
            return KernelClass::Simplex(FallbackReason::UnboundedColumn);
        }
        let nnz = mat.col_nnz(j);
        if nnz > 2 {
            return KernelClass::Simplex(FallbackReason::TooManyRefs);
        }
        // `ColMatrix` merges duplicate entries, so a result referencing the
        // same private tuple twice shows up as a single coefficient of 2.
        if mat.col(j).any(|(_, a)| a != 1.0) {
            return KernelClass::Simplex(FallbackReason::NonUnitCoefficient);
        }
        max_refs = max_refs.max(nnz);
    }
    if max_refs <= 1 {
        KernelClass::ClosedForm
    } else {
        KernelClass::Matching
    }
}

/// The closed form for single-reference structures: the LP separates per
/// sweep row `k` into `max Σ u_j  s.t. Σ u_j ≤ τ, u_j ≤ ψ_j`, whose optimum
/// is `min(τ, S_k)` with `S_k = Σ_{j∋k} ψ_j`; unconstrained columns are
/// fixed at their upper bound. Branch evaluation is a binary search over the
/// sorted row sums.
#[derive(Debug)]
pub struct ClosedFormKernel {
    /// Per-row weight sums `S_k`, ascending.
    sums: Vec<f64>,
    /// `prefix[i] = Σ sums[..i]`.
    prefix: Vec<f64>,
    /// Fixed contribution of columns touching no sweep row.
    fixed: f64,
}

impl ClosedFormKernel {
    fn build(mat: &ColMatrix, var_upper: &[f64]) -> Self {
        let mut sums = vec![0.0f64; mat.rows()];
        let mut fixed = 0.0f64;
        for j in 0..mat.cols() {
            match mat.col(j).next() {
                Some((i, _)) => sums[i] += var_upper[j],
                None => fixed += var_upper[j],
            }
        }
        sums.sort_by(f64::total_cmp);
        let mut prefix = Vec::with_capacity(sums.len() + 1);
        let mut acc = 0.0f64;
        prefix.push(0.0);
        for &s in &sums {
            acc += s;
            prefix.push(acc);
        }
        ClosedFormKernel { sums, prefix, fixed }
    }

    /// `Q(I, τ)` for τ > 0: `fixed + Σ_k min(τ, S_k)`.
    pub fn value(&self, tau: f64) -> f64 {
        let idx = self.sums.partition_point(|&s| s <= tau);
        self.fixed + self.prefix[idx] + tau * (self.sums.len() - idx) as f64
    }
}

const SOURCE: u32 = 0;
const SINK: u32 = 1;

/// The immutable double-cover network of a matching-structured sweep family:
/// topology, fixed ψ capacities, and which arcs carry the τ capacity. Built
/// once per [`crate::SweepProblem`] and shared (by reference) across every
/// worker's [`FlowSession`].
#[derive(Debug)]
pub struct FlowProblem {
    /// Number of sweep rows (= private tuples with a constraint).
    n_nodes: usize,
    /// Arc heads; arcs come in `(forward, reverse)` pairs `2a, 2a+1`.
    to: Vec<u32>,
    /// Stated capacity per arc (reverse arcs: 0). τ-arcs read the branch's τ
    /// instead — see `is_tau`.
    cap: Vec<f64>,
    /// Whether the arc's capacity is the branch parameter τ.
    is_tau: Vec<bool>,
    /// CSR adjacency: `adj[adj_ptr[v]..adj_ptr[v+1]]` are arc ids out of `v`
    /// (both directions, as usual for residual networks).
    adj_ptr: Vec<u32>,
    adj: Vec<u32>,
    /// Forward arc ids out of the source (τ-arcs plus pendant ψ-arcs): the
    /// flow value is the sum of their flows, and the `{s}` cut over them is
    /// the cheap racing upper bound.
    source_arcs: Vec<u32>,
    /// Per column: its two forward arc ids (`u32::MAX` for unconstrained
    /// columns, which are fixed at their upper bound).
    col_arcs: Vec<(u32, u32)>,
    /// Column upper bounds ψ (kept for primal extraction).
    col_upper: Vec<f64>,
    /// Fixed objective contribution of unconstrained columns.
    fixed: f64,
    /// Largest ψ capacity, for scaling the augmentation tolerance.
    max_psi: f64,
}

impl FlowProblem {
    fn build(mat: &ColMatrix, var_upper: &[f64]) -> Self {
        let n = mat.rows();
        let num_verts = 2 + 2 * n;
        let plus = |k: usize| (2 + k) as u32;
        let minus = |k: usize| (2 + n + k) as u32;

        let mut from: Vec<u32> = Vec::new();
        let mut to: Vec<u32> = Vec::new();
        let mut cap: Vec<f64> = Vec::new();
        let mut is_tau: Vec<bool> = Vec::new();
        let mut add_arc = |f: u32, t: u32, c: f64, tau_arc: bool| -> u32 {
            let id = to.len() as u32;
            from.push(f);
            to.push(t);
            cap.push(c);
            is_tau.push(tau_arc);
            from.push(t);
            to.push(f);
            cap.push(0.0);
            is_tau.push(false);
            id
        };

        let mut source_arcs = Vec::with_capacity(n);
        for k in 0..n {
            source_arcs.push(add_arc(SOURCE, plus(k), 0.0, true));
            add_arc(minus(k), SINK, 0.0, true);
        }
        let mut col_arcs = Vec::with_capacity(mat.cols());
        let mut fixed = 0.0f64;
        let mut max_psi = 0.0f64;
        for j in 0..mat.cols() {
            let psi = var_upper[j];
            let mut ends = mat.col(j).map(|(i, _)| i);
            match (ends.next(), ends.next()) {
                (None, _) => {
                    fixed += psi;
                    col_arcs.push((u32::MAX, u32::MAX));
                    continue;
                }
                (Some(a), None) => {
                    let a1 = add_arc(plus(a), SINK, psi, false);
                    let a2 = add_arc(SOURCE, minus(a), psi, false);
                    source_arcs.push(a2);
                    col_arcs.push((a1, a2));
                }
                (Some(a), Some(b)) => {
                    let a1 = add_arc(plus(a), minus(b), psi, false);
                    let a2 = add_arc(plus(b), minus(a), psi, false);
                    col_arcs.push((a1, a2));
                }
            }
            max_psi = max_psi.max(psi);
        }

        // CSR adjacency over arc ids.
        let mut counts = vec![0u32; num_verts + 1];
        for &f in &from {
            counts[f as usize + 1] += 1;
        }
        for v in 0..num_verts {
            counts[v + 1] += counts[v];
        }
        let adj_ptr = counts.clone();
        let mut adj = vec![0u32; from.len()];
        for (a, &f) in from.iter().enumerate() {
            adj[counts[f as usize] as usize] = a as u32;
            counts[f as usize] += 1;
        }

        FlowProblem {
            n_nodes: n,
            to,
            cap,
            is_tau,
            adj_ptr,
            adj,
            source_arcs,
            col_arcs,
            col_upper: var_upper.to_vec(),
            fixed,
            max_psi,
        }
    }

    /// Residuals below this are dust: a saturated arc's leftover rounding
    /// error (≤ 1 ulp of its capacity) must land strictly below, so the
    /// threshold scales with the largest capacity in play — including τ,
    /// which can dwarf every ψ.
    fn eps(&self, tau: f64) -> f64 {
        1e-12 * (1.0 + self.max_psi.max(tau))
    }

    /// Number of private-tuple nodes (sweep rows) in the network.
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of directed arcs (forward + reverse).
    pub fn num_arcs(&self) -> usize {
        self.to.len()
    }

    /// Starts a worker-local solving session with empty flow.
    pub fn session(&self) -> FlowSession<'_> {
        FlowSession {
            p: self,
            flow: vec![0.0; self.to.len()],
            level: vec![-1; 2 + 2 * self.n_nodes],
            it: vec![0; 2 + 2 * self.n_nodes],
            queue: Vec::with_capacity(2 + 2 * self.n_nodes),
            cap_tau: 0.0,
            memo: HashMap::new(),
        }
    }
}

/// A min-cut certificate: the source side of the cut and its capacity,
/// which equals the max-flow value (strong duality with zero gap).
#[derive(Debug)]
pub struct MinCut {
    /// Whether each vertex of the double cover is on the source side.
    pub source_side: Vec<bool>,
    /// Total capacity of the cut at the certified τ.
    pub capacity: f64,
}

/// A worker-local incremental max-flow session over a [`FlowProblem`].
///
/// The session retains its flow across branches: source/sink capacities grow
/// monotonically with τ, so moving to a larger τ only *augments*. A request
/// for τ above the current frontier first completes every power-of-two grid
/// point in between (ascending), memoizing each — the descending τ-race then
/// costs one max-flow for its first (largest) branch and a memo lookup for
/// every other. Requests below the frontier that were never memoized solve
/// from scratch into scratch state (the retained chain is untouched).
#[derive(Debug)]
pub struct FlowSession<'a> {
    p: &'a FlowProblem,
    /// Signed flow per arc (reverse arcs carry the negation).
    flow: Vec<f64>,
    level: Vec<i32>,
    it: Vec<u32>,
    queue: Vec<u32>,
    /// The largest τ the retained flow has been augmented toward.
    cap_tau: f64,
    /// Completed branch values keyed by `tau.to_bits()`.
    memo: HashMap<u64, f64>,
}

impl<'a> FlowSession<'a> {
    /// The LP optimum at `tau` (> 0): fixed contribution plus half the
    /// max-flow on the double cover.
    pub fn solve(&mut self, tau: f64) -> f64 {
        self.solve_racing(tau, &mut |_| true).expect("unconditional solve cannot be stopped")
    }

    /// Racing variant: `cb` receives decreasing upper bounds on the *full*
    /// LP optimum at `tau` (from `{s}`-cuts of the residual network during
    /// augmentation, and the exact optimum at completion); returning `false`
    /// abandons the branch with `None`. Partial augmentation is kept — it
    /// remains a feasible flow for every later branch.
    pub fn solve_racing(&mut self, tau: f64, cb: &mut dyn FnMut(f64) -> bool) -> Option<f64> {
        debug_assert!(tau > 0.0, "flow kernel branches are strictly positive");
        if let Some(&v) = self.memo.get(&tau.to_bits()) {
            r2t_obs::counter_add("lp.kernel.memo_hits", 1);
            return Some(v);
        }
        if tau >= self.cap_tau {
            // Ascending chain: complete every power-of-two grid point in
            // (cap_tau, tau) first, so the whole τ-race costs one max-flow.
            // Each completed point tightens a concave-chord upper bound on
            // the target's optimum (the LP value function is concave in τ):
            // through points (s₀, v₀), (s₁, v₁) of the chain,
            // `value(τ) ≤ v₁ + (τ - s₁)·(v₁ - v₀)/(s₁ - s₀)`.
            let mut prev = (0.0, self.p.fixed); // value(0⁺): constrained columns vanish
            if let Some(&v) = self.memo.get(&self.cap_tau.to_bits()) {
                prev = (self.cap_tau, v);
            }
            let mut best_ub = f64::INFINITY;
            for k in 1u32..63 {
                let step = (1u64 << k) as f64;
                if step >= tau {
                    break;
                }
                if step > self.cap_tau {
                    let v = self.augment_to(step, tau, best_ub, cb)?;
                    let chord = v + (tau - step) * (v - prev.1) / (step - prev.0);
                    prev = (step, v);
                    best_ub = best_ub.min(chord);
                    if !cb(best_ub) {
                        return None;
                    }
                }
            }
            return self.augment_to(tau, tau, best_ub, cb);
        }
        // Below the frontier and never memoized: a from-scratch solve on
        // scratch flow state; the retained ascending chain stays intact.
        r2t_obs::counter_add("lp.kernel.restarts", 1);
        let saved_flow = std::mem::replace(&mut self.flow, vec![0.0; self.p.to.len()]);
        let saved_tau = self.cap_tau;
        self.cap_tau = 0.0;
        let out = self.augment_to(tau, tau, f64::INFINITY, cb);
        self.flow = saved_flow;
        self.cap_tau = saved_tau;
        out
    }

    /// Augments the retained flow to optimality at `tau`, memoizing the
    /// branch value. `bound_tau` (≥ `tau`) is the ascending chain's final
    /// target; racing upper bounds hold for *its* optimum (which dominates
    /// every branch of the chain). `best_ub` is the tightest bound the chain
    /// has established so far.
    fn augment_to(
        &mut self,
        tau: f64,
        bound_tau: f64,
        best_ub: f64,
        cb: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        self.cap_tau = self.cap_tau.max(tau);
        let eps = self.p.eps(tau);
        let mut phases = 0u64;
        let mut augments = 0u64;
        while self.bfs(tau) {
            phases += 1;
            self.it.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(SOURCE, f64::INFINITY, tau);
                if pushed <= eps {
                    break;
                }
                augments += 1;
            }
            // The `{s}` cut at the chain's target τ upper-bounds the target
            // optimum; re-offering a bound lets the race kill this branch
            // once some *other* branch has raised the bar past it.
            let scut =
                self.p.fixed + 0.5 * (self.flow_value() + self.residual_out_of_source(bound_tau));
            if !cb(best_ub.min(scut)) {
                r2t_obs::counter_add("lp.kernel.phases", phases);
                r2t_obs::counter_add("lp.kernel.augments", augments);
                return None;
            }
        }
        r2t_obs::counter_add("lp.kernel.phases", phases);
        r2t_obs::counter_add("lp.kernel.augments", augments);
        r2t_obs::counter_add("lp.kernel.solves", 1);
        let value = self.p.fixed + 0.5 * self.flow_value();
        self.memo.insert(tau.to_bits(), value);
        if tau == bound_tau {
            // At completion the min cut is tight: the bound *is* the optimum.
            if !cb(value) {
                return None;
            }
        }
        Some(value)
    }

    fn residual(&self, arc: u32, tau: f64) -> f64 {
        let stated = if self.p.is_tau[arc as usize] { tau } else { self.p.cap[arc as usize] };
        stated - self.flow[arc as usize]
    }

    fn flow_value(&self) -> f64 {
        self.p.source_arcs.iter().map(|&a| self.flow[a as usize]).sum()
    }

    fn residual_out_of_source(&self, tau: f64) -> f64 {
        self.p.source_arcs.iter().map(|&a| self.residual(a, tau).max(0.0)).sum()
    }

    fn bfs(&mut self, tau: f64) -> bool {
        let eps = self.p.eps(tau);
        self.level.iter_mut().for_each(|l| *l = -1);
        self.level[SOURCE as usize] = 0;
        self.queue.clear();
        self.queue.push(SOURCE);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let (lo, hi) =
                (self.p.adj_ptr[v as usize] as usize, self.p.adj_ptr[v as usize + 1] as usize);
            for &a in &self.p.adj[lo..hi] {
                let u = self.p.to[a as usize];
                if self.level[u as usize] < 0 && self.residual(a, tau) > eps {
                    self.level[u as usize] = self.level[v as usize] + 1;
                    self.queue.push(u);
                }
            }
        }
        self.level[SINK as usize] >= 0
    }

    /// One augmenting path in the level graph (depth ≤ 3 on the double
    /// cover, so recursion is shallow). Returns the pushed amount.
    fn dfs(&mut self, v: u32, pushed: f64, tau: f64) -> f64 {
        if v == SINK {
            return pushed;
        }
        let eps = self.p.eps(tau);
        let lo = self.p.adj_ptr[v as usize];
        let hi = self.p.adj_ptr[v as usize + 1];
        while lo + self.it[v as usize] < hi {
            let a = self.p.adj[(lo + self.it[v as usize]) as usize];
            let u = self.p.to[a as usize];
            let r = self.residual(a, tau);
            if self.level[u as usize] == self.level[v as usize] + 1 && r > eps {
                let f = self.dfs(u, pushed.min(r), tau);
                if f > eps {
                    self.flow[a as usize] += f;
                    self.flow[(a ^ 1) as usize] -= f;
                    return f;
                }
            }
            self.it[v as usize] += 1;
        }
        0.0
    }

    /// The min-cut certificate at the session's current τ frontier: vertices
    /// reachable from `s` in the residual network, plus the capacity of the
    /// crossing arcs. After a completed solve `capacity == max-flow`, i.e.
    /// `fixed + capacity/2` equals the LP optimum — the exact dual bound.
    pub fn min_cut(&mut self) -> MinCut {
        let tau = self.cap_tau;
        let reached = !self.bfs(tau); // false ⇒ t unreachable ⇒ flow is maximum
        debug_assert!(reached, "min_cut certificate requires a completed solve");
        let source_side: Vec<bool> = self.level.iter().map(|&l| l >= 0).collect();
        let mut capacity = 0.0;
        for a in (0..self.p.to.len()).step_by(2) {
            let f = {
                // Forward arcs only: reverse arcs have stated capacity 0.
                let from = self.p.to[a ^ 1] as usize;
                let to = self.p.to[a] as usize;
                source_side[from] && !source_side[to]
            };
            if f {
                capacity += if self.p.is_tau[a] { tau } else { self.p.cap[a] };
            }
        }
        MinCut { source_side, capacity }
    }

    /// Primal values `u_j` per column at the session's τ frontier:
    /// `(f_j¹ + f_j²)/2` for constrained columns, the upper bound for
    /// unconstrained ones. Half-integral whenever τ and every ψ are
    /// integers.
    pub fn primal(&self) -> Vec<f64> {
        self.p
            .col_arcs
            .iter()
            .zip(&self.p.col_upper)
            .map(|(&(a1, a2), &psi)| {
                if a1 == u32::MAX {
                    psi
                } else {
                    0.5 * (self.flow[a1 as usize] + self.flow[a2 as usize])
                }
            })
            .collect()
    }

    /// The largest τ the retained flow has been augmented toward.
    pub fn frontier(&self) -> f64 {
        self.cap_tau
    }

    /// Number of distinct completed (memoized) branch values.
    pub fn solved_branches(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, RowBounds, VarBounds};
    use crate::{RevisedSimplex, Status, SweepProblem};

    /// A deterministic ≤2-refs-per-result packing family shaped like the
    /// graph truncation LPs: `n` results over `m` private nodes.
    fn matching_lp(n: usize, m: usize, seed: u64, fractional: bool) -> (Problem, Vec<usize>) {
        let mut p = Problem::new();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for j in 0..n {
            let psi = match next() % 5 {
                0 => 0.0, // zero-weight results
                k if fractional => 0.25 * k as f64 + 0.5,
                k => k as f64,
            };
            p.add_var(1.0, VarBounds::new(0.0, psi));
            match next() % 8 {
                0 => {} // results referencing no private tuple
                1 | 2 => rows[next() % m].push((j, 1.0)),
                _ => {
                    let a = next() % m;
                    let b = (a + 1 + next() % (m - 1)) % m;
                    rows[a].push((j, 1.0));
                    rows[b].push((j, 1.0));
                }
            }
        }
        let sweep: Vec<usize> =
            rows.iter().map(|terms| p.add_row(RowBounds::at_most(f64::INFINITY), terms)).collect();
        (p, sweep)
    }

    fn simplex_value(p: &mut Problem, sweep: &[usize], tau: f64) -> f64 {
        for &i in sweep {
            p.set_row_bounds(i, RowBounds::at_most(tau));
        }
        let s = RevisedSimplex::new().solve(p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        s.objective
    }

    fn rel_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn classifier_accepts_matching_and_rejects_everything_else() {
        let (p, sweep) = matching_lp(60, 12, 1, true);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::Matching);

        // Three references → too many.
        let mut p = Problem::new();
        for _ in 0..3 {
            p.add_var(1.0, VarBounds::new(0.0, 1.0));
        }
        let r = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0), (1, 1.0)]);
        let r2 = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0)]);
        let r3 = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0)]);
        let sp = SweepProblem::new(&p, &[r, r2, r3]).unwrap();
        assert_eq!(
            sp.kernel_class(),
            KernelClass::Simplex(FallbackReason::TooManyRefs),
            "column 0 touches three sweep rows"
        );

        // Duplicate reference merges into a coefficient of 2.
        let mut p = Problem::new();
        p.add_var(1.0, VarBounds::new(0.0, 1.0));
        let r = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0), (0, 1.0)]);
        let sp = SweepProblem::new(&p, &[r]).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::Simplex(FallbackReason::NonUnitCoefficient));

        // Static rows (projected group rows) bar the kernel.
        let mut p = Problem::new();
        p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(0.0), &[(0, 1.0), (1, -1.0)]);
        let r = p.add_row(RowBounds::at_most(1.0), &[(1, 1.0)]);
        let sp = SweepProblem::new(&p, &[r]).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::Simplex(FallbackReason::StaticRows));

        // Non-unit objective.
        let mut p = Problem::new();
        p.add_var(2.0, VarBounds::new(0.0, 1.0));
        let r = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0)]);
        let sp = SweepProblem::new(&p, &[r]).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::Simplex(FallbackReason::NonUnitObjective));

        // Unbounded column.
        let mut p = Problem::new();
        p.add_var(1.0, VarBounds::non_negative());
        let r = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0)]);
        let sp = SweepProblem::new(&p, &[r]).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::Simplex(FallbackReason::UnboundedColumn));

        // Single references classify to the closed form.
        let mut p = Problem::new();
        p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_var(1.0, VarBounds::new(0.0, 2.0));
        let r = p.add_row(RowBounds::at_most(1.0), &[(0, 1.0), (1, 1.0)]);
        let sp = SweepProblem::new(&p, &[r]).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::ClosedForm);
    }

    #[test]
    fn flow_matches_simplex_across_taus_and_seeds() {
        for seed in 0..6u64 {
            let fractional = seed % 2 == 0;
            let (mut p, sweep) = matching_lp(80, 14, 0xABC0 + seed, fractional);
            let sp = SweepProblem::new(&p, &sweep).unwrap();
            assert_eq!(sp.kernel_class(), KernelClass::Matching);
            let mut sess = sp.flow_session().unwrap();
            // Ascending, descending and repeated requests all agree.
            for tau in [64.0, 32.0, 8.0, 2.0, 1.0, 0.5, 3.0, 8.0, 100.0] {
                let got = sess.solve(tau);
                let want = simplex_value(&mut p, &sweep, tau);
                assert!(rel_close(got, want), "seed={seed} tau={tau}: flow {got} simplex {want}");
            }
        }
    }

    #[test]
    fn incremental_sweep_equals_from_scratch_per_branch() {
        let (p, sweep) = matching_lp(100, 16, 7, true);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut chained = sp.flow_session().unwrap();
        for k in 1..=7 {
            let tau = (1u64 << k) as f64;
            let chained_v = chained.solve(tau);
            let scratch_v = sp.flow_session().unwrap().solve(tau);
            assert!(
                rel_close(chained_v, scratch_v),
                "tau={tau}: chained {chained_v} scratch {scratch_v}"
            );
        }
        // The descending race order hits the memo for every later branch.
        let mut desc = sp.flow_session().unwrap();
        let first = desc.solve(128.0);
        assert!(first >= 0.0);
        assert_eq!(desc.solved_branches(), 7, "ascending chain memoizes the 2..=128 grid");
    }

    #[test]
    fn half_integral_on_integer_instances() {
        let (mut p, sweep) = matching_lp(60, 10, 3, false);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.flow_session().unwrap();
        let v = sess.solve(4.0);
        let u = sess.primal();
        let mut total = 0.0;
        for (j, &uj) in u.iter().enumerate() {
            let doubled = 2.0 * uj;
            assert!((doubled - doubled.round()).abs() < 1e-9, "u[{j}] = {uj} is not half-integral");
            total += uj;
        }
        assert!(rel_close(total, v), "primal sums to the optimum: {total} vs {v}");
        // Primal feasibility: box bounds and row capacities at τ = 4.
        for &i in &sweep {
            p.set_row_bounds(i, RowBounds::at_most(4.0));
        }
        assert!(p.max_violation(&u) <= 1e-9, "violation {}", p.max_violation(&u));
    }

    #[test]
    fn min_cut_is_tight_at_the_optimum() {
        let (p, sweep) = matching_lp(70, 12, 11, true);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.flow_session().unwrap();
        for tau in [2.0, 8.0, 64.0] {
            let v = sess.solve(tau);
            let cut = sess.min_cut();
            let dual = cut.capacity;
            let flow = 2.0 * (v - sp.flow_problem().unwrap().fixed);
            assert!(
                (dual - flow).abs() <= 1e-6 * (1.0 + flow.abs()),
                "tau={tau}: cut {dual} vs flow {flow}"
            );
        }
    }

    #[test]
    fn closed_form_matches_simplex() {
        let mut p = Problem::new();
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 6];
        for j in 0..24 {
            p.add_var(1.0, VarBounds::new(0.0, 0.5 + (j % 4) as f64));
            if j % 5 != 0 {
                rows[j % 6].push((j, 1.0));
            }
        }
        let sweep: Vec<usize> =
            rows.iter().map(|terms| p.add_row(RowBounds::at_most(f64::INFINITY), terms)).collect();
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        assert_eq!(sp.kernel_class(), KernelClass::ClosedForm);
        let kernel = sp.closed_form().unwrap();
        for tau in [0.25, 1.0, 2.0, 5.0, 100.0] {
            let got = kernel.value(tau);
            let want = simplex_value(&mut p, &sweep, tau);
            assert!(rel_close(got, want), "tau={tau}: closed {got} simplex {want}");
        }
    }

    #[test]
    fn racing_stop_keeps_partial_flow_usable() {
        let (mut p, sweep) = matching_lp(90, 15, 21, true);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.flow_session().unwrap();
        // Kill immediately: the branch dies but the session stays coherent.
        let killed = sess.solve_racing(64.0, &mut |_| false);
        assert!(killed.is_none());
        let got = sess.solve(64.0);
        let want = simplex_value(&mut p, &sweep, 64.0);
        assert!(rel_close(got, want), "after a kill: {got} vs {want}");
    }

    #[test]
    fn racing_bounds_are_valid_and_decreasing_to_the_optimum() {
        let (p, sweep) = matching_lp(120, 18, 31, true);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.flow_session().unwrap();
        let mut bounds = Vec::new();
        let v = sess
            .solve_racing(32.0, &mut |ub| {
                bounds.push(ub);
                true
            })
            .unwrap();
        assert!(!bounds.is_empty());
        for &ub in &bounds {
            assert!(ub + 1e-9 >= v, "upper bound {ub} below the optimum {v}");
        }
        assert!(
            (bounds.last().unwrap() - v).abs() <= 1e-9 * (1.0 + v.abs()),
            "final bound is the exact optimum"
        );
    }

    #[test]
    fn saturated_taus_return_the_unconstrained_total() {
        let (p, sweep) = matching_lp(50, 9, 41, false);
        let sp = SweepProblem::new(&p, &sweep).unwrap();
        let mut sess = sp.flow_session().unwrap();
        let total: f64 = (0..p.num_vars()).map(|j| p.var_bounds(j).upper).sum();
        let v = sess.solve(1e9);
        assert!(rel_close(v, total), "τ past saturation: {v} vs {total}");
    }
}
