//! Sparse LU factorization of simplex basis matrices.
//!
//! A left-looking factorization with threshold partial pivoting. Basis
//! columns are processed singleton-first (logical variables contribute unit
//! columns which pivot without fill), then in ascending nonzero count. The
//! sparse triangular solve per column discovers fill-in with a min-heap over
//! pivot positions: an L-column eliminated at position `p` only creates fill
//! at positions `> p` (rows pivoted after step `p`) or on unpivoted rows, so
//! heap order is elimination order.
//!
//! The factors satisfy `P_r · B · P_c = L · U` where `P_r` is the row
//! permutation chosen by pivoting and `P_c` the column processing order.
//! `L` is unit lower triangular (diagonal implicit, entries stored against
//! original row indices), `U` is upper triangular (strict upper entries
//! stored against permuted positions, diagonal separate).

use crate::LpError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One basis column in sparse form (borrowed entries).
pub struct BasisColumn<'a> {
    /// Row indices (original space).
    pub rows: &'a [u32],
    /// Matching coefficient values.
    pub values: &'a [f64],
}

/// Sparse LU factors of a basis matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    // L: unit lower triangular, column-wise; row indices in ORIGINAL space.
    l_ptr: Vec<usize>,
    l_row: Vec<u32>,
    l_val: Vec<f64>,
    // U: strict upper entries, column-wise; row indices in PERMUTED space.
    u_ptr: Vec<usize>,
    u_row: Vec<u32>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// original row -> permuted position (usize::MAX while unpivoted)
    rperm: Vec<usize>,
    /// permuted position -> original row
    rperm_inv: Vec<usize>,
    /// permuted position -> basis slot whose column pivoted there
    cperm_inv: Vec<usize>,
}

/// Relative threshold for partial pivoting: a pivot must have magnitude at
/// least this fraction of the largest eligible entry in its column.
const PIVOT_THRESHOLD: f64 = 0.1;
/// Absolute floor below which a pivot is considered numerically zero.
const PIVOT_FLOOR: f64 = 1e-11;

impl LuFactors {
    /// Factorizes the basis whose `m` columns are produced by `col(slot)`.
    pub fn factorize<'a, F>(m: usize, col: F) -> Result<LuFactors, LpError>
    where
        F: Fn(usize) -> BasisColumn<'a>,
    {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&s| col(s).rows.len());

        let mut lu = LuFactors {
            m,
            l_ptr: vec![0],
            l_row: Vec::new(),
            l_val: Vec::new(),
            u_ptr: vec![0],
            u_row: Vec::new(),
            u_val: Vec::new(),
            u_diag: Vec::with_capacity(m),
            rperm: vec![usize::MAX; m],
            rperm_inv: vec![usize::MAX; m],
            cperm_inv: Vec::with_capacity(m),
        };

        let mut work = vec![0.0f64; m];
        let mut stamp = vec![0u32; m];
        let mut touched: Vec<u32> = Vec::with_capacity(64);
        let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
        let mut u_entries: Vec<(u32, f64)> = Vec::new();

        for (k, &slot) in order.iter().enumerate() {
            let c = col(slot);
            let gen = (k + 1) as u32;
            touched.clear();
            heap.clear();
            // Scatter the column into `work`.
            for (&r, &v) in c.rows.iter().zip(c.values) {
                let r = r as usize;
                if stamp[r] != gen {
                    stamp[r] = gen;
                    work[r] = v;
                    touched.push(r as u32);
                    if lu.rperm[r] != usize::MAX {
                        heap.push(Reverse(lu.rperm[r]));
                    }
                } else {
                    work[r] += v;
                }
            }
            // Sparse lower-triangular solve `L y = column` in pivot order.
            while let Some(Reverse(p)) = heap.pop() {
                let row = lu.rperm_inv[p];
                let y = work[row];
                if y == 0.0 {
                    continue;
                }
                for idx in lu.l_ptr[p]..lu.l_ptr[p + 1] {
                    let r = lu.l_row[idx] as usize;
                    if stamp[r] != gen {
                        stamp[r] = gen;
                        work[r] = 0.0;
                        touched.push(r as u32);
                        if lu.rperm[r] != usize::MAX {
                            heap.push(Reverse(lu.rperm[r]));
                        }
                    }
                    work[r] -= lu.l_val[idx] * y;
                }
            }
            // Pivot selection among unpivoted rows.
            let mut max_abs = 0.0f64;
            for &r in &touched {
                let r = r as usize;
                if lu.rperm[r] == usize::MAX {
                    max_abs = max_abs.max(work[r].abs());
                }
            }
            let mut best_r = usize::MAX;
            let mut best_abs = 0.0f64;
            for &r in &touched {
                let r = r as usize;
                if lu.rperm[r] == usize::MAX {
                    let a = work[r].abs();
                    if a >= PIVOT_THRESHOLD * max_abs && a > best_abs {
                        best_abs = a;
                        best_r = r;
                    }
                }
            }
            if best_r == usize::MAX || best_abs <= PIVOT_FLOOR {
                return Err(LpError::SingularBasis);
            }
            let pivot = work[best_r];
            // Emit U entries (pivoted rows) sorted by position, then the L
            // column (remaining unpivoted rows, scaled by the pivot).
            u_entries.clear();
            for &r in &touched {
                let r = r as usize;
                let v = work[r];
                if v == 0.0 || r == best_r {
                    continue;
                }
                let p = lu.rperm[r];
                if p != usize::MAX {
                    u_entries.push((p as u32, v));
                } else {
                    lu.l_row.push(r as u32);
                    lu.l_val.push(v / pivot);
                }
            }
            u_entries.sort_unstable_by_key(|&(p, _)| p);
            for &(p, v) in &u_entries {
                lu.u_row.push(p);
                lu.u_val.push(v);
            }
            lu.u_ptr.push(lu.u_row.len());
            lu.l_ptr.push(lu.l_row.len());
            lu.u_diag.push(pivot);
            lu.rperm[best_r] = k;
            lu.rperm_inv[k] = best_r;
            lu.cperm_inv.push(slot);
        }
        Ok(lu)
    }

    /// Basis dimension.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Solves `B x = b` in place. Input `b` is indexed by original row; the
    /// output is indexed by *basis slot* (the slot order passed to
    /// [`LuFactors::factorize`]).
    pub fn ftran(&self, b: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(b.len(), self.m);
        scratch.clear();
        scratch.resize(self.m, 0.0);
        let z = &mut scratch[..];
        for k in 0..self.m {
            z[k] = b[self.rperm_inv[k]];
        }
        // Forward solve L y = z. L column k stores original-row indices whose
        // permuted positions are all > k, so ascending k is valid order.
        for k in 0..self.m {
            let yk = z[k];
            if yk != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    let p = self.rperm[self.l_row[idx] as usize];
                    z[p] -= self.l_val[idx] * yk;
                }
            }
        }
        // Back solve U w = y. U column k has strict-upper entries (positions
        // < k), so descending k with scatter-subtract is valid.
        for k in (0..self.m).rev() {
            let wk = z[k] / self.u_diag[k];
            z[k] = wk;
            if wk != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    z[self.u_row[idx] as usize] -= self.u_val[idx] * wk;
                }
            }
        }
        for k in 0..self.m {
            b[self.cperm_inv[k]] = z[k];
        }
    }

    /// Solves `Bᵀ y = c` in place. Input `c` is indexed by basis slot; the
    /// output is indexed by original row.
    pub fn btran(&self, c: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(c.len(), self.m);
        scratch.clear();
        scratch.resize(self.m, 0.0);
        let z = &mut scratch[..];
        for k in 0..self.m {
            z[k] = c[self.cperm_inv[k]];
        }
        // Solve Uᵀ v = z: row k of Uᵀ is column k of U (entries at positions
        // < k plus the diagonal), so ascending k gathers finished values.
        for k in 0..self.m {
            let mut s = z[k];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_val[idx] * z[self.u_row[idx] as usize];
            }
            z[k] = s / self.u_diag[k];
        }
        // Solve Lᵀ w = v: row k of Lᵀ is column k of L (entries at positions
        // > k), so descending k gathers finished values.
        for k in (0..self.m).rev() {
            let mut s = z[k];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_val[idx] * z[self.rperm[self.l_row[idx] as usize]];
            }
            z[k] = s;
        }
        for k in 0..self.m {
            c[self.rperm_inv[k]] = z[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds LU factors from a dense matrix given in row-major order.
    fn factorize_dense(m: usize, a: &[f64]) -> Result<LuFactors, LpError> {
        let mut cols: Vec<(Vec<u32>, Vec<f64>)> = Vec::new();
        for j in 0..m {
            let mut rows = Vec::new();
            let mut vals = Vec::new();
            for i in 0..m {
                let v = a[i * m + j];
                if v != 0.0 {
                    rows.push(i as u32);
                    vals.push(v);
                }
            }
            cols.push((rows, vals));
        }
        LuFactors::factorize(m, |s| BasisColumn { rows: &cols[s].0, values: &cols[s].1 })
    }

    fn mat_vec(m: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        (0..m).map(|i| (0..m).map(|j| a[i * m + j] * x[j]).sum()).collect()
    }

    #[test]
    fn identity_round_trip() {
        let a = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let lu = factorize_dense(3, &a).unwrap();
        let mut b = vec![3.0, -1.0, 2.0];
        let mut scratch = Vec::new();
        lu.ftran(&mut b, &mut scratch);
        assert_eq!(b, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn ftran_solves_dense_system() {
        let a = [2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let lu = factorize_dense(3, &a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let mut b = mat_vec(3, &a, &x_true);
        let mut scratch = Vec::new();
        lu.ftran(&mut b, &mut scratch);
        for (got, want) in b.iter().zip(x_true) {
            assert!((got - want).abs() < 1e-10, "{b:?}");
        }
    }

    #[test]
    fn btran_solves_transpose_system() {
        let a = [2.0, 1.0, 0.0, 0.5, 3.0, 1.0, 0.0, 1.0, 2.0];
        let lu = factorize_dense(3, &a).unwrap();
        let y_true = [0.5, 1.5, -1.0];
        // c = Aᵀ y  (c[slot j] = column j of A dot y).
        let mut c: Vec<f64> =
            (0..3).map(|j| (0..3).map(|i| a[i * 3 + j] * y_true[i]).sum()).collect();
        let mut scratch = Vec::new();
        lu.btran(&mut c, &mut scratch);
        for (got, want) in c.iter().zip(y_true) {
            assert!((got - want).abs() < 1e-10, "{c:?}");
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(matches!(factorize_dense(2, &a), Err(LpError::SingularBasis)));
    }

    #[test]
    fn permutation_matrix() {
        // Columns are unit vectors in scrambled order.
        let a = [0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let lu = factorize_dense(3, &a).unwrap();
        let x_true = [4.0, 5.0, 6.0];
        let mut b = mat_vec(3, &a, &x_true);
        let mut scratch = Vec::new();
        lu.ftran(&mut b, &mut scratch);
        for (got, want) in b.iter().zip(x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn random_dense_systems() {
        // Deterministic pseudo-random matrices; verify ftran and btran.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for m in [1usize, 2, 5, 12, 30] {
            let mut a = vec![0.0f64; m * m];
            for (i, v) in a.iter_mut().enumerate() {
                *v = next();
                // Boost the diagonal to keep matrices comfortably invertible.
                if i % (m + 1) == 0 {
                    *v += 2.0;
                }
            }
            let lu = factorize_dense(m, &a).unwrap();
            let x_true: Vec<f64> = (0..m).map(|_| next()).collect();
            let mut b = mat_vec(m, &a, &x_true);
            let mut scratch = Vec::new();
            lu.ftran(&mut b, &mut scratch);
            for (got, want) in b.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8);
            }
            let mut c: Vec<f64> =
                (0..m).map(|j| (0..m).map(|i| a[i * m + j] * x_true[i]).sum()).collect();
            lu.btran(&mut c, &mut scratch);
            for (got, want) in c.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8);
            }
        }
    }
}
