//! Bounded-variable primal revised simplex.
//!
//! This is the production solver for R2T's truncation LPs. Design points:
//!
//! * **Logical formulation.** Every row `L_i ≤ a_i·x ≤ U_i` gets a logical
//!   variable `s_i` with those bounds and the system `A x − s = 0`, so the
//!   all-logical basis is triangular and the solver starts without any
//!   factorization work. For R2T's packing LPs (`x = 0` feasible) this basis
//!   is primal feasible and Phase 1 is skipped entirely.
//! * **Phase 1 by artificials.** When the all-logical start is infeasible,
//!   one artificial column per violated row absorbs the residual and a
//!   max `−Σ artificials` phase restores feasibility.
//! * **Sparse LU basis** ([`lu::LuFactors`]) with product-form (eta) updates
//!   and periodic refactorization.
//! * **Dantzig pricing** with an automatic switch to Bland's rule after a
//!   run of degenerate pivots (anti-cycling).
//! * **Progress events.** A callback receives the running primal objective
//!   (a valid lower bound — primal feasibility is maintained throughout) and
//!   a Lagrangian dual upper bound; returning `false` aborts the solve with
//!   [`Status::Stopped`]. This implements the paper's early-stop race
//!   (Algorithm 1) without a separate dual solver.

pub mod lu;

use crate::problem::Problem;
use crate::sparse::ColMatrix;
use crate::{LpError, Solution, Status};
use lu::{BasisColumn, LuFactors};

/// A progress snapshot passed to solve callbacks.
#[derive(Debug, Clone, Copy)]
pub struct SolverEvent {
    /// Simplex iterations completed so far.
    pub iteration: usize,
    /// Objective of the current (primal-feasible) point — a lower bound on
    /// the optimum for maximization problems once Phase 2 has begun.
    pub primal_objective: f64,
    /// A weak-duality upper bound on the optimum (maximize sense). May be
    /// `+inf` early in the solve.
    pub dual_bound: f64,
    /// Whether the solver is still in Phase 1 (primal objective is then the
    /// negated infeasibility, not a bound on the true objective).
    pub phase_one: bool,
}

/// Options controlling a revised-simplex solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Hard cap on simplex iterations (0 = automatic: `20(m+n) + 10000`).
    pub max_iterations: usize,
    /// Refactorize the basis after this many eta updates.
    pub refactor_interval: usize,
    /// Invoke the callback every this many iterations (0 = never).
    pub event_every: usize,
    /// Candidate-list (multiple) pricing: a full Dantzig scan periodically
    /// collects the best `partial_pricing` improving columns, and subsequent
    /// iterations price only that list until it is exhausted (0 = full
    /// Dantzig pricing every iteration). Near-Dantzig pivot quality at a
    /// fraction of the pricing cost on LPs with many columns.
    pub partial_pricing: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_iterations: 0,
            refactor_interval: 96,
            event_every: 0,
            partial_pricing: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable parked at zero.
    AtZero,
}

/// The production LP solver. See the module documentation.
#[derive(Debug, Default)]
pub struct RevisedSimplex {
    /// Solve options.
    pub options: SolveOptions,
}

struct Eta {
    slot: usize,
    pivot: f64,
    /// (slot, w) entries excluding the pivot slot.
    entries: Vec<(u32, f64)>,
}

const PIV_TOL: f64 = 1e-9;
const D_TOL: f64 = 1e-7;
const DEGENERATE_SWITCH: usize = 20_000;

struct Work<'a> {
    n: usize,
    m: usize,
    mat: &'a ColMatrix,
    /// bounds/objective for all variables: structural, logical, artificial
    lower: Vec<f64>,
    upper: Vec<f64>,
    obj: Vec<f64>,
    /// artificial -> (row, sign of its column entry)
    art: Vec<(usize, f64)>,
    state: Vec<VarState>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    lu: LuFactors,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
    col_buf: Vec<f64>,
    iterations: usize,
}

impl<'a> Work<'a> {
    fn nvars(&self) -> usize {
        self.n + self.m + self.art.len()
    }

    /// Writes the constraint-matrix column of variable `j` into `out`
    /// (original row space, dense).
    fn scatter_col(&self, j: usize, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        if j < self.n {
            for (i, v) in self.mat.col(j) {
                out[i] = v;
            }
        } else if j < self.n + self.m {
            out[j - self.n] = -1.0;
        } else {
            let (row, sign) = self.art[j - self.n - self.m];
            out[row] = sign;
        }
    }

    /// Dot of the constraint column of `j` with a dense row-space vector.
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.mat.col_dot(j, y)
        } else if j < self.n + self.m {
            -y[j - self.n]
        } else {
            let (row, sign) = self.art[j - self.n - self.m];
            sign * y[row]
        }
    }

    /// Nonbasic value of variable `j` implied by its state.
    fn nb_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::AtLower => self.lower[j],
            VarState::AtUpper => self.upper[j],
            VarState::AtZero => 0.0,
            VarState::Basic => unreachable!("nb_value on basic variable"),
        }
    }

    /// Full FTRAN through LU and the eta file. `v` enters in original row
    /// space and exits indexed by basis slot.
    fn ftran(&mut self, v: &mut [f64]) {
        self.lu.ftran(v, &mut self.scratch);
        for eta in &self.etas {
            let xp = v[eta.slot] / eta.pivot;
            v[eta.slot] = xp;
            if xp != 0.0 {
                for &(i, w) in &eta.entries {
                    v[i as usize] -= w * xp;
                }
            }
        }
    }

    /// Full BTRAN. `c` enters indexed by basis slot and exits in original
    /// row space.
    fn btran(&mut self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = c[eta.slot];
            for &(i, w) in &eta.entries {
                s -= c[i as usize] * w;
            }
            c[eta.slot] = s / eta.pivot;
        }
        self.lu.btran(c, &mut self.scratch);
    }

    /// Recomputes basic values from nonbasic bound values.
    fn recompute_xb(&mut self) {
        let mut rhs = vec![0.0f64; self.m];
        for j in 0..self.nvars() {
            if self.state[j] != VarState::Basic {
                let v = self.nb_value(j);
                if v != 0.0 {
                    if j < self.n {
                        for (i, a) in self.mat.col(j) {
                            rhs[i] -= a * v;
                        }
                    } else if j < self.n + self.m {
                        rhs[j - self.n] += v;
                    } else {
                        let (row, sign) = self.art[j - self.n - self.m];
                        rhs[row] -= sign * v;
                    }
                }
            }
        }
        self.ftran(&mut rhs);
        self.xb = rhs;
    }

    /// Rebuilds the LU factorization from the current basis and clears etas.
    fn refactorize(&mut self) -> Result<(), LpError> {
        self.lu = factorize_basis(self.n, self.m, self.mat, &self.art, &self.basis)?;
        self.etas.clear();
        self.recompute_xb();
        Ok(())
    }

    /// Current objective under cost vector `obj` (maximize sense).
    fn objective(&self) -> f64 {
        let mut total = 0.0;
        for (s, &j) in self.basis.iter().enumerate() {
            total += self.obj[j] * self.xb[s];
        }
        for j in 0..self.nvars() {
            if self.state[j] != VarState::Basic && self.obj[j] != 0.0 {
                total += self.obj[j] * self.nb_value(j);
            }
        }
        total
    }

    /// Row duals for the current basis under the current cost vector.
    fn duals(&mut self) -> Vec<f64> {
        let mut c: Vec<f64> = self.basis.iter().map(|&j| self.obj[j]).collect();
        self.btran(&mut c);
        c
    }

    /// A weak-duality upper bound on the optimum from the current duals,
    /// with `y` projected onto the sign-feasible orthant of the row bounds
    /// (see `crate::dual_bound`). Computed without touching the `Problem`.
    fn dual_upper_bound(&mut self) -> f64 {
        #[inline]
        fn mul(y: f64, b: f64) -> f64 {
            if y == 0.0 {
                0.0
            } else {
                y * b
            }
        }
        let mut y = self.duals();
        let mut total = 0.0f64;
        for i in 0..self.m {
            let (lo, hi) = (self.lower[self.n + i], self.upper[self.n + i]);
            if hi.is_infinite() && y[i] > 0.0 {
                y[i] = 0.0;
            }
            if lo.is_infinite() && y[i] < 0.0 {
                y[i] = 0.0;
            }
            total += mul(y[i], lo).max(mul(y[i], hi));
        }
        for j in 0..self.n {
            let mut d = self.obj[j] - self.mat.col_dot(j, &y);
            if d.abs() < 1e-11 {
                d = 0.0;
            }
            total += mul(d, self.lower[j]).max(mul(d, self.upper[j]));
        }
        if total.is_nan() {
            f64::INFINITY
        } else {
            total
        }
    }
}

/// Factorizes the basis described by variable indices (structural /
/// logical / artificial) into LU form.
fn factorize_basis(
    n: usize,
    m: usize,
    mat: &ColMatrix,
    art: &[(usize, f64)],
    basis: &[usize],
) -> Result<LuFactors, LpError> {
    let mut cols: Vec<(Vec<u32>, Vec<f64>)> = Vec::with_capacity(m);
    for &j in basis {
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        if j < n {
            for (i, v) in mat.col(j) {
                rows.push(i as u32);
                vals.push(v);
            }
        } else if j < n + m {
            rows.push((j - n) as u32);
            vals.push(-1.0);
        } else {
            let (row, sign) = art[j - n - m];
            rows.push(row as u32);
            vals.push(sign);
        }
        cols.push((rows, vals));
    }
    LuFactors::factorize(m, |s| BasisColumn { rows: &cols[s].0, values: &cols[s].1 })
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterLimit,
    Stopped,
}

impl RevisedSimplex {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        RevisedSimplex::default()
    }

    /// Solves the problem to optimality (or another terminal status).
    pub fn solve(&self, problem: &Problem) -> Result<Solution, LpError> {
        self.solve_with_callback(problem, |_| true)
    }

    /// Solves the problem, invoking `cb` every `options.event_every`
    /// iterations (if nonzero). Returning `false` from the callback aborts
    /// with [`Status::Stopped`]; the returned solution is the best
    /// primal-feasible point found (a valid lower bound for maximization).
    pub fn solve_with_callback<F>(
        &self,
        problem: &Problem,
        mut cb: F,
    ) -> Result<Solution, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let mat = problem.freeze()?;
        let n = problem.num_vars();
        let m = problem.num_rows();

        if m == 0 {
            // Pure box problem: each variable sits at its best bound.
            let mut x = vec![0.0; n];
            for j in 0..n {
                let b = problem.var_bounds(j);
                let c = problem.max_objective(j);
                x[j] = if c > 0.0 {
                    if b.upper.is_finite() { b.upper } else { f64::INFINITY }
                } else if c < 0.0 {
                    if b.lower.is_finite() { b.lower } else { f64::NEG_INFINITY }
                } else if b.lower.is_finite() {
                    b.lower
                } else if b.upper.is_finite() {
                    b.upper
                } else {
                    0.0
                };
                if !x[j].is_finite() {
                    return Ok(Solution {
                        status: Status::Unbounded,
                        objective: match problem.sense() {
                            crate::problem::Sense::Maximize => f64::INFINITY,
                            crate::problem::Sense::Minimize => f64::NEG_INFINITY,
                        },
                        x: vec![0.0; n],
                        y: Vec::new(),
                        iterations: 0,
                    });
                }
            }
            let objective = problem.objective_value(&x);
            return Ok(Solution { status: Status::Optimal, objective, x, y: Vec::new(), iterations: 0 });
        }

        let mut lower: Vec<f64> = (0..n).map(|j| problem.var_bounds(j).lower).collect();
        let mut upper: Vec<f64> = (0..n).map(|j| problem.var_bounds(j).upper).collect();
        let mut obj: Vec<f64> = (0..n).map(|j| problem.max_objective(j)).collect();
        for i in 0..m {
            let b = problem.row_bounds(i);
            lower.push(b.lower);
            upper.push(b.upper);
            obj.push(0.0);
        }

        // Initial nonbasic states for structural variables.
        let mut state: Vec<VarState> = (0..n)
            .map(|j| {
                if lower[j].is_finite() {
                    VarState::AtLower
                } else if upper[j].is_finite() {
                    VarState::AtUpper
                } else {
                    VarState::AtZero
                }
            })
            .collect();
        state.extend(std::iter::repeat_n(VarState::Basic, m));

        // Row activities at the initial point.
        let mut act = vec![0.0f64; m];
        for j in 0..n {
            let v = match state[j] {
                VarState::AtLower => lower[j],
                VarState::AtUpper => upper[j],
                _ => 0.0,
            };
            if v != 0.0 {
                for (i, a) in mat.col(j) {
                    act[i] += a * v;
                }
            }
        }

        // Build artificials for violated rows; logicals of those rows become
        // nonbasic at their nearest bound.
        let mut art: Vec<(usize, f64)> = Vec::new();
        let mut basis: Vec<usize> = (0..m).map(|i| n + i).collect();
        let mut xb = act.clone();
        let mut phase_one = false;
        for i in 0..m {
            let (lo, hi) = (lower[n + i], upper[n + i]);
            if act[i] < lo - crate::FEAS_TOL {
                // s clamps to lo; artificial z = lo - act with +1 column.
                state[n + i] = VarState::AtLower;
                let t = art.len();
                art.push((i, 1.0));
                basis[i] = n + m + t; // placeholder; art indices appended below
                xb[i] = lo - act[i];
                phase_one = true;
            } else if act[i] > hi + crate::FEAS_TOL {
                state[n + i] = VarState::AtUpper;
                let t = art.len();
                art.push((i, -1.0));
                basis[i] = n + m + t;
                xb[i] = act[i] - hi;
                phase_one = true;
            }
        }
        for _ in 0..art.len() {
            lower.push(0.0);
            upper.push(f64::INFINITY);
            obj.push(0.0);
            state.push(VarState::Basic);
        }

        // The initial basis is mixed logicals/artificials — all singleton
        // columns — so this factorization is trivially sparse.
        let lu = factorize_basis(n, m, &mat, &art, &basis)?;
        let mut w = Work {
            n,
            m,
            mat: &mat,
            lower,
            upper,
            obj,
            art,
            state,
            basis,
            xb,
            lu,
            etas: Vec::new(),
            scratch: Vec::new(),
            col_buf: vec![0.0; m],
            iterations: 0,
        };

        let max_iters = if self.options.max_iterations == 0 {
            60 * (m + n) + 20_000
        } else {
            self.options.max_iterations
        };

        if phase_one {
            // Phase 1: maximize -sum(artificials).
            let real_obj = w.obj.clone();
            for t in 0..w.art.len() {
                w.obj[w.n + w.m + t] = -1.0;
            }
            for j in 0..w.n + w.m {
                w.obj[j] = 0.0;
            }
            let outcome = self.iterate(&mut w, max_iters, true, &mut cb)?;
            match outcome {
                PhaseOutcome::Optimal => {}
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded above by 0; "unbounded"
                    // can only arise from numerical trouble.
                    return Err(LpError::SingularBasis);
                }
                PhaseOutcome::IterLimit => {
                    return Ok(Solution {
                        status: Status::IterationLimit,
                        objective: f64::NAN,
                        x: vec![0.0; n],
                        y: vec![0.0; m],
                        iterations: w.iterations,
                    });
                }
                PhaseOutcome::Stopped => {
                    return Ok(Solution {
                        status: Status::Stopped,
                        objective: f64::NAN,
                        x: vec![0.0; n],
                        y: vec![0.0; m],
                        iterations: w.iterations,
                    });
                }
            }
            if w.objective() < -1e-6 {
                return Ok(Solution::infeasible(n, m, w.iterations));
            }
            // Fix artificials at zero and restore the real objective.
            for t in 0..w.art.len() {
                let j = w.n + w.m + t;
                w.upper[j] = 0.0;
                if w.state[j] != VarState::Basic {
                    w.state[j] = VarState::AtLower;
                }
            }
            w.obj = real_obj;
        }

        let outcome = self.iterate(&mut w, max_iters, false, &mut cb)?;
        let status = match outcome {
            PhaseOutcome::Optimal => Status::Optimal,
            PhaseOutcome::Unbounded => Status::Unbounded,
            PhaseOutcome::IterLimit => Status::IterationLimit,
            PhaseOutcome::Stopped => Status::Stopped,
        };

        // Extract structural solution.
        let mut x = vec![0.0f64; n];
        for j in 0..n {
            if w.state[j] != VarState::Basic {
                x[j] = w.nb_value(j);
            }
        }
        for (s, &j) in w.basis.iter().enumerate() {
            if j < n {
                x[j] = w.xb[s];
            }
        }
        let y = w.duals();
        let objective = if status == Status::Unbounded {
            match problem.sense() {
                crate::problem::Sense::Maximize => f64::INFINITY,
                crate::problem::Sense::Minimize => f64::NEG_INFINITY,
            }
        } else {
            problem.objective_value(&x)
        };
        Ok(Solution { status, objective, x, y, iterations: w.iterations })
    }

    /// Runs simplex iterations under the current cost vector until optimal,
    /// unbounded, the iteration cap, or a callback stop.
    fn iterate<F>(
        &self,
        w: &mut Work<'_>,
        max_iters: usize,
        phase_one: bool,
        cb: &mut F,
    ) -> Result<PhaseOutcome, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let mut degenerate_run = 0usize;
        let mut bland = false;
        let mut candidates: Vec<usize> = Vec::new();
        loop {
            if w.iterations >= max_iters {
                return Ok(PhaseOutcome::IterLimit);
            }
            // Pricing. Bland mode: full scan, smallest improving index
            // (anti-cycling). Candidate-list mode: price only the candidate
            // list; when it is exhausted, a full Dantzig scan refills it
            // with the top-K improving columns (a fruitless full scan proves
            // optimality). partial_pricing == 0: full Dantzig every time.
            let y = w.duals();
            let nvars = w.nvars();
            let klist = self.options.partial_pricing;
            let price = |w: &Work<'_>, j: usize, y: &[f64]| -> Option<(f64, f64)> {
                let st = w.state[j];
                if st == VarState::Basic || (w.lower[j] == w.upper[j] && st != VarState::AtZero) {
                    return None;
                }
                let d = w.obj[j] - w.col_dot(j, y);
                let dtol = D_TOL * (1.0 + w.obj[j].abs());
                let improving = match st {
                    VarState::AtLower => d > dtol,
                    VarState::AtUpper => d < -dtol,
                    VarState::AtZero => d.abs() > dtol,
                    VarState::Basic => false,
                };
                improving.then_some((d, d.abs()))
            };
            let mut enter: Option<(usize, f64, f64)> = None; // (var, d, score)
            if bland {
                for j in 0..nvars {
                    if let Some((d, score)) = price(w, j, &y) {
                        enter = Some((j, d, score));
                        break;
                    }
                }
            } else if klist != 0 {
                // Price the current candidate list.
                candidates.retain(|&j| {
                    if let Some((d, score)) = price(w, j, &y) {
                        if enter.is_none_or(|(_, _, s)| score > s) {
                            enter = Some((j, d, score));
                        }
                        true
                    } else {
                        false
                    }
                });
                if enter.is_none() {
                    // Refill with the top-K improving columns.
                    let mut all: Vec<(usize, f64, f64)> = Vec::new();
                    for j in 0..nvars {
                        if let Some((d, score)) = price(w, j, &y) {
                            all.push((j, d, score));
                        }
                    }
                    all.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).expect("finite scores"));
                    all.truncate(klist);
                    candidates.clear();
                    candidates.extend(all.iter().map(|&(j, _, _)| j));
                    enter = all.first().copied();
                }
            } else {
                for j in 0..nvars {
                    if let Some((d, score)) = price(w, j, &y) {
                        if enter.is_none_or(|(_, _, s)| score > s) {
                            enter = Some((j, d, score));
                        }
                    }
                }
            }
            let Some((enter, d_enter, _)) = enter else {
                return Ok(PhaseOutcome::Optimal);
            };
            candidates.retain(|&j| j != enter);
            let sigma = match w.state[enter] {
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
                VarState::AtZero => {
                    if d_enter > 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VarState::Basic => unreachable!(),
            };

            // FTRAN the entering column.
            let mut col = std::mem::take(&mut w.col_buf);
            w.scatter_col(enter, &mut col);
            w.ftran(&mut col);

            // Ratio test.
            let mut t_star = f64::INFINITY;
            let mut leave: Option<(usize, VarState)> = None; // (slot, new state)
            let mut leave_w = 0.0f64;
            for (s, &wv) in col.iter().enumerate() {
                let dir = sigma * wv;
                if dir > PIV_TOL {
                    let lb = w.lower[w.basis[s]];
                    if lb.is_finite() {
                        let t = (w.xb[s] - lb) / dir;
                        if t < t_star - 1e-12
                            || (t < t_star + 1e-12
                                && (wv.abs() > leave_w.abs()
                                    || (bland
                                        && leave.is_some_and(|(ls, _)| w.basis[s] < w.basis[ls]))))
                        {
                            t_star = t.max(0.0);
                            leave = Some((s, VarState::AtLower));
                            leave_w = wv;
                        }
                    }
                } else if dir < -PIV_TOL {
                    let ub = w.upper[w.basis[s]];
                    if ub.is_finite() {
                        let t = (ub - w.xb[s]) / (-dir);
                        if t < t_star - 1e-12
                            || (t < t_star + 1e-12
                                && (wv.abs() > leave_w.abs()
                                    || (bland
                                        && leave.is_some_and(|(ls, _)| w.basis[s] < w.basis[ls]))))
                        {
                            t_star = t.max(0.0);
                            leave = Some((s, VarState::AtUpper));
                            leave_w = wv;
                        }
                    }
                }
            }
            // Bound-flip candidate.
            let flip_len = w.upper[enter] - w.lower[enter];
            let flip = flip_len.is_finite() && flip_len < t_star;
            if flip {
                t_star = flip_len;
                leave = None;
            }
            if t_star.is_infinite() {
                w.col_buf = col;
                return Ok(PhaseOutcome::Unbounded);
            }

            // Apply the step to basic values.
            if t_star != 0.0 {
                for (s, &wv) in col.iter().enumerate() {
                    if wv != 0.0 {
                        w.xb[s] -= sigma * t_star * wv;
                    }
                }
            }
            if let Some((r, new_state)) = leave {
                let leaving = w.basis[r];
                // Clamp the leaving variable exactly onto its bound.
                w.state[leaving] = new_state;
                let enter_val = match w.state[enter] {
                    VarState::AtLower => w.lower[enter] + t_star,
                    VarState::AtUpper => w.upper[enter] - t_star,
                    VarState::AtZero => sigma * t_star,
                    VarState::Basic => unreachable!(),
                };
                w.basis[r] = enter;
                w.state[enter] = VarState::Basic;
                w.xb[r] = enter_val;
                // Record the eta (w vector without the pivot slot).
                let pivot = col[r];
                let mut entries: Vec<(u32, f64)> = Vec::new();
                for (s, &wv) in col.iter().enumerate() {
                    if s != r && wv != 0.0 {
                        entries.push((s as u32, wv));
                    }
                }
                w.etas.push(Eta { slot: r, pivot, entries });
                if w.etas.len() >= self.options.refactor_interval {
                    w.col_buf = col;
                    w.refactorize()?;
                    col = std::mem::take(&mut w.col_buf);
                }
            } else {
                // Bound flip: entering variable jumps to its other bound.
                w.state[enter] = match w.state[enter] {
                    VarState::AtLower => VarState::AtUpper,
                    VarState::AtUpper => VarState::AtLower,
                    s => s,
                };
            }
            w.col_buf = col;
            w.iterations += 1;

            if t_star <= 1e-10 {
                degenerate_run += 1;
                if degenerate_run > DEGENERATE_SWITCH {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
                bland = false;
            }

            if self.options.event_every != 0 && w.iterations.is_multiple_of(self.options.event_every) {
                let dual = if phase_one { f64::INFINITY } else { w.dual_upper_bound() };
                let ev = SolverEvent {
                    iteration: w.iterations,
                    primal_objective: w.objective(),
                    dual_bound: dual,
                    phase_one,
                };
                if !cb(ev) {
                    return Ok(PhaseOutcome::Stopped);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, Sense, VarBounds};

    fn solve(p: &Problem) -> Solution {
        RevisedSimplex::new().solve(p).unwrap()
    }

    #[test]
    fn simple_max() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        let y = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn bound_flip_path() {
        // max 2x + y with x in [0,3] unconstrained by the row: x flips to its
        // upper bound without a basis change.
        let mut p = Problem::new();
        let _x = p.add_var(2.0, VarBounds::new(0.0, 3.0));
        let y = p.add_var(1.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_most(4.0), &[(y, 1.0)]);
        let s = solve(&p);
        assert!((s.objective - 10.0).abs() < 1e-7, "{}", s.objective);
    }

    #[test]
    fn equality_rows_via_phase_one() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        let y = p.add_var(0.0, VarBounds::new(1.0, f64::INFINITY));
        p.add_row(RowBounds::equal(2.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-7, "{}", s.objective);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_least(2.0), &[(x, 1.0)]);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_least(0.0), &[(x, 1.0)]);
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn minimize_sense() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        let y = p.add_var(1.0, VarBounds::non_negative());
        p.set_sense(Sense::Minimize);
        p.add_row(RowBounds::at_least(3.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn no_rows_box_problem() {
        let mut p = Problem::new();
        p.add_var(3.0, VarBounds::new(0.0, 2.0));
        p.add_var(-1.0, VarBounds::new(-1.0, 5.0));
        let s = solve(&p);
        assert!((s.objective - 7.0).abs() < 1e-12);
        assert_eq!(s.x, vec![2.0, -1.0]);
    }

    #[test]
    fn duals_close_weak_duality_gap() {
        // 4-clique truncation LP at tau = 2 (from Example 6.2): OPT = 4.
        let mut p = Problem::new();
        let edges = [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let vars: Vec<usize> =
            edges.iter().map(|_| p.add_var(1.0, VarBounds::new(0.0, 1.0))).collect();
        for v in 0..4 {
            let terms: Vec<(usize, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.0 == v || e.1 == v)
                .map(|(k, _)| (vars[k], 1.0))
                .collect();
            p.add_row(RowBounds::at_most(2.0), &terms);
        }
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-7, "{}", s.objective);
        let ub = crate::dual_bound::lagrangian_bound(&p, &s.y);
        assert!(ub >= s.objective - 1e-7);
        assert!(ub <= s.objective + 1e-6, "gap: {} vs {}", ub, s.objective);
    }

    #[test]
    fn callback_stop_returns_feasible_point() {
        // A big enough star LP that at least one event fires.
        let mut p = Problem::new();
        let vars: Vec<usize> =
            (0..200).map(|_| p.add_var(1.0, VarBounds::new(0.0, 1.0))).collect();
        for w in vars.chunks(2) {
            p.add_row(RowBounds::at_most(1.0), &[(w[0], 1.0), (w[1], 1.0)]);
        }
        let solver = RevisedSimplex {
            options: SolveOptions { event_every: 1, ..SolveOptions::default() },
        };
        let s = solver.solve_with_callback(&p, |ev| ev.iteration < 5).unwrap();
        assert_eq!(s.status, Status::Stopped);
        assert!(p.max_violation(&s.x) <= 1e-7);
    }

    #[test]
    fn events_report_consistent_bounds() {
        let mut p = Problem::new();
        let vars: Vec<usize> =
            (0..64).map(|_| p.add_var(1.0, VarBounds::new(0.0, 1.0))).collect();
        for w in vars.windows(2) {
            p.add_row(RowBounds::at_most(1.0), &[(w[0], 1.0), (w[1], 1.0)]);
        }
        let solver = RevisedSimplex {
            options: SolveOptions { event_every: 4, ..SolveOptions::default() },
        };
        let mut events = Vec::new();
        let s = solver
            .solve_with_callback(&p, |ev| {
                events.push(ev);
                true
            })
            .unwrap();
        assert_eq!(s.status, Status::Optimal);
        for ev in &events {
            assert!(
                ev.dual_bound >= ev.primal_objective - 1e-6,
                "dual bound below primal: {ev:?}"
            );
            assert!(ev.dual_bound >= s.objective - 1e-6);
        }
    }

    #[test]
    fn large_chain_refactorizes() {
        // Force more iterations than the refactor interval.
        let mut p = Problem::new();
        let n = 300;
        let vars: Vec<usize> =
            (0..n).map(|i| p.add_var(1.0 + (i % 7) as f64 * 0.1, VarBounds::new(0.0, 1.0))).collect();
        for w in vars.windows(2) {
            p.add_row(RowBounds::at_most(1.2), &[(w[0], 1.0), (w[1], 1.0)]);
        }
        let solver = RevisedSimplex {
            options: SolveOptions { refactor_interval: 16, ..SolveOptions::default() },
        };
        let s = solver.solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(p.max_violation(&s.x) <= 1e-6);
        // Compare against the dense oracle.
        let d = crate::dense::DenseSimplex::new().solve(&p).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-5, "{} vs {}", s.objective, d.objective);
    }

    #[test]
    fn negative_rhs_rows_need_phase_one() {
        // x + y >= -1 with free-ish bounds pushing the start infeasible:
        // max -x - y with x,y in [-5,5], x + y <= -3 (start at lower bounds
        // -10 < -3 is fine) plus x + y >= -4.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, VarBounds::new(-5.0, 5.0));
        let y = p.add_var(-1.0, VarBounds::new(-5.0, 5.0));
        p.add_row(RowBounds::at_most(-3.0), &[(x, 1.0), (y, 1.0)]);
        p.add_row(RowBounds::at_least(-4.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-7, "{}", s.objective);
        assert!(p.max_violation(&s.x) <= 1e-7);
    }
}
