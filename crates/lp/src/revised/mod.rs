//! Bounded-variable primal revised simplex.
//!
//! This is the production solver for R2T's truncation LPs. Design points:
//!
//! * **Logical formulation.** Every row `L_i ≤ a_i·x ≤ U_i` gets a logical
//!   variable `s_i` with those bounds and the system `A x − s = 0`, so the
//!   all-logical basis is triangular and the solver starts without any
//!   factorization work. For R2T's packing LPs (`x = 0` feasible) this basis
//!   is primal feasible and Phase 1 is skipped entirely.
//! * **Phase 1 by artificials.** When the all-logical start is infeasible,
//!   one artificial column per violated row absorbs the residual and a
//!   max `−Σ artificials` phase restores feasibility.
//! * **Sparse LU basis** ([`lu::LuFactors`]) with product-form (eta) updates
//!   and periodic refactorization.
//! * **Dantzig pricing** with an automatic switch to Bland's rule after a
//!   run of degenerate pivots (anti-cycling).
//! * **Progress events.** A callback receives the running primal objective
//!   (a valid lower bound — primal feasibility is maintained throughout) and
//!   a Lagrangian dual upper bound; returning `false` aborts the solve with
//!   [`Status::Stopped`]. This implements the paper's early-stop race
//!   (Algorithm 1) without a separate dual solver.

pub mod lu;

use crate::problem::Problem;
use crate::sparse::ColMatrix;
use crate::{LpError, Solution, Status};
use lu::{BasisColumn, LuFactors};

/// A progress snapshot passed to solve callbacks.
#[derive(Debug, Clone, Copy)]
pub struct SolverEvent {
    /// Simplex iterations completed so far.
    pub iteration: usize,
    /// Objective of the current (primal-feasible) point — a lower bound on
    /// the optimum for maximization problems once Phase 2 has begun.
    pub primal_objective: f64,
    /// A weak-duality upper bound on the optimum (maximize sense). May be
    /// `+inf` early in the solve.
    pub dual_bound: f64,
    /// Whether the solver is still in Phase 1 (primal objective is then the
    /// negated infeasibility, not a bound on the true objective).
    pub phase_one: bool,
}

/// Options controlling a revised-simplex solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Hard cap on simplex iterations (0 = automatic: `20(m+n) + 10000`).
    pub max_iterations: usize,
    /// Refactorize the basis after this many eta updates.
    pub refactor_interval: usize,
    /// Invoke the callback every this many iterations (0 = never).
    pub event_every: usize,
    /// Candidate-list (multiple) pricing: a full Dantzig scan periodically
    /// collects the best `partial_pricing` improving columns, and subsequent
    /// iterations price only that list until it is exhausted (0 = full
    /// Dantzig pricing every iteration). Near-Dantzig pivot quality at a
    /// fraction of the pricing cost on LPs with many columns.
    pub partial_pricing: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_iterations: 0,
            refactor_interval: 96,
            event_every: 0,
            partial_pricing: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable parked at zero.
    AtZero,
}

/// A borrowed, already-frozen LP in **maximize** sense: the shared input of
/// the cold and warm solve paths. [`crate::sweep::SweepProblem`] assembles
/// these per-τ without round-tripping through a [`Problem`].
pub(crate) struct RawLp<'a> {
    /// Constraint matrix, `m × n`.
    pub mat: &'a ColMatrix,
    /// Structural variable lower bounds (len `n`).
    pub var_lower: &'a [f64],
    /// Structural variable upper bounds (len `n`).
    pub var_upper: &'a [f64],
    /// Objective coefficients in maximize sense (len `n`).
    pub obj: &'a [f64],
    /// Row activity lower bounds (len `m`).
    pub row_lower: &'a [f64],
    /// Row activity upper bounds (len `m`).
    pub row_upper: &'a [f64],
}

/// The optimal basis of a finished solve, reusable as the starting point of
/// an adjacent solve (same matrix, re-parameterized bounds). Produced by
/// [`SolverContext`] after an optimal solve; consumed by
/// [`RevisedSimplex::solve_from_basis`].
#[derive(Debug, Clone)]
pub struct WarmStart {
    pub(crate) n: usize,
    pub(crate) m: usize,
    /// Basic variable per row slot (structural `j < n`, logical `n + i`).
    pub(crate) basis: Vec<usize>,
    /// State of every structural and logical variable (len `n + m`).
    pub(crate) state: Vec<VarState>,
}

impl WarmStart {
    /// Assembles a basis from raw parts (used by the sweep layer's prefix
    /// translation). Invalid contents are safe: the solver validates before
    /// use and falls back to a cold start.
    pub(crate) fn from_parts(n: usize, m: usize, basis: Vec<usize>, state: Vec<VarState>) -> Self {
        WarmStart { n, m, basis, state }
    }

    /// Number of structural variables of the solve that produced this basis.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of rows of the solve that produced this basis.
    pub fn num_rows(&self) -> usize {
        self.m
    }
}

/// Counters accumulated by a [`SolverContext`] across solves.
#[derive(Debug, Default, Clone, Copy)]
pub struct SolveStats {
    /// Total solves routed through the context.
    pub solves: usize,
    /// Solves that were offered a warm basis.
    pub warm_attempts: usize,
    /// Warm bases accepted (factorized and reoptimized without falling back).
    pub warm_accepted: usize,
    /// Dual-simplex iterations spent reoptimizing warm bases.
    pub dual_iterations: usize,
    /// Primal-simplex iterations (cold solves plus warm cleanup).
    pub primal_iterations: usize,
}

/// Per-worker reusable solver state: scratch/workspace buffers plus the
/// optimal basis of the most recent solve. One context per thread — contexts
/// are deliberately not `Sync`.
#[derive(Debug, Default)]
pub struct SolverContext {
    col_buf: Vec<f64>,
    scratch: Vec<f64>,
    pub(crate) last_basis: Option<WarmStart>,
    /// Counters across all solves run through this context.
    pub stats: SolveStats,
}

impl SolverContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        SolverContext::default()
    }

    /// The optimal basis of the most recent optimal solve, if that solve
    /// finished at optimality with no artificial variable left in the basis.
    pub fn take_basis(&mut self) -> Option<WarmStart> {
        self.last_basis.take()
    }
}

/// The production LP solver. See the module documentation.
#[derive(Debug, Default)]
pub struct RevisedSimplex {
    /// Solve options.
    pub options: SolveOptions,
}

struct Eta {
    slot: usize,
    pivot: f64,
    /// (slot, w) entries excluding the pivot slot.
    entries: Vec<(u32, f64)>,
}

const PIV_TOL: f64 = 1e-9;
const D_TOL: f64 = 1e-7;
const DEGENERATE_SWITCH: usize = 20_000;

struct Work<'a> {
    n: usize,
    m: usize,
    mat: &'a ColMatrix,
    /// bounds/objective for all variables: structural, logical, artificial
    lower: Vec<f64>,
    upper: Vec<f64>,
    obj: Vec<f64>,
    /// artificial -> (row, sign of its column entry)
    art: Vec<(usize, f64)>,
    state: Vec<VarState>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    lu: LuFactors,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
    col_buf: Vec<f64>,
    iterations: usize,
}

impl<'a> Work<'a> {
    fn nvars(&self) -> usize {
        self.n + self.m + self.art.len()
    }

    /// Writes the constraint-matrix column of variable `j` into `out`
    /// (original row space, dense).
    fn scatter_col(&self, j: usize, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        if j < self.n {
            for (i, v) in self.mat.col(j) {
                out[i] = v;
            }
        } else if j < self.n + self.m {
            out[j - self.n] = -1.0;
        } else {
            let (row, sign) = self.art[j - self.n - self.m];
            out[row] = sign;
        }
    }

    /// Dot of the constraint column of `j` with a dense row-space vector.
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.mat.col_dot(j, y)
        } else if j < self.n + self.m {
            -y[j - self.n]
        } else {
            let (row, sign) = self.art[j - self.n - self.m];
            sign * y[row]
        }
    }

    /// Nonbasic value of variable `j` implied by its state.
    fn nb_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::AtLower => self.lower[j],
            VarState::AtUpper => self.upper[j],
            VarState::AtZero => 0.0,
            VarState::Basic => unreachable!("nb_value on basic variable"),
        }
    }

    /// Full FTRAN through LU and the eta file. `v` enters in original row
    /// space and exits indexed by basis slot.
    fn ftran(&mut self, v: &mut [f64]) {
        self.lu.ftran(v, &mut self.scratch);
        for eta in &self.etas {
            let xp = v[eta.slot] / eta.pivot;
            v[eta.slot] = xp;
            if xp != 0.0 {
                for &(i, w) in &eta.entries {
                    v[i as usize] -= w * xp;
                }
            }
        }
    }

    /// Full BTRAN. `c` enters indexed by basis slot and exits in original
    /// row space.
    fn btran(&mut self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = c[eta.slot];
            for &(i, w) in &eta.entries {
                s -= c[i as usize] * w;
            }
            c[eta.slot] = s / eta.pivot;
        }
        self.lu.btran(c, &mut self.scratch);
    }

    /// Recomputes basic values from nonbasic bound values.
    fn recompute_xb(&mut self) {
        let mut rhs = vec![0.0f64; self.m];
        for j in 0..self.nvars() {
            if self.state[j] != VarState::Basic {
                let v = self.nb_value(j);
                if v != 0.0 {
                    if j < self.n {
                        for (i, a) in self.mat.col(j) {
                            rhs[i] -= a * v;
                        }
                    } else if j < self.n + self.m {
                        rhs[j - self.n] += v;
                    } else {
                        let (row, sign) = self.art[j - self.n - self.m];
                        rhs[row] -= sign * v;
                    }
                }
            }
        }
        self.ftran(&mut rhs);
        self.xb = rhs;
    }

    /// Rebuilds the LU factorization from the current basis and clears etas.
    fn refactorize(&mut self) -> Result<(), LpError> {
        self.lu = factorize_basis(self.n, self.m, self.mat, &self.art, &self.basis)?;
        self.etas.clear();
        self.recompute_xb();
        Ok(())
    }

    /// Current objective under cost vector `obj` (maximize sense).
    fn objective(&self) -> f64 {
        let mut total = 0.0;
        for (s, &j) in self.basis.iter().enumerate() {
            total += self.obj[j] * self.xb[s];
        }
        for j in 0..self.nvars() {
            if self.state[j] != VarState::Basic && self.obj[j] != 0.0 {
                total += self.obj[j] * self.nb_value(j);
            }
        }
        total
    }

    /// Row duals for the current basis under the current cost vector.
    fn duals(&mut self) -> Vec<f64> {
        let mut c = Vec::new();
        self.duals_into(&mut c);
        c
    }

    /// [`Self::duals`] into a caller-owned buffer, so per-iteration callers
    /// pay no allocation.
    fn duals_into(&mut self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.basis.iter().map(|&j| self.obj[j]));
        self.btran(out);
    }

    /// A weak-duality upper bound on the optimum from the current duals,
    /// with `y` projected onto the sign-feasible orthant of the row bounds
    /// (see `crate::dual_bound`). Computed without touching the `Problem`.
    fn dual_upper_bound(&mut self) -> f64 {
        #[inline]
        fn mul(y: f64, b: f64) -> f64 {
            if y == 0.0 {
                0.0
            } else {
                y * b
            }
        }
        let mut y = self.duals();
        let mut total = 0.0f64;
        for i in 0..self.m {
            let (lo, hi) = (self.lower[self.n + i], self.upper[self.n + i]);
            if hi.is_infinite() && y[i] > 0.0 {
                y[i] = 0.0;
            }
            if lo.is_infinite() && y[i] < 0.0 {
                y[i] = 0.0;
            }
            total += mul(y[i], lo).max(mul(y[i], hi));
        }
        for j in 0..self.n {
            let mut d = self.obj[j] - self.mat.col_dot(j, &y);
            if d.abs() < 1e-11 {
                d = 0.0;
            }
            total += mul(d, self.lower[j]).max(mul(d, self.upper[j]));
        }
        if total.is_nan() {
            f64::INFINITY
        } else {
            total
        }
    }
}

/// Factorizes the basis described by variable indices (structural /
/// logical / artificial) into LU form.
fn factorize_basis(
    n: usize,
    m: usize,
    mat: &ColMatrix,
    art: &[(usize, f64)],
    basis: &[usize],
) -> Result<LuFactors, LpError> {
    let mut cols: Vec<(Vec<u32>, Vec<f64>)> = Vec::with_capacity(m);
    for &j in basis {
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        if j < n {
            for (i, v) in mat.col(j) {
                rows.push(i as u32);
                vals.push(v);
            }
        } else if j < n + m {
            rows.push((j - n) as u32);
            vals.push(-1.0);
        } else {
            let (row, sign) = art[j - n - m];
            rows.push(row as u32);
            vals.push(sign);
        }
        cols.push((rows, vals));
    }
    LuFactors::factorize(m, |s| BasisColumn { rows: &cols[s].0, values: &cols[s].1 })
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterLimit,
    Stopped,
}

impl RevisedSimplex {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        RevisedSimplex::default()
    }

    /// Solves the problem to optimality (or another terminal status).
    pub fn solve(&self, problem: &Problem) -> Result<Solution, LpError> {
        self.solve_with_callback(problem, |_| true)
    }

    /// Solves the problem, invoking `cb` every `options.event_every`
    /// iterations (if nonzero). Returning `false` from the callback aborts
    /// with [`Status::Stopped`]; the returned solution is the best
    /// primal-feasible point found (a valid lower bound for maximization).
    pub fn solve_with_callback<F>(&self, problem: &Problem, cb: F) -> Result<Solution, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        self.solve_with_context(problem, None, None, cb)
    }

    /// Solves the problem starting from the optimal basis of an adjacent
    /// solve (same matrix shape, re-parameterized bounds): the basis is
    /// refactorized, dual-simplex iterations restore primal feasibility, and
    /// a primal cleanup pass certifies optimality. Falls back to a cold
    /// start automatically when the warm basis is singular or stalls, so the
    /// result is always identical in status/optimality to [`Self::solve`].
    /// `ctx` supplies reusable workspace buffers and receives the new
    /// optimal basis (see [`SolverContext::take_basis`]).
    pub fn solve_from_basis(
        &self,
        problem: &Problem,
        warm: &WarmStart,
        ctx: &mut SolverContext,
    ) -> Result<Solution, LpError> {
        self.solve_with_context(problem, Some(warm), Some(ctx), |_| true)
    }

    fn solve_with_context<F>(
        &self,
        problem: &Problem,
        warm: Option<&WarmStart>,
        ctx: Option<&mut SolverContext>,
        cb: F,
    ) -> Result<Solution, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let mat = problem.freeze()?;
        let n = problem.num_vars();
        let m = problem.num_rows();
        let var_lower: Vec<f64> = (0..n).map(|j| problem.var_bounds(j).lower).collect();
        let var_upper: Vec<f64> = (0..n).map(|j| problem.var_bounds(j).upper).collect();
        let obj: Vec<f64> = (0..n).map(|j| problem.max_objective(j)).collect();
        let row_lower: Vec<f64> = (0..m).map(|i| problem.row_bounds(i).lower).collect();
        let row_upper: Vec<f64> = (0..m).map(|i| problem.row_bounds(i).upper).collect();
        let raw = RawLp {
            mat: &mat,
            var_lower: &var_lower,
            var_upper: &var_upper,
            obj: &obj,
            row_lower: &row_lower,
            row_upper: &row_upper,
        };
        let mut sol = self.solve_raw(&raw, warm, ctx, cb)?;
        // solve_raw works in maximize sense; negation back to the stated
        // sense is exact, so this matches evaluating the stated objective.
        if problem.sense() == crate::problem::Sense::Minimize && sol.status != Status::Infeasible {
            sol.objective = -sol.objective;
        }
        Ok(sol)
    }

    /// The shared solve entry over a borrowed maximize-sense LP: routes to
    /// the warm path when a compatible basis is supplied, else cold-starts.
    pub(crate) fn solve_raw<F>(
        &self,
        raw: &RawLp<'_>,
        warm: Option<&WarmStart>,
        mut ctx: Option<&mut SolverContext>,
        mut cb: F,
    ) -> Result<Solution, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let n = raw.mat.cols();
        let m = raw.mat.rows();
        let _solve_span = r2t_obs::span("lp.solve");
        r2t_obs::counter_add("lp.solves", 1);
        if let Some(c) = ctx.as_deref_mut() {
            c.stats.solves += 1;
            c.last_basis = None;
        }
        if m == 0 {
            return Ok(box_solution(raw));
        }
        if let Some(ws) = warm {
            r2t_obs::counter_add("lp.warm.attempts", 1);
            if let Some(c) = ctx.as_deref_mut() {
                c.stats.warm_attempts += 1;
            }
            if ws.n == n && ws.m == m && ws.basis.len() == m && ws.state.len() == n + m {
                if let Some(sol) = self.solve_warm(raw, ws, ctx.as_deref_mut(), &mut cb)? {
                    r2t_obs::counter_add("lp.warm.accepted", 1);
                    if let Some(c) = ctx.as_deref_mut() {
                        c.stats.warm_accepted += 1;
                    }
                    return Ok(sol);
                }
            }
        }
        self.solve_cold(raw, ctx, &mut cb)
    }

    /// Attempts the warm-started path. Returns `Ok(None)` when the basis is
    /// unusable (singular factorization, inconsistent states, dual stall) —
    /// the caller then falls back to a cold start, guaranteeing correctness.
    fn solve_warm<F>(
        &self,
        raw: &RawLp<'_>,
        ws: &WarmStart,
        mut ctx: Option<&mut SolverContext>,
        cb: &mut F,
    ) -> Result<Option<Solution>, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let n = ws.n;
        let m = ws.m;
        for &j in &ws.basis {
            if j >= n + m || ws.state[j] != VarState::Basic {
                return Ok(None);
            }
        }
        if ws.state.iter().filter(|&&s| s == VarState::Basic).count() != m {
            return Ok(None);
        }
        let mut lower: Vec<f64> = Vec::with_capacity(n + m);
        let mut upper: Vec<f64> = Vec::with_capacity(n + m);
        let mut obj: Vec<f64> = Vec::with_capacity(n + m);
        lower.extend_from_slice(raw.var_lower);
        lower.extend_from_slice(raw.row_lower);
        upper.extend_from_slice(raw.var_upper);
        upper.extend_from_slice(raw.row_upper);
        obj.extend_from_slice(raw.obj);
        obj.resize(n + m, 0.0);
        // Nonbasic states must point at finite bounds under the *new*
        // parameterization.
        for j in 0..n + m {
            let bad = match ws.state[j] {
                VarState::AtLower => !lower[j].is_finite(),
                VarState::AtUpper => !upper[j].is_finite(),
                _ => false,
            };
            if bad {
                return Ok(None);
            }
        }
        let Ok(lu) = factorize_basis(n, m, raw.mat, &[], &ws.basis) else {
            return Ok(None);
        };
        let (mut col_buf, scratch) = match ctx.as_deref_mut() {
            Some(c) => (std::mem::take(&mut c.col_buf), std::mem::take(&mut c.scratch)),
            None => (Vec::new(), Vec::new()),
        };
        col_buf.clear();
        col_buf.resize(m, 0.0);
        let mut w = Work {
            n,
            m,
            mat: raw.mat,
            lower,
            upper,
            obj,
            art: Vec::new(),
            state: ws.state.clone(),
            basis: ws.basis.clone(),
            xb: vec![0.0; m],
            lu,
            etas: Vec::new(),
            scratch,
            col_buf,
            iterations: 0,
        };
        w.recompute_xb();

        // Profitability guard: the dual repair does roughly one pivot per
        // bound violation, and dual pivots price every nonbasic column, so
        // when most of the basis re-violates (a large τ drop revealing many
        // binding rows) the repair costs more than a cold solve of the same
        // already-assembled LP. Bail out before iterating; the caller falls
        // back to the cold path without rebuilding anything.
        let violated = (0..m)
            .filter(|&s| {
                let j = w.basis[s];
                w.lower[j] - w.xb[s] > crate::FEAS_TOL || w.xb[s] - w.upper[j] > crate::FEAS_TOL
            })
            .count();
        if violated > (m / 8).max(16) {
            if let Some(c) = ctx.as_deref_mut() {
                c.col_buf = std::mem::take(&mut w.col_buf);
                c.scratch = std::mem::take(&mut w.scratch);
            }
            return Ok(None);
        }

        let max_iters = if self.options.max_iterations == 0 {
            60 * (m + n) + 20_000
        } else {
            self.options.max_iterations
        };
        // The repair should converge in O(violations) pivots; if it churns
        // far past that, a cold start is cheaper than letting it grind.
        let dual_cap = (8 * violated + 64).min(max_iters);
        match self.dual_iterate(&mut w, dual_cap, cb)? {
            DualOutcome::Feasible => {}
            DualOutcome::Stopped => {
                return Ok(Some(finish(raw, w, Status::Stopped, ctx)));
            }
            DualOutcome::Stalled => {
                // Hand the buffers back so the cold retry reuses them.
                if let Some(c) = ctx.as_deref_mut() {
                    c.col_buf = std::mem::take(&mut w.col_buf);
                    c.scratch = std::mem::take(&mut w.scratch);
                }
                return Ok(None);
            }
        }
        r2t_obs::counter_add("lp.iterations.dual", w.iterations as u64);
        if let Some(c) = ctx.as_deref_mut() {
            c.stats.dual_iterations += w.iterations;
        }
        let before = w.iterations;
        let outcome = self.iterate(&mut w, max_iters, false, cb)?;
        r2t_obs::counter_add("lp.iterations.primal", (w.iterations - before) as u64);
        if let Some(c) = ctx.as_deref_mut() {
            c.stats.primal_iterations += w.iterations - before;
        }
        let status = match outcome {
            PhaseOutcome::Optimal => Status::Optimal,
            PhaseOutcome::Unbounded => Status::Unbounded,
            PhaseOutcome::IterLimit => Status::IterationLimit,
            PhaseOutcome::Stopped => Status::Stopped,
        };
        Ok(Some(finish(raw, w, status, ctx)))
    }

    /// Cold start: all-logical basis, Phase 1 artificials when needed.
    fn solve_cold<F>(
        &self,
        raw: &RawLp<'_>,
        mut ctx: Option<&mut SolverContext>,
        cb: &mut F,
    ) -> Result<Solution, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let mat = raw.mat;
        let n = mat.cols();
        let m = mat.rows();
        let mut lower: Vec<f64> = Vec::with_capacity(n + m);
        let mut upper: Vec<f64> = Vec::with_capacity(n + m);
        let mut obj: Vec<f64> = Vec::with_capacity(n + m);
        lower.extend_from_slice(raw.var_lower);
        lower.extend_from_slice(raw.row_lower);
        upper.extend_from_slice(raw.var_upper);
        upper.extend_from_slice(raw.row_upper);
        obj.extend_from_slice(raw.obj);
        obj.resize(n + m, 0.0);

        // Initial nonbasic states for structural variables.
        let mut state: Vec<VarState> = (0..n)
            .map(|j| {
                if lower[j].is_finite() {
                    VarState::AtLower
                } else if upper[j].is_finite() {
                    VarState::AtUpper
                } else {
                    VarState::AtZero
                }
            })
            .collect();
        state.extend(std::iter::repeat_n(VarState::Basic, m));

        // Row activities at the initial point.
        let mut act = vec![0.0f64; m];
        for j in 0..n {
            let v = match state[j] {
                VarState::AtLower => lower[j],
                VarState::AtUpper => upper[j],
                _ => 0.0,
            };
            if v != 0.0 {
                for (i, a) in mat.col(j) {
                    act[i] += a * v;
                }
            }
        }

        // Build artificials for violated rows; logicals of those rows become
        // nonbasic at their nearest bound.
        let mut art: Vec<(usize, f64)> = Vec::new();
        let mut basis: Vec<usize> = (0..m).map(|i| n + i).collect();
        let mut xb = act.clone();
        let mut phase_one = false;
        for i in 0..m {
            let (lo, hi) = (lower[n + i], upper[n + i]);
            if act[i] < lo - crate::FEAS_TOL {
                // s clamps to lo; artificial z = lo - act with +1 column.
                state[n + i] = VarState::AtLower;
                let t = art.len();
                art.push((i, 1.0));
                basis[i] = n + m + t; // placeholder; art indices appended below
                xb[i] = lo - act[i];
                phase_one = true;
            } else if act[i] > hi + crate::FEAS_TOL {
                state[n + i] = VarState::AtUpper;
                let t = art.len();
                art.push((i, -1.0));
                basis[i] = n + m + t;
                xb[i] = act[i] - hi;
                phase_one = true;
            }
        }
        for _ in 0..art.len() {
            lower.push(0.0);
            upper.push(f64::INFINITY);
            obj.push(0.0);
            state.push(VarState::Basic);
        }

        // The initial basis is mixed logicals/artificials — all singleton
        // columns — so this factorization is trivially sparse.
        let lu = factorize_basis(n, m, mat, &art, &basis)?;
        let (mut col_buf, scratch) = match ctx.as_deref_mut() {
            Some(c) => (std::mem::take(&mut c.col_buf), std::mem::take(&mut c.scratch)),
            None => (Vec::new(), Vec::new()),
        };
        col_buf.clear();
        col_buf.resize(m, 0.0);
        let mut w = Work {
            n,
            m,
            mat,
            lower,
            upper,
            obj,
            art,
            state,
            basis,
            xb,
            lu,
            etas: Vec::new(),
            scratch,
            col_buf,
            iterations: 0,
        };

        let max_iters = if self.options.max_iterations == 0 {
            60 * (m + n) + 20_000
        } else {
            self.options.max_iterations
        };

        if phase_one {
            // Phase 1: maximize -sum(artificials).
            let real_obj = w.obj.clone();
            for t in 0..w.art.len() {
                w.obj[w.n + w.m + t] = -1.0;
            }
            for j in 0..w.n + w.m {
                w.obj[j] = 0.0;
            }
            let outcome = self.iterate(&mut w, max_iters, true, cb)?;
            match outcome {
                PhaseOutcome::Optimal => {}
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded above by 0; "unbounded"
                    // can only arise from numerical trouble.
                    return Err(LpError::SingularBasis);
                }
                PhaseOutcome::IterLimit => {
                    return Ok(Solution {
                        status: Status::IterationLimit,
                        objective: f64::NAN,
                        x: vec![0.0; n],
                        y: vec![0.0; m],
                        iterations: w.iterations,
                    });
                }
                PhaseOutcome::Stopped => {
                    return Ok(Solution {
                        status: Status::Stopped,
                        objective: f64::NAN,
                        x: vec![0.0; n],
                        y: vec![0.0; m],
                        iterations: w.iterations,
                    });
                }
            }
            if w.objective() < -1e-6 {
                return Ok(Solution::infeasible(n, m, w.iterations));
            }
            // Fix artificials at zero and restore the real objective.
            for t in 0..w.art.len() {
                let j = w.n + w.m + t;
                w.upper[j] = 0.0;
                if w.state[j] != VarState::Basic {
                    w.state[j] = VarState::AtLower;
                }
            }
            w.obj = real_obj;
        }

        let before = w.iterations;
        let outcome = self.iterate(&mut w, max_iters, false, cb)?;
        r2t_obs::counter_add("lp.cold.solves", 1);
        r2t_obs::counter_add("lp.iterations.primal", (w.iterations - before) as u64);
        if let Some(c) = ctx.as_deref_mut() {
            c.stats.primal_iterations += w.iterations - before;
        }
        let status = match outcome {
            PhaseOutcome::Optimal => Status::Optimal,
            PhaseOutcome::Unbounded => Status::Unbounded,
            PhaseOutcome::IterLimit => Status::IterationLimit,
            PhaseOutcome::Stopped => Status::Stopped,
        };
        Ok(finish(raw, w, status, ctx))
    }

    /// Runs simplex iterations under the current cost vector until optimal,
    /// unbounded, the iteration cap, or a callback stop.
    fn iterate<F>(
        &self,
        w: &mut Work<'_>,
        max_iters: usize,
        phase_one: bool,
        cb: &mut F,
    ) -> Result<PhaseOutcome, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let mut degenerate_run = 0usize;
        let mut bland = false;
        let mut candidates: Vec<usize> = Vec::new();
        let mut all: Vec<(usize, f64, f64)> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        loop {
            if w.iterations >= max_iters {
                return Ok(PhaseOutcome::IterLimit);
            }
            // Pricing. Bland mode: full scan, smallest improving index
            // (anti-cycling). Candidate-list mode: price only the candidate
            // list; when it is exhausted, a full Dantzig scan refills it
            // with the top-K improving columns (a fruitless full scan proves
            // optimality). partial_pricing == 0: full Dantzig every time.
            w.duals_into(&mut y);
            let nvars = w.nvars();
            let klist = self.options.partial_pricing;
            let price = |w: &Work<'_>, j: usize, y: &[f64]| -> Option<(f64, f64)> {
                let st = w.state[j];
                if st == VarState::Basic || (w.lower[j] == w.upper[j] && st != VarState::AtZero) {
                    return None;
                }
                let d = w.obj[j] - w.col_dot(j, y);
                let dtol = D_TOL * (1.0 + w.obj[j].abs());
                let improving = match st {
                    VarState::AtLower => d > dtol,
                    VarState::AtUpper => d < -dtol,
                    VarState::AtZero => d.abs() > dtol,
                    VarState::Basic => false,
                };
                improving.then_some((d, d.abs()))
            };
            let mut enter: Option<(usize, f64, f64)> = None; // (var, d, score)
            if bland {
                for j in 0..nvars {
                    if let Some((d, score)) = price(w, j, &y) {
                        enter = Some((j, d, score));
                        break;
                    }
                }
            } else if klist != 0 {
                // Price the current candidate list.
                candidates.retain(|&j| {
                    if let Some((d, score)) = price(w, j, &y) {
                        if enter.is_none_or(|(_, _, s)| score > s) {
                            enter = Some((j, d, score));
                        }
                        true
                    } else {
                        false
                    }
                });
                if enter.is_none() {
                    // Refill with the top-K improving columns. Early pivots can
                    // see tens of thousands of improving columns, so select the
                    // top K first and only sort those.
                    all.clear();
                    for j in 0..nvars {
                        if let Some((d, score)) = price(w, j, &y) {
                            all.push((j, d, score));
                        }
                    }
                    if all.len() > klist {
                        all.select_nth_unstable_by(klist - 1, |a, b| {
                            b.2.partial_cmp(&a.2).expect("finite scores")
                        });
                        all.truncate(klist);
                    }
                    all.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).expect("finite scores"));
                    candidates.clear();
                    candidates.extend(all.iter().map(|&(j, _, _)| j));
                    enter = all.first().copied();
                }
            } else {
                for j in 0..nvars {
                    if let Some((d, score)) = price(w, j, &y) {
                        if enter.is_none_or(|(_, _, s)| score > s) {
                            enter = Some((j, d, score));
                        }
                    }
                }
            }
            let Some((enter, d_enter, _)) = enter else {
                return Ok(PhaseOutcome::Optimal);
            };
            candidates.retain(|&j| j != enter);
            let sigma = match w.state[enter] {
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
                VarState::AtZero => {
                    if d_enter > 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VarState::Basic => unreachable!(),
            };

            // FTRAN the entering column.
            let mut col = std::mem::take(&mut w.col_buf);
            w.scatter_col(enter, &mut col);
            w.ftran(&mut col);

            // Ratio test.
            let mut t_star = f64::INFINITY;
            let mut leave: Option<(usize, VarState)> = None; // (slot, new state)
            let mut leave_w = 0.0f64;
            for (s, &wv) in col.iter().enumerate() {
                let dir = sigma * wv;
                if dir > PIV_TOL {
                    let lb = w.lower[w.basis[s]];
                    if lb.is_finite() {
                        let t = (w.xb[s] - lb) / dir;
                        if t < t_star - 1e-12
                            || (t < t_star + 1e-12
                                && (wv.abs() > leave_w.abs()
                                    || (bland
                                        && leave.is_some_and(|(ls, _)| w.basis[s] < w.basis[ls]))))
                        {
                            t_star = t.max(0.0);
                            leave = Some((s, VarState::AtLower));
                            leave_w = wv;
                        }
                    }
                } else if dir < -PIV_TOL {
                    let ub = w.upper[w.basis[s]];
                    if ub.is_finite() {
                        let t = (ub - w.xb[s]) / (-dir);
                        if t < t_star - 1e-12
                            || (t < t_star + 1e-12
                                && (wv.abs() > leave_w.abs()
                                    || (bland
                                        && leave.is_some_and(|(ls, _)| w.basis[s] < w.basis[ls]))))
                        {
                            t_star = t.max(0.0);
                            leave = Some((s, VarState::AtUpper));
                            leave_w = wv;
                        }
                    }
                }
            }
            // Bound-flip candidate.
            let flip_len = w.upper[enter] - w.lower[enter];
            let flip = flip_len.is_finite() && flip_len < t_star;
            if flip {
                t_star = flip_len;
                leave = None;
            }
            if t_star.is_infinite() {
                w.col_buf = col;
                return Ok(PhaseOutcome::Unbounded);
            }

            // Apply the step to basic values.
            if t_star != 0.0 {
                for (s, &wv) in col.iter().enumerate() {
                    if wv != 0.0 {
                        w.xb[s] -= sigma * t_star * wv;
                    }
                }
            }
            if let Some((r, new_state)) = leave {
                let leaving = w.basis[r];
                // Clamp the leaving variable exactly onto its bound.
                w.state[leaving] = new_state;
                let enter_val = match w.state[enter] {
                    VarState::AtLower => w.lower[enter] + t_star,
                    VarState::AtUpper => w.upper[enter] - t_star,
                    VarState::AtZero => sigma * t_star,
                    VarState::Basic => unreachable!(),
                };
                w.basis[r] = enter;
                w.state[enter] = VarState::Basic;
                w.xb[r] = enter_val;
                // Record the eta (w vector without the pivot slot).
                let pivot = col[r];
                let mut entries: Vec<(u32, f64)> = Vec::new();
                for (s, &wv) in col.iter().enumerate() {
                    if s != r && wv != 0.0 {
                        entries.push((s as u32, wv));
                    }
                }
                w.etas.push(Eta { slot: r, pivot, entries });
                if w.etas.len() >= self.options.refactor_interval {
                    w.col_buf = col;
                    w.refactorize()?;
                    col = std::mem::take(&mut w.col_buf);
                }
            } else {
                // Bound flip: entering variable jumps to its other bound.
                w.state[enter] = match w.state[enter] {
                    VarState::AtLower => VarState::AtUpper,
                    VarState::AtUpper => VarState::AtLower,
                    s => s,
                };
            }
            w.col_buf = col;
            w.iterations += 1;

            if t_star <= 1e-10 {
                degenerate_run += 1;
                if degenerate_run > DEGENERATE_SWITCH {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
                bland = false;
            }

            if self.options.event_every != 0
                && w.iterations.is_multiple_of(self.options.event_every)
            {
                let dual = if phase_one { f64::INFINITY } else { w.dual_upper_bound() };
                let ev = SolverEvent {
                    iteration: w.iterations,
                    primal_objective: w.objective(),
                    dual_bound: dual,
                    phase_one,
                };
                r2t_obs::counter_add("lp.cutoff.checks", 1);
                if !cb(ev) {
                    r2t_obs::counter_add("lp.cutoff.stops", 1);
                    return Ok(PhaseOutcome::Stopped);
                }
            }
        }
    }

    /// Dual-simplex iterations from a dual-feasible (or near-feasible) basis
    /// toward primal feasibility: repeatedly kick the most bound-violating
    /// basic variable out of the basis, choosing the entering variable by a
    /// dual ratio test so reduced-cost signs are preserved. Used only on the
    /// warm path; any stall reports [`DualOutcome::Stalled`] and the caller
    /// cold-starts instead.
    fn dual_iterate<F>(
        &self,
        w: &mut Work<'_>,
        max_iters: usize,
        cb: &mut F,
    ) -> Result<DualOutcome, LpError>
    where
        F: FnMut(SolverEvent) -> bool,
    {
        let mut rho = vec![0.0f64; w.m];
        // Row duals are maintained across pivots via the rank-one update
        // y ← y + (d_q/α_q)·ρ (ρ is already in hand for the ratio test),
        // replacing the full BTRAN per iteration that `duals()` would cost.
        // Recomputed from scratch at every refactorization to bound drift.
        let mut y = w.duals();
        loop {
            // Pick the leaving slot: largest primal bound violation.
            let mut r = usize::MAX;
            let mut worst = crate::FEAS_TOL;
            for s in 0..w.m {
                let j = w.basis[s];
                let below = w.lower[j] - w.xb[s];
                let above = w.xb[s] - w.upper[j];
                let v = below.max(above);
                if v > worst {
                    worst = v;
                    r = s;
                }
            }
            if r == usize::MAX {
                return Ok(DualOutcome::Feasible);
            }
            if w.iterations >= max_iters {
                return Ok(DualOutcome::Stalled);
            }
            let leaving = w.basis[r];
            // `delta_pos`: the leaving variable sits above its upper bound
            // and must decrease onto it; otherwise it is below its lower
            // bound and must increase.
            let delta_pos = w.xb[r] > w.upper[leaving];

            // rho = B^-T e_r, the leaving row of B^-1 in original row space.
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            w.btran(&mut rho);

            // Dual ratio test over nonbasic columns: the entering variable
            // minimizes |d_j| / |alpha_j| among sign-eligible columns, so
            // the dual point stays feasible as long as it started feasible.
            let mut best: Option<(usize, f64, f64, f64)> = None; // (j, |alpha|, ratio, d)
            for j in 0..w.n + w.m {
                let st = w.state[j];
                if st == VarState::Basic || (w.lower[j] == w.upper[j] && st != VarState::AtZero) {
                    continue;
                }
                let alpha = w.col_dot(j, &rho);
                if alpha.abs() <= PIV_TOL {
                    continue;
                }
                let eligible = match st {
                    VarState::AtLower => {
                        if delta_pos {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    VarState::AtUpper => {
                        if delta_pos {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    VarState::AtZero => true,
                    VarState::Basic => false,
                };
                if !eligible {
                    continue;
                }
                let d = w.obj[j] - w.col_dot(j, &y);
                let slack = match st {
                    VarState::AtLower => (-d).max(0.0),
                    VarState::AtUpper => d.max(0.0),
                    _ => d.abs(),
                };
                let ratio = slack / alpha.abs();
                let better = match best {
                    None => true,
                    Some((_, ba, br, _)) => {
                        ratio < br - 1e-12 || (ratio < br + 1e-12 && alpha.abs() > ba)
                    }
                };
                if better {
                    best = Some((j, alpha.abs(), ratio, d));
                }
            }
            let Some((q, _, _, d_q)) = best else {
                return Ok(DualOutcome::Stalled);
            };

            // FTRAN the entering column and pivot on slot r.
            let mut col = std::mem::take(&mut w.col_buf);
            w.scatter_col(q, &mut col);
            w.ftran(&mut col);
            let alpha_q = col[r];
            if alpha_q.abs() <= PIV_TOL {
                w.col_buf = col;
                return Ok(DualOutcome::Stalled);
            }
            let bound = if delta_pos { w.upper[leaving] } else { w.lower[leaving] };
            let t = (w.xb[r] - bound) / alpha_q;
            let enter_val = w.nb_value(q) + t;
            for (s, &cv) in col.iter().enumerate() {
                if cv != 0.0 {
                    w.xb[s] -= t * cv;
                }
            }
            w.state[leaving] = if delta_pos { VarState::AtUpper } else { VarState::AtLower };
            w.basis[r] = q;
            w.state[q] = VarState::Basic;
            w.xb[r] = enter_val;
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for (s, &cv) in col.iter().enumerate() {
                if s != r && cv != 0.0 {
                    entries.push((s as u32, cv));
                }
            }
            w.etas.push(Eta { slot: r, pivot: alpha_q, entries });
            w.col_buf = col;
            w.iterations += 1;
            if d_q != 0.0 {
                let gamma = d_q / alpha_q;
                for (yi, &ri) in y.iter_mut().zip(rho.iter()) {
                    *yi += gamma * ri;
                }
            }
            if w.etas.len() >= self.options.refactor_interval {
                w.refactorize()?;
                y = w.duals();
            }

            if self.options.event_every != 0
                && w.iterations.is_multiple_of(self.options.event_every)
            {
                // No primal-feasible point yet, so the primal objective is
                // reported as -inf; the dual bound is valid throughout.
                let ev = SolverEvent {
                    iteration: w.iterations,
                    primal_objective: f64::NEG_INFINITY,
                    dual_bound: w.dual_upper_bound(),
                    phase_one: false,
                };
                r2t_obs::counter_add("lp.cutoff.checks", 1);
                if !cb(ev) {
                    r2t_obs::counter_add("lp.cutoff.stops", 1);
                    return Ok(DualOutcome::Stopped);
                }
            }
        }
    }
}

enum DualOutcome {
    Feasible,
    Stalled,
    Stopped,
}

/// Solves an `m == 0` pure box problem (maximize sense).
fn box_solution(raw: &RawLp<'_>) -> Solution {
    let n = raw.mat.cols();
    let mut x = vec![0.0; n];
    for j in 0..n {
        let (lo, hi) = (raw.var_lower[j], raw.var_upper[j]);
        let c = raw.obj[j];
        x[j] = if c > 0.0 {
            if hi.is_finite() {
                hi
            } else {
                f64::INFINITY
            }
        } else if c < 0.0 {
            if lo.is_finite() {
                lo
            } else {
                f64::NEG_INFINITY
            }
        } else if lo.is_finite() {
            lo
        } else if hi.is_finite() {
            hi
        } else {
            0.0
        };
        if !x[j].is_finite() {
            return Solution {
                status: Status::Unbounded,
                objective: f64::INFINITY,
                x: vec![0.0; n],
                y: Vec::new(),
                iterations: 0,
            };
        }
    }
    let objective = raw.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
    Solution { status: Status::Optimal, objective, x, y: Vec::new(), iterations: 0 }
}

/// Extracts the structural solution (maximize-sense objective), returns the
/// workspace buffers to `ctx`, and records the optimal basis for warm reuse.
fn finish(
    raw: &RawLp<'_>,
    mut w: Work<'_>,
    status: Status,
    ctx: Option<&mut SolverContext>,
) -> Solution {
    let n = w.n;
    let m = w.m;
    let mut x = vec![0.0f64; n];
    for j in 0..n {
        if w.state[j] != VarState::Basic {
            x[j] = w.nb_value(j);
        }
    }
    for (s, &j) in w.basis.iter().enumerate() {
        if j < n {
            x[j] = w.xb[s];
        }
    }
    let y = w.duals();
    let objective = if status == Status::Unbounded {
        f64::INFINITY
    } else {
        raw.obj.iter().zip(&x).map(|(c, v)| c * v).sum()
    };
    if let Some(c) = ctx {
        c.col_buf = std::mem::take(&mut w.col_buf);
        c.scratch = std::mem::take(&mut w.scratch);
        if status == Status::Optimal && w.basis.iter().all(|&j| j < n + m) {
            w.state.truncate(n + m);
            c.last_basis = Some(WarmStart { n, m, basis: w.basis, state: w.state });
        }
    }
    Solution { status, objective, x, y, iterations: w.iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, Sense, VarBounds};

    fn solve(p: &Problem) -> Solution {
        RevisedSimplex::new().solve(p).unwrap()
    }

    #[test]
    fn simple_max() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        let y = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn bound_flip_path() {
        // max 2x + y with x in [0,3] unconstrained by the row: x flips to its
        // upper bound without a basis change.
        let mut p = Problem::new();
        let _x = p.add_var(2.0, VarBounds::new(0.0, 3.0));
        let y = p.add_var(1.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_most(4.0), &[(y, 1.0)]);
        let s = solve(&p);
        assert!((s.objective - 10.0).abs() < 1e-7, "{}", s.objective);
    }

    #[test]
    fn equality_rows_via_phase_one() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        let y = p.add_var(0.0, VarBounds::new(1.0, f64::INFINITY));
        p.add_row(RowBounds::equal(2.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-7, "{}", s.objective);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::new(0.0, 1.0));
        p.add_row(RowBounds::at_least(2.0), &[(x, 1.0)]);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        p.add_row(RowBounds::at_least(0.0), &[(x, 1.0)]);
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn minimize_sense() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, VarBounds::non_negative());
        let y = p.add_var(1.0, VarBounds::non_negative());
        p.set_sense(Sense::Minimize);
        p.add_row(RowBounds::at_least(3.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn no_rows_box_problem() {
        let mut p = Problem::new();
        p.add_var(3.0, VarBounds::new(0.0, 2.0));
        p.add_var(-1.0, VarBounds::new(-1.0, 5.0));
        let s = solve(&p);
        assert!((s.objective - 7.0).abs() < 1e-12);
        assert_eq!(s.x, vec![2.0, -1.0]);
    }

    #[test]
    fn duals_close_weak_duality_gap() {
        // 4-clique truncation LP at tau = 2 (from Example 6.2): OPT = 4.
        let mut p = Problem::new();
        let edges = [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let vars: Vec<usize> =
            edges.iter().map(|_| p.add_var(1.0, VarBounds::new(0.0, 1.0))).collect();
        for v in 0..4 {
            let terms: Vec<(usize, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.0 == v || e.1 == v)
                .map(|(k, _)| (vars[k], 1.0))
                .collect();
            p.add_row(RowBounds::at_most(2.0), &terms);
        }
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-7, "{}", s.objective);
        let ub = crate::dual_bound::lagrangian_bound(&p, &s.y);
        assert!(ub >= s.objective - 1e-7);
        assert!(ub <= s.objective + 1e-6, "gap: {} vs {}", ub, s.objective);
    }

    #[test]
    fn callback_stop_returns_feasible_point() {
        // A big enough star LP that at least one event fires.
        let mut p = Problem::new();
        let vars: Vec<usize> = (0..200).map(|_| p.add_var(1.0, VarBounds::new(0.0, 1.0))).collect();
        for w in vars.chunks(2) {
            p.add_row(RowBounds::at_most(1.0), &[(w[0], 1.0), (w[1], 1.0)]);
        }
        let solver =
            RevisedSimplex { options: SolveOptions { event_every: 1, ..SolveOptions::default() } };
        let s = solver.solve_with_callback(&p, |ev| ev.iteration < 5).unwrap();
        assert_eq!(s.status, Status::Stopped);
        assert!(p.max_violation(&s.x) <= 1e-7);
    }

    #[test]
    fn events_report_consistent_bounds() {
        let mut p = Problem::new();
        let vars: Vec<usize> = (0..64).map(|_| p.add_var(1.0, VarBounds::new(0.0, 1.0))).collect();
        for w in vars.windows(2) {
            p.add_row(RowBounds::at_most(1.0), &[(w[0], 1.0), (w[1], 1.0)]);
        }
        let solver =
            RevisedSimplex { options: SolveOptions { event_every: 4, ..SolveOptions::default() } };
        let mut events = Vec::new();
        let s = solver
            .solve_with_callback(&p, |ev| {
                events.push(ev);
                true
            })
            .unwrap();
        assert_eq!(s.status, Status::Optimal);
        for ev in &events {
            assert!(ev.dual_bound >= ev.primal_objective - 1e-6, "dual bound below primal: {ev:?}");
            assert!(ev.dual_bound >= s.objective - 1e-6);
        }
    }

    #[test]
    fn large_chain_refactorizes() {
        // Force more iterations than the refactor interval.
        let mut p = Problem::new();
        let n = 300;
        let vars: Vec<usize> = (0..n)
            .map(|i| p.add_var(1.0 + (i % 7) as f64 * 0.1, VarBounds::new(0.0, 1.0)))
            .collect();
        for w in vars.windows(2) {
            p.add_row(RowBounds::at_most(1.2), &[(w[0], 1.0), (w[1], 1.0)]);
        }
        let solver = RevisedSimplex {
            options: SolveOptions { refactor_interval: 16, ..SolveOptions::default() },
        };
        let s = solver.solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(p.max_violation(&s.x) <= 1e-6);
        // Compare against the dense oracle.
        let d = crate::dense::DenseSimplex::new().solve(&p).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-5, "{} vs {}", s.objective, d.objective);
    }

    #[test]
    fn negative_rhs_rows_need_phase_one() {
        // x + y >= -1 with free-ish bounds pushing the start infeasible:
        // max -x - y with x,y in [-5,5], x + y <= -3 (start at lower bounds
        // -10 < -3 is fine) plus x + y >= -4.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, VarBounds::new(-5.0, 5.0));
        let y = p.add_var(-1.0, VarBounds::new(-5.0, 5.0));
        p.add_row(RowBounds::at_most(-3.0), &[(x, 1.0), (y, 1.0)]);
        p.add_row(RowBounds::at_least(-4.0), &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-7, "{}", s.objective);
        assert!(p.max_violation(&s.x) <= 1e-7);
    }
}

#[cfg(test)]
mod warm_tests {
    use super::*;
    use crate::problem::{RowBounds, VarBounds};

    /// Deterministic packing LP: `n` unit-objective vars in [0, cap_j], rows
    /// `sum_{j in S_i} x_j <= tau` with pseudo-random sparse membership.
    fn packing(n: usize, m: usize, tau: f64) -> Problem {
        let mut p = Problem::new();
        let mut s = 0x9e37u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for j in 0..n {
            let cap = 1.0 + (j % 3) as f64;
            p.add_var(1.0, VarBounds::new(0.0, cap));
        }
        for _ in 0..m {
            let k = 2 + next() % 5;
            let mut terms = Vec::new();
            for _ in 0..k {
                terms.push((next() % n, 1.0));
            }
            terms.sort_unstable_by_key(|&(j, _)| j);
            terms.dedup_by_key(|&mut (j, _)| j);
            p.add_row(RowBounds::at_most(tau), &terms);
        }
        p
    }

    fn retau(p: &mut Problem, tau: f64) {
        for i in 0..p.num_rows() {
            p.set_row_bounds(i, RowBounds::at_most(tau));
        }
    }

    #[test]
    fn warm_restart_after_rhs_tightening_matches_cold() {
        let solver = RevisedSimplex::new();
        let mut ctx = SolverContext::new();
        let mut p = packing(40, 16, 8.0);
        let cold_hi = solver.solve_with_context(&p, None, Some(&mut ctx), |_| true).unwrap();
        assert_eq!(cold_hi.status, Status::Optimal);
        let warm = ctx.take_basis().expect("optimal solve records a basis");

        retau(&mut p, 4.0);
        let warm_sol = solver.solve_from_basis(&p, &warm, &mut ctx).unwrap();
        let cold_sol = solver.solve(&p).unwrap();
        assert_eq!(warm_sol.status, Status::Optimal);
        assert!(
            (warm_sol.objective - cold_sol.objective).abs()
                <= 1e-9 * (1.0 + cold_sol.objective.abs()),
            "warm {} cold {}",
            warm_sol.objective,
            cold_sol.objective
        );
        assert!(p.max_violation(&warm_sol.x) <= 1e-7);
        assert_eq!(ctx.stats.warm_attempts, 1);
        assert_eq!(ctx.stats.warm_accepted, 1);
    }

    #[test]
    fn warm_chain_down_a_tau_race_matches_cold_everywhere() {
        let solver = RevisedSimplex::new();
        let mut ctx = SolverContext::new();
        let mut p = packing(60, 24, 32.0);
        let mut warm: Option<WarmStart> = None;
        for tau in [32.0, 16.0, 8.0, 4.0, 2.0, 1.0] {
            retau(&mut p, tau);
            let sol = match &warm {
                Some(ws) => solver.solve_from_basis(&p, ws, &mut ctx).unwrap(),
                None => solver.solve_with_context(&p, None, Some(&mut ctx), |_| true).unwrap(),
            };
            let cold = solver.solve(&p).unwrap();
            assert_eq!(sol.status, Status::Optimal, "tau={tau}");
            assert!(
                (sol.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                "tau={tau}: warm {} cold {}",
                sol.objective,
                cold.objective
            );
            warm = ctx.take_basis();
            assert!(warm.is_some(), "tau={tau} should record a basis");
        }
        assert_eq!(ctx.stats.warm_attempts, 5);
        assert_eq!(ctx.stats.warm_accepted, 5, "no fallbacks expected on this chain");
    }

    #[test]
    fn mismatched_warm_basis_falls_back_to_cold() {
        let solver = RevisedSimplex::new();
        let mut ctx = SolverContext::new();
        let small = packing(10, 4, 2.0);
        solver.solve_with_context(&small, None, Some(&mut ctx), |_| true).unwrap();
        let warm = ctx.take_basis().unwrap();

        let big = packing(40, 16, 8.0);
        let sol = solver.solve_from_basis(&big, &warm, &mut ctx).unwrap();
        let cold = solver.solve(&big).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()));
        assert_eq!(ctx.stats.warm_accepted, 0, "mismatched basis must not be accepted");
    }

    #[test]
    fn corrupted_warm_basis_falls_back_to_cold() {
        let solver = RevisedSimplex::new();
        let mut ctx = SolverContext::new();
        let p = packing(30, 12, 4.0);
        solver.solve_with_context(&p, None, Some(&mut ctx), |_| true).unwrap();
        let mut warm = ctx.take_basis().unwrap();
        // Duplicate one basic column: the basis matrix becomes singular.
        if warm.basis.len() >= 2 {
            let dup = warm.basis[0];
            let old = warm.basis[1];
            warm.basis[1] = dup;
            warm.state[old] = VarState::AtLower;
        }
        let sol = solver.solve_from_basis(&p, &warm, &mut ctx).unwrap();
        let cold = solver.solve(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()));
    }

    #[test]
    fn warm_loosening_bounds_also_matches() {
        // Loosening (tau up) makes the old basis primal feasible already;
        // the primal cleanup pass should reoptimize directly.
        let solver = RevisedSimplex::new();
        let mut ctx = SolverContext::new();
        let mut p = packing(40, 16, 2.0);
        solver.solve_with_context(&p, None, Some(&mut ctx), |_| true).unwrap();
        let warm = ctx.take_basis().unwrap();
        retau(&mut p, 16.0);
        let sol = solver.solve_from_basis(&p, &warm, &mut ctx).unwrap();
        let cold = solver.solve(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()));
        assert_eq!(ctx.stats.warm_accepted, 1);
    }
}
